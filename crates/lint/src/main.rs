//! `etable-lint` — runs the workspace source-hygiene lint and exits
//! non-zero on any violation. Used as a blocking CI step:
//!
//! ```text
//! cargo run --release -p etable-lint
//! ```
//!
//! An optional argument overrides the workspace root (useful for
//! pointing the lint at a scratch tree).

#![forbid(unsafe_code)]

use std::path::PathBuf;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/lint -> crates -> workspace root
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(std::path::Path::parent)
                .expect("lint crate lives two levels below the workspace root")
                .to_path_buf()
        });
    match etable_lint::check_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("etable-lint: ok ({})", root.display());
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("etable-lint: {} violation(s)", violations.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("etable-lint: cannot walk {}: {e}", root.display());
            std::process::exit(2);
        }
    }
}
