//! In-repo source hygiene lint for the etable workspace.
//!
//! This is a deliberately line-oriented checker with zero dependencies —
//! no syn, no regex, no proc-macro parsing — so it builds instantly,
//! works offline, and its rules are transparent enough to audit by
//! reading this one file. It enforces four workspace conventions that
//! `rustc`/`clippy` cannot express per-repo:
//!
//! 1. **Forbid attribute** — every crate root (`src/lib.rs`,
//!    `src/main.rs`) must carry `#![forbid(unsafe_code)]` in the file
//!    itself, so the guarantee survives even if a crate drops
//!    `[lints] workspace = true` from its manifest.
//! 2. **Panic budget** — library code (not binaries, not test regions)
//!    may not call the panic family (`unwrap`, `expect`, `panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!`) beyond a per-file
//!    allowlisted budget. New panics in un-allowlisted files are
//!    blocking; shrinking a file below its budget is always fine.
//! 3. **Env-var discipline** — `std::env::set_var` may not appear in any
//!    test code: neither the `#[cfg(test)]` region of library sources nor
//!    integration-test files under `tests/`. Tests share a process with
//!    other threads; mutating the environment there is a data race on
//!    glibc — and it no longer even works as a pool-size knob, because
//!    the executor pool reads `ETABLE_SCAN_THREADS` exactly once at
//!    construction. Tests sweep pool sizes in-process through
//!    `exec::pool::with_pool` / `PoolConfig::fixed` instead. Non-test
//!    code (bench/figure harness setup) remains allowed.
//! 4. **File-size budget** — the non-test region of a source file may
//!    not exceed 600 lines unless the file carries an allowlisted
//!    ceiling. Outgrowing the ceiling means the module wants splitting
//!    (the storage subsystem's codec/format/paged split is the model),
//!    not a bigger number. Test modules never count against the budget,
//!    so adding tests is always free.
//!
//! `tests/` files are walked for rule 3 only: they are exempt from the
//! panic budget (a failing test *should* panic) and are never crate
//! roots. The "test region" heuristic for library sources is everything
//! at and after the first `#[cfg(test)]` line — exact for this
//! codebase's convention of a single trailing test module per file, and
//! conservative in the right direction (a mid-file test module exempts
//! too much from the panic rule but never flags clean code).

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

/// The panic-family call patterns the budget rule counts. Built with
/// `concat!` so this file's own source never contains the patterns it
/// searches for (the lint lints itself).
const PANIC_PATTERNS: [&str; 6] = [
    concat!(".unw", "rap()"),
    concat!(".exp", "ect("),
    concat!("pan", "ic!("),
    concat!("unreach", "able!("),
    concat!("to", "do!("),
    concat!("unimple", "mented!("),
];

/// The `set_var` patterns the env-discipline rule searches for.
const SET_VAR_PATTERN: &str = concat!("env::set", "_var");

/// The attribute every crate root must carry.
const FORBID_ATTR: &str = "#![forbid(unsafe_code)]";

/// Per-file panic budgets for pre-existing library code, counted with
/// exactly the logic in [`count_panics`]. A file not listed here has a
/// budget of zero. Keep this list sorted by path.
const PANIC_BUDGET: [(&str, usize); 22] = [
    ("crates/bench/src/lib.rs", 3),
    ("crates/compat/criterion/src/lib.rs", 5),
    ("crates/compat/proptest/src/lib.rs", 1),
    ("crates/datagen/src/dump.rs", 3),
    ("crates/datagen/src/generator.rs", 7),
    ("crates/datagen/src/schema.rs", 7),
    ("crates/datagen/src/tasks.rs", 1),
    ("crates/etable/src/pattern.rs", 1),
    ("crates/etable/src/setops.rs", 1),
    ("crates/etable/src/testutil.rs", 10),
    ("crates/relational/src/algebra.rs", 3),
    ("crates/relational/src/database.rs", 2),
    ("crates/relational/src/intern.rs", 13),
    ("crates/relational/src/storage/codec.rs", 1),
    ("crates/relational/src/storage/paged.rs", 2),
    ("crates/relational/src/table.rs", 5),
    ("crates/study/src/participant.rs", 1),
    ("crates/study/src/runner.rs", 1),
    ("crates/study/src/scripts.rs", 11),
    ("crates/tgm/src/ids.rs", 1),
    ("crates/tgm/src/translate.rs", 10),
    ("src/lib.rs", 1),
];

/// Default ceiling for the non-test region of a source file, in lines.
const SIZE_BUDGET_DEFAULT: usize = 600;

/// Per-file size ceilings for pre-existing modules that outgrew the
/// default before the rule landed, counted with exactly the logic in
/// [`count_module_lines`]. Ceilings sit modestly above each file's
/// current size: growth prompts a split, shrinking is always fine. Keep
/// this list sorted by path.
const SIZE_BUDGET: [(&str, usize); 8] = [
    ("crates/compat/criterion/src/lib.rs", 650),
    ("crates/etable/src/sql_translate.rs", 1000),
    ("crates/relational/src/algebra.rs", 950),
    ("crates/relational/src/colrel.rs", 750),
    ("crates/relational/src/sql/analyze.rs", 1200),
    ("crates/relational/src/storage/format.rs", 700),
    ("crates/relational/src/table.rs", 850),
    ("crates/tgm/src/translate.rs", 700),
];

/// One rule violation at one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings (budget, missing attr).
    pub line: usize,
    /// Short rule identifier: `forbid-attr`, `panic-budget`, `set-var`,
    /// `file-size`.
    pub rule: &'static str,
    /// Human-readable description of what tripped.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// True when the path names a crate root that must carry the forbid
/// attribute.
fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs")
}

/// True when the path is binary code, exempt from the panic budget
/// (CLI entry points and bench drivers may panic on startup).
fn is_binary(rel: &str) -> bool {
    rel.contains("/src/bin/") || rel.ends_with("src/main.rs")
}

/// True when the path is an integration-test file (a `tests/` tree):
/// exempt from the panic budget, subject to the `set_var` rule on every
/// line.
fn is_test_file(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

/// The allowlisted panic budget for a file (zero when unlisted).
fn budget_for(rel: &str) -> usize {
    PANIC_BUDGET
        .iter()
        .find(|(p, _)| *p == rel)
        .map(|&(_, n)| n)
        .unwrap_or(0)
}

/// The allowlisted size ceiling for a file (the default when unlisted).
fn size_budget_for(rel: &str) -> usize {
    SIZE_BUDGET
        .iter()
        .find(|(p, _)| *p == rel)
        .map(|&(_, n)| n)
        .unwrap_or(SIZE_BUDGET_DEFAULT)
}

/// Counts the lines in the non-test region of a source file — everything
/// before the first `#[cfg(test)]` line. This is the file-size rule's
/// exact metric.
pub fn count_module_lines(content: &str) -> usize {
    content
        .lines()
        .take_while(|l| !l.contains("#[cfg(test)]"))
        .count()
}

/// Counts panic-family calls in the non-test, non-comment region of a
/// source file. This is the budget rule's exact metric — keep it in sync
/// with the allowlist comment above.
pub fn count_panics(content: &str) -> usize {
    let mut count = 0;
    for line in content.lines() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        let s = line.trim_start();
        if s.starts_with("//") {
            continue;
        }
        for pat in PANIC_PATTERNS {
            count += s.matches(pat).count();
        }
    }
    count
}

/// Lints one source file. `rel` is the workspace-relative path (forward
/// slashes); `content` is the file's text.
pub fn check_file(rel: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let test_file = is_test_file(rel);

    // Rule 1: crate roots must carry the forbid attribute verbatim.
    if !test_file && is_crate_root(rel) && !content.lines().any(|l| l.trim() == FORBID_ATTR) {
        out.push(Violation {
            file: rel.to_string(),
            line: 0,
            rule: "forbid-attr",
            message: format!("crate root is missing `{FORBID_ATTR}`"),
        });
    }

    // Rule 2: panic budget over the non-test region of library code.
    if !test_file && !is_binary(rel) {
        let count = count_panics(content);
        let budget = budget_for(rel);
        if count > budget {
            out.push(Violation {
                file: rel.to_string(),
                line: 0,
                rule: "panic-budget",
                message: format!(
                    "{count} panic-family call(s) in library code, budget is {budget} \
                     (return Result or move the call under #[cfg(test)])"
                ),
            });
        }
    }

    // Rule 4: file-size budget over the non-test region of src files.
    if !test_file {
        let lines = count_module_lines(content);
        let ceiling = size_budget_for(rel);
        if lines > ceiling {
            out.push(Violation {
                file: rel.to_string(),
                line: 0,
                rule: "file-size",
                message: format!(
                    "{lines} non-test line(s), ceiling is {ceiling} \
                     (split the module; test code never counts)"
                ),
            });
        }
    }

    // Rule 3: no set_var in test code — #[cfg(test)] regions of library
    // sources, or anywhere in an integration-test file.
    let mut in_test = test_file;
    for (i, line) in content.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            in_test = true;
        }
        let s = line.trim_start();
        if s.starts_with("//") {
            continue;
        }
        if in_test && s.contains(SET_VAR_PATTERN) {
            out.push(Violation {
                file: rel.to_string(),
                line: i + 1,
                rule: "set-var",
                message: "set_var in test code mutates shared process state (a data \
                          race under threads) and the executor pool reads its size \
                          only once; sweep pool sizes with exec::pool::with_pool / \
                          PoolConfig::fixed instead"
                    .to_string(),
            });
        }
    }

    out
}

/// Recursively collects `.rs` files under `dir` into `files`.
fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every source tree in the workspace rooted at `root`: the
/// umbrella crate's `src/` and `tests/` plus each crate's
/// `crates/**/{src,tests}/` (compat shims included). `src/` trees get
/// all three rules; `tests/` trees get the `set_var` rule only (see
/// [`check_file`]). `benches/` and `examples/` are out of scope.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut crate_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let path = entry?.path();
            if !path.is_dir() {
                continue;
            }
            if path.join("src").is_dir() {
                crate_dirs.push(path);
            } else {
                // One nesting level for grouped crates (crates/compat/*).
                for sub in std::fs::read_dir(&path)? {
                    let sub = sub?.path();
                    if sub.join("src").is_dir() {
                        crate_dirs.push(sub);
                    }
                }
            }
        }
    }
    crate_dirs.sort();

    let mut files = Vec::new();
    for dir in crate_dirs {
        for sub in ["src", "tests"] {
            let tree = dir.join(sub);
            if tree.is_dir() {
                collect_rs(&tree, &mut files)?;
            }
        }
    }

    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)?;
        out.extend(check_file(&rel, &content));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lib_file_passes() {
        let src = "//! docs\npub fn f() -> u32 { 1 }\n";
        assert!(check_file("crates/foo/src/util.rs", src).is_empty());
    }

    #[test]
    fn crate_root_requires_forbid_attr() {
        let bad = "//! docs\npub fn f() {}\n";
        let v = check_file("crates/foo/src/lib.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbid-attr");
        let good = "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(check_file("crates/foo/src/lib.rs", good).is_empty());
    }

    #[test]
    fn panic_in_lib_code_is_flagged() {
        let src = format!(
            "pub fn f(o: Option<u32>) -> u32 {{ o{} }}\n",
            PANIC_PATTERNS[0]
        );
        let v = check_file("crates/foo/src/util.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic-budget");
        assert!(v[0].message.contains("budget is 0"));
    }

    #[test]
    fn panic_in_test_region_comment_or_binary_is_exempt() {
        let pat = PANIC_PATTERNS[0];
        // Test region: everything after #[cfg(test)].
        let test_region = format!(
            "pub fn f() {{}}\n#[cfg(test)]\nmod t {{ fn g(o: Option<u32>) -> u32 {{ o{pat} }} }}\n"
        );
        assert!(check_file("crates/foo/src/util.rs", &test_region).is_empty());
        // Comment lines don't count.
        let comment = format!("// calling {pat} here would be bad\npub fn f() {{}}\n");
        assert!(check_file("crates/foo/src/util.rs", &comment).is_empty());
        // Binaries are exempt from the budget entirely.
        let bin = format!("#![forbid(unsafe_code)]\nfn main() {{ std::fs::read(\"x\"){pat}; }}\n");
        assert!(check_file("crates/foo/src/bin/tool.rs", &bin).is_empty());
        assert!(check_file("crates/foo/src/main.rs", &bin).is_empty());
    }

    #[test]
    fn allowlisted_budget_is_a_ceiling() {
        let pat = PANIC_PATTERNS[0];
        // tgm/ids.rs has a budget of exactly 1.
        let at_budget = format!("pub fn f(o: Option<u32>) -> u32 {{ o{pat} }}\n");
        assert!(check_file("crates/tgm/src/ids.rs", &at_budget).is_empty());
        let over = format!("pub fn f(o: Option<u32>) -> u32 {{ o{pat} + o{pat} }}\n");
        let v = check_file("crates/tgm/src/ids.rs", &over);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("budget is 1"));
    }

    #[test]
    fn oversized_module_is_flagged() {
        let big = "pub fn f() {}\n".repeat(SIZE_BUDGET_DEFAULT + 1);
        let v = check_file("crates/foo/src/util.rs", &big);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "file-size");
        assert!(v[0].message.contains("ceiling is 600"), "{}", v[0].message);
        // Exactly at the ceiling passes.
        let at = "pub fn f() {}\n".repeat(SIZE_BUDGET_DEFAULT);
        assert!(check_file("crates/foo/src/util.rs", &at).is_empty());
    }

    #[test]
    fn test_region_does_not_count_toward_file_size() {
        let src = format!(
            "pub fn f() {{}}\n#[cfg(test)]\n{}",
            "mod t {}\n".repeat(SIZE_BUDGET_DEFAULT * 2)
        );
        assert!(check_file("crates/foo/src/util.rs", &src).is_empty());
        // Integration tests are exempt entirely.
        let big = "fn t() {}\n".repeat(SIZE_BUDGET_DEFAULT * 2);
        assert!(check_file("crates/foo/tests/it.rs", &big).is_empty());
    }

    #[test]
    fn allowlisted_size_ceiling_is_a_ceiling() {
        // table.rs carries an 850-line ceiling.
        let under = "pub fn f() {}\n".repeat(840);
        assert!(check_file("crates/relational/src/table.rs", &under).is_empty());
        let over = "pub fn f() {}\n".repeat(851);
        let v = check_file("crates/relational/src/table.rs", &over);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("ceiling is 850"), "{}", v[0].message);
    }

    #[test]
    fn set_var_in_unit_test_is_flagged() {
        let sv = SET_VAR_PATTERN;
        let bad = format!(
            "pub fn f() {{}}\n#[cfg(test)]\nmod t {{\n    #[test]\n    fn g() {{ std::{sv}(\"K\", \"1\"); }}\n}}\n"
        );
        let v = check_file("crates/foo/src/util.rs", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "set-var");
        assert_eq!(v[0].line, 5);
        // Outside the test region it is allowed (bench harness setup).
        let ok = format!("pub fn f() {{ std::{sv}(\"K\", \"1\"); }}\n");
        assert!(check_file("crates/foo/src/util.rs", &ok).is_empty());
    }

    #[test]
    fn set_var_in_integration_test_is_flagged() {
        let sv = SET_VAR_PATTERN;
        // Integration tests have no #[cfg(test)] marker; the whole file is
        // test code.
        let bad = format!("#[test]\nfn sweep() {{ std::{sv}(\"K\", \"2\"); }}\n");
        for rel in [
            "crates/relational/tests/parallel_scan.rs",
            "tests/sql_fuzz.rs",
        ] {
            let v = check_file(rel, &bad);
            assert_eq!(v.len(), 1, "{rel}");
            assert_eq!(v[0].rule, "set-var");
            assert_eq!(v[0].line, 2);
        }
    }

    #[test]
    fn integration_tests_are_exempt_from_panic_budget_and_forbid_attr() {
        let pat = PANIC_PATTERNS[0];
        let src = format!("#[test]\nfn t() {{ std::fs::read(\"x\"){pat}; }}\n");
        assert!(check_file("crates/foo/tests/it.rs", &src).is_empty());
        // Even a tests/ path that looks like a crate root stays exempt.
        assert!(check_file("crates/foo/tests/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn seeded_workspace_violation_is_caught() {
        // Build a miniature workspace in a temp dir with one dirty crate,
        // and check the walker finds it end to end.
        let root = std::env::temp_dir().join(format!("etable-lint-seed-{}", std::process::id()));
        let src = root.join("crates").join("dirty").join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            format!(
                "pub fn f(o: Option<u32>) -> u32 {{ o{} }}\n",
                PANIC_PATTERNS[0]
            ),
        )
        .unwrap();
        let violations = check_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"forbid-attr"), "{violations:?}");
        assert!(rules.contains(&"panic-budget"), "{violations:?}");
    }

    #[test]
    fn workspace_is_clean() {
        // The real tree must pass its own lint; this makes tier-1 tests
        // enforce the rules even where CI is not running.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let violations = check_workspace(root).expect("walk workspace");
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
