//! `etable` — an interactive command-line front-end for browsing a
//! relational database through the ETable presentation data model.
//!
//! ```text
//! $ cargo run -p etable-cli --bin etable
//! etable> open Papers
//! etable> filter year >= 2014
//! etable> pivot Authors
//! etable> sort Papers desc
//! etable> sql
//! ```
//!
//! By default it loads the synthetic academic database (use
//! `ETABLE_SCALE=<papers>` to change the size, `ETABLE_SEED=<n>` for a
//! different world) and browses it embedded. Commands also stream from
//! stdin, so the binary works in pipes:
//! `echo -e "open Papers\nshow-table 3" | etable`.
//!
//! Two more modes expose the same database over the wire (in-memory
//! only: wire writes last for the server's lifetime, nothing persists
//! across restarts):
//!
//! ```text
//! $ etable serve [addr]          # default 127.0.0.1:7878
//! $ etable client [addr]         # SQL prompt against a running server
//! ```

#![forbid(unsafe_code)]

use etable_cli::engine::Engine;
use etable_core::connection::Connection;
use etable_datagen::{load_or_generate, GenConfig};
use etable_relational::algebra::Relation;
use etable_relational::shared::SharedDatabase;
use etable_server::{Client, Server};
use etable_tgm::{translate, Tgdb, TranslateOptions};
use std::io::{BufRead, IsTerminal, Write};
use std::sync::Arc;

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => repl(),
        Some("serve") => serve(args.get(1).map_or(DEFAULT_ADDR, String::as_str)),
        Some("client") => client(args.get(1).map_or(DEFAULT_ADDR, String::as_str)),
        Some(other) => {
            eprintln!("error: unknown mode `{other}` (expected `serve` or `client`)");
            std::process::exit(2);
        }
    }
}

/// Loads (or generates) the synthetic academic corpus per the
/// environment and translates it.
fn load_environment() -> (SharedDatabase, Arc<Tgdb>) {
    let mut cfg = match GenConfig::medium().with_scale_from_env() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    if let Some(seed) = std::env::var("ETABLE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        cfg.seed = seed;
    }
    eprintln!(
        "loading synthetic academic database ({} papers)...",
        cfg.papers
    );
    // Cold starts hit the content-addressed snapshot cache when one
    // exists for this exact configuration (ETABLE_SNAPSHOT=off disables).
    let db = load_or_generate(&cfg);
    let tgdb = translate(&db, &TranslateOptions::default()).expect("translation");
    eprintln!(
        "ready: {} nodes, {} edges.",
        tgdb.instances.node_count(),
        tgdb.instances.edge_count()
    );
    (SharedDatabase::new(db), Arc::new(tgdb))
}

/// The embedded browsing REPL (the default mode).
fn repl() {
    let (db, tgdb) = load_environment();
    eprintln!("Type `help` for commands.");
    let mut engine = Engine::new(Connection::connect(&db, &tgdb));
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    let mut out = std::io::stdout();
    loop {
        if interactive {
            print!("etable> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match engine.eval_line(&line) {
            Ok(text) if text.is_empty() => {}
            Ok(text) => println!("{text}"),
            Err(msg) => eprintln!("error: {msg}"),
        }
        if engine.done {
            break;
        }
    }
}

/// `etable serve [addr]`: the multi-threaded server over the corpus.
/// Runs until stdin closes (or `quit`/EOF on a pipe), then shuts down
/// cleanly, joining every connection thread.
///
/// The deployment is **in-memory only**: wire DML publishes new epochs
/// for the server's lifetime but nothing is written back to disk, so
/// every restart reloads the generated corpus. The startup banner says
/// so, because clients cannot tell from the protocol alone.
fn serve(addr: &str) {
    let (db, tgdb) = load_environment();
    let server = match Server::start(addr, db, tgdb) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "serving on {} — connect with `etable client {}`.\n\
         note: this deployment is in-memory only; writes are visible to \
         all clients but are NOT persisted across restarts.\n\
         press Enter or close stdin to stop",
        server.addr(),
        server.addr()
    );
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    eprintln!("shutting down...");
    if let Err(e) = server.shutdown() {
        eprintln!("error: unclean shutdown: {e}");
        std::process::exit(1);
    }
}

/// `etable client [addr]`: a SQL line prompt speaking the wire protocol.
fn client(addr: &str) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "connected to {addr} (epoch {}); one SQL statement per line",
        client.epoch()
    );
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    let mut out = std::io::stdout();
    loop {
        if interactive {
            print!("sql> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("quit") {
            break;
        }
        match client.query(sql) {
            Ok(rel) => print!("{}", render_relation(&rel)),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    if let Err(e) = client.quit() {
        eprintln!("error: {e}");
    }
}

/// Plain column-aligned rendering for wire results.
fn render_relation(rel: &Relation) -> String {
    let headers: Vec<String> = rel.columns.iter().map(|c| c.qualified_name()).collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("{}\n", padded.join("  ").trim_end())
    };
    let mut text = line(&headers);
    for row in &rows {
        text.push_str(&line(row));
    }
    text.push_str(&format!(
        "({} row{})\n",
        rel.rows.len(),
        if rel.rows.len() == 1 { "" } else { "s" }
    ));
    text
}
