//! `etable` — an interactive command-line front-end for browsing a
//! relational database through the ETable presentation data model.
//!
//! ```text
//! $ cargo run -p etable-cli --bin etable
//! etable> open Papers
//! etable> filter year >= 2014
//! etable> pivot Authors
//! etable> sort Papers desc
//! etable> sql
//! ```
//!
//! By default it loads the synthetic academic database (use
//! `ETABLE_SCALE=<papers>` to change the size, `ETABLE_SEED=<n>` for a
//! different world). Commands also stream from stdin, so the binary works
//! in pipes: `echo -e "open Papers\nshow-table 3" | etable`.

#![forbid(unsafe_code)]

use etable_cli::engine::Engine;
use etable_datagen::{load_or_generate, GenConfig};
use etable_tgm::{translate, TranslateOptions};
use std::io::{BufRead, IsTerminal, Write};

fn main() {
    let mut cfg = match GenConfig::medium().with_scale_from_env() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    if let Some(seed) = std::env::var("ETABLE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        cfg.seed = seed;
    }
    eprintln!(
        "loading synthetic academic database ({} papers)...",
        cfg.papers
    );
    // Cold starts hit the content-addressed snapshot cache when one
    // exists for this exact configuration (ETABLE_SNAPSHOT=off disables).
    let db = load_or_generate(&cfg);
    let tgdb = translate(&db, &TranslateOptions::default()).expect("translation");
    eprintln!(
        "ready: {} nodes, {} edges. Type `help` for commands.",
        tgdb.instances.node_count(),
        tgdb.instances.edge_count()
    );

    let mut engine = Engine::new(&db, &tgdb);
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    let mut out = std::io::stdout();
    loop {
        if interactive {
            print!("etable> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match engine.eval_line(&line) {
            Ok(text) if text.is_empty() => {}
            Ok(text) => println!("{text}"),
            Err(msg) => eprintln!("error: {msg}"),
        }
        if engine.done {
            break;
        }
    }
}
