//! # etable-cli
//!
//! A line-oriented interactive front-end for the ETable presentation data
//! model — the text-mode counterpart of the paper's web interface (§6.2's
//! three-tier architecture collapses to: this binary, the `etable-core`
//! session layer, and the in-memory engine).
//!
//! * [`command`] — the command grammar and parser,
//! * [`engine`] — the interpreter applying commands to a session.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod command;
pub mod engine;
