//! The CLI command language: a line-oriented front-end for the paper's
//! user-level actions (§6.1) plus inspection and export commands.
//!
//! ```text
//! tables                        list entity types (default table list)
//! open <table>                  Open action
//! filter <attr> <op> <value>    Filter action (=, <>, <, <=, >, >=, like)
//! filter-ref <column> <pattern> filter by neighbor labels (subquery filter)
//! pivot <column>                Pivot action (add/shift)
//! single <row#> <column> <k>    click the k-th reference in a cell
//! seeall <row#> <column>        click a cell's reference count
//! sort <column> [asc|desc]      sort rows
//! hide <column> / show <column> toggle columns
//! focus <k>                     keep only the k best columns
//! revert <step#>                revert to a history step
//! show-table [n]                render the current ETable (n rows)
//! schema                        render the pattern diagram
//! history                       list history steps
//! sql                           show the §8 SQL for the current pattern
//! explain                       show the engine's plan for that SQL
//! export json|csv               dump the current table
//! help                          this text
//! quit                          exit
//! ```

use etable_relational::expr::CmpOp;
use etable_relational::value::Value;

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List entity tables.
    Tables,
    /// Open a table.
    Open(String),
    /// Filter the primary node type on an attribute.
    Filter {
        /// Attribute name.
        attr: String,
        /// Comparison operator, or LIKE when `like` is set.
        op: FilterOp,
        /// Literal value / pattern.
        value: String,
    },
    /// Filter by neighbor-column labels.
    FilterRef {
        /// Column name.
        column: String,
        /// LIKE pattern.
        pattern: String,
    },
    /// Pivot on a column.
    Pivot(String),
    /// Click the k-th entity reference of a row/column cell.
    Single {
        /// 1-based row number in the rendered table.
        row: usize,
        /// Column name.
        column: String,
        /// 1-based reference index in the cell.
        index: usize,
    },
    /// Click a cell's count.
    Seeall {
        /// 1-based row number.
        row: usize,
        /// Column name.
        column: String,
    },
    /// Sort by a column.
    Sort {
        /// Column name.
        column: String,
        /// Descending?
        descending: bool,
    },
    /// Hide a column.
    Hide(String),
    /// Show a hidden column.
    Show(String),
    /// Keep only the k most informative columns.
    Focus(usize),
    /// Revert to a 1-based history step.
    Revert(usize),
    /// Render the current table with an optional row limit.
    ShowTable(Option<usize>),
    /// Render the pattern diagram.
    Schema,
    /// List history.
    History,
    /// Show the §8 SQL translation.
    Sql,
    /// Show the relational engine's plan for the current pattern's SQL.
    Explain,
    /// Export the current table.
    Export(ExportFormat),
    /// Print help.
    Help,
    /// Exit.
    Quit,
}

/// Filter operators accepted by `filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// A comparison operator.
    Cmp(CmpOp),
    /// SQL LIKE.
    Like,
}

/// Export formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// JSON interchange form.
    Json,
    /// Flat CSV.
    Csv,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Splits a command line into tokens, honoring single and double quotes so
/// multi-word values (`filter title = 'Making database systems usable'`)
/// stay together.
pub fn tokenize(line: &str) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match (quote, c) {
            (Some(q), c) if c == q => quote = None,
            (Some(_), c) => cur.push(c),
            (None, '\'') | (None, '"') => quote = Some(c),
            (None, c) if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            (None, c) => cur.push(c),
        }
    }
    if quote.is_some() {
        return Err(ParseError("unterminated quote".into()));
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Parses one command line; empty lines yield `None`.
pub fn parse(line: &str) -> Result<Option<Command>, ParseError> {
    let tokens = tokenize(line)?;
    let Some(head) = tokens.first() else {
        return Ok(None);
    };
    let arg = |i: usize| -> Result<&str, ParseError> {
        tokens
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| ParseError(format!("`{head}` needs more arguments; try `help`")))
    };
    let num = |i: usize| -> Result<usize, ParseError> {
        arg(i)?
            .parse()
            .map_err(|_| ParseError(format!("`{}` is not a number", tokens[i])))
    };
    let cmd = match head.to_ascii_lowercase().as_str() {
        "tables" => Command::Tables,
        "open" => Command::Open(arg(1)?.to_string()),
        "filter" => {
            let attr = arg(1)?.to_string();
            let op = match arg(2)?.to_ascii_lowercase().as_str() {
                "=" | "==" => FilterOp::Cmp(CmpOp::Eq),
                "<>" | "!=" => FilterOp::Cmp(CmpOp::Ne),
                "<" => FilterOp::Cmp(CmpOp::Lt),
                "<=" => FilterOp::Cmp(CmpOp::Le),
                ">" => FilterOp::Cmp(CmpOp::Gt),
                ">=" => FilterOp::Cmp(CmpOp::Ge),
                "like" => FilterOp::Like,
                other => return Err(ParseError(format!("unknown operator `{other}`"))),
            };
            Command::Filter {
                attr,
                op,
                value: arg(3)?.to_string(),
            }
        }
        "filter-ref" => Command::FilterRef {
            column: arg(1)?.to_string(),
            pattern: arg(2)?.to_string(),
        },
        "pivot" => Command::Pivot(arg(1)?.to_string()),
        "single" => Command::Single {
            row: num(1)?,
            column: arg(2)?.to_string(),
            index: num(3)?,
        },
        "seeall" => Command::Seeall {
            row: num(1)?,
            column: arg(2)?.to_string(),
        },
        "sort" => {
            let column = arg(1)?.to_string();
            let descending = match tokens.get(2).map(|s| s.to_ascii_lowercase()) {
                None => true,
                Some(s) if s == "desc" => true,
                Some(s) if s == "asc" => false,
                Some(other) => return Err(ParseError(format!("expected asc/desc, got `{other}`"))),
            };
            Command::Sort { column, descending }
        }
        "hide" => Command::Hide(arg(1)?.to_string()),
        "show" => Command::Show(arg(1)?.to_string()),
        "focus" => Command::Focus(num(1)?),
        "revert" => Command::Revert(num(1)?),
        "show-table" | "table" => Command::ShowTable(tokens.get(1).map(|_| num(1)).transpose()?),
        "schema" => Command::Schema,
        "history" => Command::History,
        "sql" => Command::Sql,
        "explain" => Command::Explain,
        "export" => match arg(1)?.to_ascii_lowercase().as_str() {
            "json" => Command::Export(ExportFormat::Json),
            "csv" => Command::Export(ExportFormat::Csv),
            other => return Err(ParseError(format!("unknown export format `{other}`"))),
        },
        "help" | "?" => Command::Help,
        "quit" | "exit" | "q" => Command::Quit,
        other => return Err(ParseError(format!("unknown command `{other}`; try `help`"))),
    };
    Ok(Some(cmd))
}

/// Parses a CLI literal: integers stay integers, everything else is text.
pub fn parse_value(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(f) = s.parse::<f64>() {
        Value::Float(f)
    } else {
        Value::text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_honors_quotes() {
        assert_eq!(
            tokenize("filter title = 'Making database systems usable'").unwrap(),
            vec!["filter", "title", "=", "Making database systems usable"]
        );
        assert_eq!(tokenize("a \"b c\" d").unwrap(), vec!["a", "b c", "d"]);
        assert!(tokenize("open 'unterminated").is_err());
    }

    #[test]
    fn parses_all_action_commands() {
        assert_eq!(parse("tables").unwrap(), Some(Command::Tables));
        assert_eq!(
            parse("open Papers").unwrap(),
            Some(Command::Open("Papers".into()))
        );
        assert_eq!(
            parse("filter year >= 2005").unwrap(),
            Some(Command::Filter {
                attr: "year".into(),
                op: FilterOp::Cmp(CmpOp::Ge),
                value: "2005".into()
            })
        );
        assert_eq!(
            parse("filter title like '%user%'").unwrap(),
            Some(Command::Filter {
                attr: "title".into(),
                op: FilterOp::Like,
                value: "%user%".into()
            })
        );
        assert_eq!(
            parse("pivot Authors").unwrap(),
            Some(Command::Pivot("Authors".into()))
        );
        assert_eq!(
            parse("seeall 2 Authors").unwrap(),
            Some(Command::Seeall {
                row: 2,
                column: "Authors".into()
            })
        );
        assert_eq!(
            parse("single 1 Authors 2").unwrap(),
            Some(Command::Single {
                row: 1,
                column: "Authors".into(),
                index: 2
            })
        );
        assert_eq!(
            parse("sort Papers desc").unwrap(),
            Some(Command::Sort {
                column: "Papers".into(),
                descending: true
            })
        );
        assert_eq!(
            parse("sort year asc").unwrap(),
            Some(Command::Sort {
                column: "year".into(),
                descending: false
            })
        );
        assert_eq!(parse("focus 5").unwrap(), Some(Command::Focus(5)));
        assert_eq!(parse("revert 1").unwrap(), Some(Command::Revert(1)));
        assert_eq!(
            parse("export json").unwrap(),
            Some(Command::Export(ExportFormat::Json))
        );
        assert_eq!(parse("q").unwrap(), Some(Command::Quit));
    }

    #[test]
    fn empty_and_bad_lines() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("   ").unwrap(), None);
        assert!(parse("frobnicate").is_err());
        assert!(parse("filter year").is_err());
        assert!(parse("filter year ~~ 3").is_err());
        assert!(parse("single one Authors 1").is_err());
        assert!(parse("export yaml").is_err());
        assert!(parse("sort year sideways").is_err());
    }

    #[test]
    fn show_table_row_limit() {
        assert_eq!(parse("show-table").unwrap(), Some(Command::ShowTable(None)));
        assert_eq!(
            parse("show-table 25").unwrap(),
            Some(Command::ShowTable(Some(25)))
        );
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("4.5"), Value::Float(4.5));
        assert_eq!(parse_value("SIGMOD"), Value::Text("SIGMOD".into()));
    }
}
