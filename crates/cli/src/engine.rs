//! The CLI interpreter: applies parsed [`Command`]s to an ETable
//! [`Connection`] and produces the text to print. Fully testable without
//! a terminal.
//!
//! The engine owns its [`Connection`] — the same handle `etable-server`
//! gives every accepted socket — so the interpreter is identical whether
//! it is the only client (the embedded CLI) or one of many.

use crate::command::{parse_value, Command, ExportFormat, FilterOp, ParseError};
use etable_core::connection::Connection;
use etable_core::export;
use etable_core::pattern::{FilterAtom, NodeFilter};
use etable_core::render::{render_etable, RenderOptions};
use etable_core::sql_translate;

/// The interpreter state.
pub struct Engine {
    conn: Connection,
    /// Set once `quit` has been executed.
    pub done: bool,
}

/// Outcome of one command.
pub type CmdResult = Result<String, String>;

impl Engine {
    /// Creates an engine over a connection to a (possibly shared)
    /// deployment.
    pub fn new(conn: Connection) -> Self {
        Engine { conn, done: false }
    }

    /// The underlying connection (e.g. for opening sibling connections).
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// Parses and executes one input line.
    pub fn eval_line(&mut self, line: &str) -> CmdResult {
        match crate::command::parse(line) {
            Ok(None) => Ok(String::new()),
            Ok(Some(cmd)) => self.eval(cmd),
            Err(ParseError(m)) => Err(m),
        }
    }

    /// Executes one parsed command.
    pub fn eval(&mut self, cmd: Command) -> CmdResult {
        match cmd {
            Command::Quit => {
                self.done = true;
                Ok("bye".into())
            }
            Command::Help => Ok(HELP.trim().to_string()),
            Command::Tables => {
                let names: Vec<String> = self
                    .conn
                    .session()
                    .default_table_list()
                    .into_iter()
                    .map(|(_, n)| n)
                    .collect();
                Ok(names.join("\n"))
            }
            Command::Open(name) => {
                self.conn
                    .session_mut()
                    .open_by_name(&name)
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::Filter { attr, op, value } => {
                let filter = match op {
                    FilterOp::Cmp(op) => NodeFilter::cmp(attr, op, parse_value(&value)),
                    FilterOp::Like => NodeFilter::like(attr, value),
                };
                self.conn
                    .session_mut()
                    .filter(filter)
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::FilterRef { column, pattern } => {
                // Resolve the column to an edge type of the primary. The
                // pattern borrow must end before the mutable filter call.
                let edge = {
                    let q = self
                        .conn
                        .session()
                        .current_pattern()
                        .ok_or("no table is open")?;
                    let primary_ty = q.primary_node().node_type;
                    let (edge, _) = self
                        .conn
                        .tgdb()
                        .schema
                        .outgoing_by_name(primary_ty, &column)
                        .ok_or_else(|| format!("no neighbor column `{column}`"))?;
                    edge
                };
                self.conn
                    .session_mut()
                    .filter(NodeFilter::atom(FilterAtom::NeighborLabelLike {
                        edge,
                        pattern,
                    }))
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::Pivot(column) => {
                self.conn
                    .session_mut()
                    .pivot(&column)
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::Single { row, column, index } => {
                let node = self.resolve_ref(row, &column, index)?;
                self.conn
                    .session_mut()
                    .single(node)
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::Seeall { row, column } => {
                let t = self
                    .conn
                    .session_mut()
                    .etable()
                    .map_err(|e| e.to_string())?;
                let r = t
                    .rows
                    .get(row.checked_sub(1).ok_or("rows are numbered from 1")?)
                    .ok_or_else(|| format!("no row {row}"))?;
                let node = r.node;
                self.conn
                    .session_mut()
                    .seeall(node, &column)
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::Sort { column, descending } => {
                self.conn.session_mut().sort(&column, descending);
                self.render_current(None)
            }
            Command::Hide(c) => {
                self.conn.session_mut().hide(&c);
                self.render_current(None)
            }
            Command::Show(c) => {
                self.conn.session_mut().show(&c);
                self.render_current(None)
            }
            Command::Focus(k) => {
                let kept = self
                    .conn
                    .session_mut()
                    .focus_top_columns(k)
                    .map_err(|e| e.to_string())?;
                Ok(format!("keeping columns: {}", kept.join(", ")))
            }
            Command::Revert(step) => {
                self.conn
                    .session_mut()
                    .revert(step.checked_sub(1).ok_or("steps are numbered from 1")?)
                    .map_err(|e| e.to_string())?;
                self.render_current(None)
            }
            Command::ShowTable(limit) => self.render_current(limit),
            Command::Schema => {
                let q = self
                    .conn
                    .session()
                    .current_pattern()
                    .ok_or("no table is open")?;
                Ok(q.diagram(self.conn.tgdb()))
            }
            Command::History => {
                let lines: Vec<String> = self
                    .conn
                    .session()
                    .history()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("{}. {}", i + 1, s.description))
                    .collect();
                Ok(lines.join("\n"))
            }
            Command::Sql => {
                let snap = self.conn.snapshot();
                let q = self
                    .conn
                    .session()
                    .current_pattern()
                    .ok_or("no table is open")?;
                let display = sql_translate::to_sql(self.conn.tgdb(), snap.database(), q)
                    .map_err(|e| e.to_string())?;
                let exec = sql_translate::to_primary_sql(self.conn.tgdb(), snap.database(), q)
                    .map_err(|e| e.to_string())?;
                Ok(format!("{display}\n-- primary keys:\n{exec}"))
            }
            Command::Explain => {
                let sql = {
                    let snap = self.conn.snapshot();
                    let q = self
                        .conn
                        .session()
                        .current_pattern()
                        .ok_or("no table is open")?;
                    sql_translate::to_primary_sql(self.conn.tgdb(), snap.database(), q)
                        .map_err(|e| e.to_string())?
                };
                let rel = self
                    .conn
                    .sql(&format!("EXPLAIN {sql}"))
                    .map_err(|e| e.to_string())?;
                let lines: Vec<String> = rel.rows.iter().map(|r| r[0].to_string()).collect();
                Ok(format!("{sql}\n--\n{}", lines.join("\n")))
            }
            Command::Export(format) => {
                let t = self
                    .conn
                    .session_mut()
                    .etable()
                    .map_err(|e| e.to_string())?;
                Ok(match format {
                    ExportFormat::Json => export::to_json(&t),
                    ExportFormat::Csv => export::to_csv(&t),
                })
            }
        }
    }

    fn render_current(&mut self, limit: Option<usize>) -> CmdResult {
        let t = self
            .conn
            .session_mut()
            .etable()
            .map_err(|e| e.to_string())?;
        let opts = RenderOptions {
            max_rows: limit.unwrap_or(12),
            ..Default::default()
        };
        Ok(render_etable(&t, &opts))
    }

    fn resolve_ref(
        &mut self,
        row: usize,
        column: &str,
        index: usize,
    ) -> Result<etable_tgm::NodeId, String> {
        let t = self
            .conn
            .session_mut()
            .etable()
            .map_err(|e| e.to_string())?;
        let r = t
            .rows
            .get(row.checked_sub(1).ok_or("rows are numbered from 1")?)
            .ok_or_else(|| format!("no row {row}"))?;
        let ci = t
            .column_index(column)
            .ok_or_else(|| format!("no column `{column}`"))?;
        let refs = r.cells[ci]
            .refs()
            .ok_or_else(|| format!("column `{column}` holds plain values, not references"))?;
        refs.get(
            index
                .checked_sub(1)
                .ok_or("references are numbered from 1")?,
        )
        .map(|e| e.node)
        .ok_or_else(|| format!("cell has only {} reference(s)", refs.len()))
    }
}

/// Help text, kept next to the parser's grammar.
pub const HELP: &str = r#"
commands:
  tables                        list entity types
  open <table>                  open a table
  filter <attr> <op> <value>    filter rows (=, <>, <, <=, >, >=, like)
  filter-ref <column> <pattern> filter by neighbor labels
  pivot <column>                pivot on a column (join / change focus)
  single <row#> <column> <k>    follow the k-th reference in a cell
  seeall <row#> <column>        list all entities behind a cell's count
  sort <column> [asc|desc]      sort rows (ref columns sort by count)
  hide <column> / show <column> toggle columns
  focus <k>                     keep only the k best columns
  revert <step#>                go back to a history step
  show-table [n]                render the current table
  schema | history | sql        inspect the session
  explain                       show the engine's plan for the pattern's SQL
  export json|csv               dump the current table
  quit                          exit
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use etable_datagen::{generate, GenConfig};
    use etable_relational::shared::SharedDatabase;
    use etable_tgm::{translate, Tgdb, TranslateOptions};
    use std::sync::{Arc, OnceLock};

    fn env() -> &'static (SharedDatabase, Arc<Tgdb>) {
        static ENV: OnceLock<(SharedDatabase, Arc<Tgdb>)> = OnceLock::new();
        ENV.get_or_init(|| {
            let db = generate(&GenConfig::small());
            let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
            (SharedDatabase::new(db), Arc::new(tgdb))
        })
    }

    fn engine() -> Engine {
        let (db, tgdb) = env();
        Engine::new(Connection::connect(db, tgdb))
    }

    fn run(lines: &[&str]) -> Vec<CmdResult> {
        let mut engine = engine();
        lines.iter().map(|l| engine.eval_line(l)).collect()
    }

    #[test]
    fn full_browsing_session() {
        let out = run(&[
            "tables",
            "open Conferences",
            "filter acronym = SIGMOD",
            "pivot Papers",
            "filter year > 2005",
            "pivot Authors",
            "sort Papers desc",
            "history",
            "schema",
            "sql",
        ]);
        for (i, r) in out.iter().enumerate() {
            assert!(r.is_ok(), "command {i}: {r:?}");
        }
        assert!(out[0].as_ref().unwrap().contains("Papers"));
        assert!(out[7].as_ref().unwrap().contains("5. Pivot to 'Authors'"));
        assert!(out[8].as_ref().unwrap().contains("Authors *"));
        assert!(out[9].as_ref().unwrap().contains("GROUP BY"));
    }

    #[test]
    fn seeall_and_single_follow_references() {
        let out = run(&[
            "open Papers",
            "filter title = 'Making database systems usable'",
            "seeall 1 Authors",
        ]);
        let last = out.last().unwrap().as_ref().unwrap();
        assert!(last.contains("== Authors"), "{last}");
        // 7 planted authors on the usable paper.
        assert!(last.contains("| "), "{last}");

        let out = run(&[
            "open Papers",
            "filter title = 'Making database systems usable'",
            "single 1 Authors 1",
        ]);
        let last = out.last().unwrap().as_ref().unwrap();
        assert!(last.contains("== Authors"), "{last}");
    }

    #[test]
    fn filter_ref_is_the_keyword_subquery() {
        let out = run(&["open Papers", "filter-ref 'Paper_Keywords: keyword' %user%"]);
        assert!(out[1].is_ok(), "{:?}", out[1]);
        let text = out[1].as_ref().unwrap();
        assert!(text.contains("filtered by"), "{text}");
    }

    #[test]
    fn explain_shows_plan() {
        let out = run(&[
            "open Conferences",
            "filter acronym = SIGMOD",
            "pivot Papers",
            "explain",
        ]);
        let text = out.last().unwrap().as_ref().unwrap();
        assert!(text.contains("SELECT DISTINCT"), "{text}");
        assert!(text.contains("pushdown"), "{text}");
        assert!(text.contains("output:"), "{text}");
    }

    #[test]
    fn export_formats() {
        let out = run(&["open Conferences", "export json", "export csv"]);
        assert!(out[1]
            .as_ref()
            .unwrap()
            .starts_with("{\"primary\":\"Conferences\""));
        assert!(out[2].as_ref().unwrap().starts_with("id,acronym,title"));
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let out = run(&[
            "pivot Authors", // nothing open
            "open Nope",     // unknown table
            "open Papers",
            "filter nope = 3",     // unknown attribute
            "pivot year",          // base column
            "seeall 9999 Authors", // bad row
            "single 1 title 1",    // atomic column
            "gibberish",
        ]);
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                assert!(r.is_ok());
            } else {
                assert!(r.is_err(), "command {i} should fail: {r:?}");
            }
        }
    }

    #[test]
    fn focus_and_revert() {
        let out = run(&["open Papers", "focus 3", "show-table 2", "revert 1"]);
        assert!(out[1].as_ref().unwrap().starts_with("keeping columns:"));
        assert!(out[3].is_ok());
    }

    #[test]
    fn quit_sets_done() {
        let mut engine = engine();
        engine.eval_line("quit").unwrap();
        assert!(engine.done);
    }
}
