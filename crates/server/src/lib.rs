//! # etable-server
//!
//! The concurrent serving layer: ETable as a multi-threaded TCP server
//! behind the same [`Connection`](etable_core::connection::Connection)
//! API the embedded CLI uses.
//!
//! Three pieces:
//!
//! - [`proto`] — the length-prefixed, checksummed wire protocol (SQL
//!   text in; columnar result batches or typed error codes out). The
//!   byte-exact layout is documented in DESIGN.md §Wire protocol.
//! - [`server`] — the accept loop plus one handler thread and one
//!   `Connection` per client over a shared
//!   [`SharedDatabase`](etable_relational::shared::SharedDatabase):
//!   reads run on pinned epoch snapshots, writes serialize and publish
//!   new epochs.
//! - [`client`] / [`load`] — the blocking client and the load-test
//!   harness (`serve_load` binary) that gates correctness under
//!   concurrency in CI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod load;
pub mod proto;
pub mod server;

pub use client::Client;
pub use load::{baselines, canon, run_load, LoadReport, ACADEMIC_QUERIES};
pub use server::{Server, ServerStats};
