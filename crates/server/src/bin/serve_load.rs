//! `serve_load` — the serving-layer acceptance gate.
//!
//! Builds the synthetic academic corpus, starts an in-process server,
//! and hammers it with `SERVE_CLIENTS` concurrent clients issuing
//! `SERVE_QUERIES` queries each (defaults 8 × 1000; CI smoke mode sets
//! both low). Every response is compared byte-for-byte against the
//! sequentially computed baseline. Exits nonzero unless:
//!
//! - zero wrong results and zero transport errors,
//! - the server shuts down cleanly (all threads joined, none panicked),
//! - no spill directories are left behind by this process.
//!
//! Prints one report line with p50/p99 latency and aggregate qps — the
//! numbers the `serve` bench family tracks in `BENCH_baseline.json`.

use etable_datagen::{load_or_generate, GenConfig};
use etable_relational::shared::SharedDatabase;
use etable_server::{baselines, run_load, Server, ACADEMIC_QUERIES};
use etable_tgm::{translate, TranslateOptions};
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: {name} must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }
}

/// Spill directories created by this process that still exist — the
/// engine names them `<pid>-<seq>` under `$TMPDIR/etable-spill`, and a
/// clean run removes every one of them on query completion.
fn leftover_spill_dirs() -> Vec<std::path::PathBuf> {
    let root = std::env::temp_dir().join("etable-spill");
    let prefix = format!("{}-", std::process::id());
    let Ok(entries) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix))
        })
        .collect()
}

fn main() {
    let clients = env_usize("SERVE_CLIENTS", 8);
    let per_client = env_usize("SERVE_QUERIES", 1000);

    let db = load_or_generate(&GenConfig::medium());
    let tgdb = translate(&db, &TranslateOptions::default()).expect("translation succeeds");
    let shared = SharedDatabase::new(db);

    let workload = match baselines(&shared, &ACADEMIC_QUERIES) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: baseline query failed: {e}");
            std::process::exit(1);
        }
    };

    let server = match Server::start("127.0.0.1:0", shared, Arc::new(tgdb)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr().to_string();

    let report = run_load(&addr, clients, per_client, &workload);

    let mut failed = false;
    match &report {
        Ok(r) => {
            println!("{}", r.render());
            if !r.clean() {
                eprintln!("error: load run returned wrong or failed responses");
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("error: load run aborted: {e}");
            failed = true;
        }
    }

    if let Err(e) = server.shutdown() {
        eprintln!("error: unclean shutdown: {e}");
        failed = true;
    }

    let leftovers = leftover_spill_dirs();
    if !leftovers.is_empty() {
        eprintln!("error: leftover spill directories: {leftovers:?}");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
}
