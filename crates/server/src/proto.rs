//! The wire protocol: byte-exact framing and message codecs.
//!
//! Every message travels as one **frame** with the same shape as an
//! on-disk segment (the framing deliberately reuses
//! [`etable_relational::storage::codec`], so checksum behavior and its
//! tests carry over):
//!
//! ```text
//! payload_len: u64 LE | payload bytes | crc32(payload): u32 LE
//! ```
//!
//! The payload's first byte is the message type; the rest is the typed
//! body, little-endian, strings length-prefixed (`u32` + UTF-8 bytes).
//! See DESIGN.md "Wire protocol" for the full byte-exact layout of every
//! message. Versioning: the client's `Hello` carries a magic and a
//! protocol version; the server answers `HelloOk` with its own version
//! or a `PROTOCOL` error frame — nothing else is interpreted before the
//! handshake completes. Result sets are encoded **column-major** with a
//! per-message string dictionary (each distinct string once, cells carry
//! `u32` dictionary indices — the same idiom as the table format's
//! string arena).
//!
//! Corruption handling: an oversized length, a checksum mismatch, an
//! unknown message type or a truncated body all decode to
//! [`Error::Protocol`] (never a panic), and the peer that detects them
//! closes the connection. Counts inside a `Result` body (columns, rows,
//! dictionary entries) are attacker-controlled until proven otherwise:
//! each is bounded against the bytes still remaining in the payload
//! **before** it sizes any allocation, so a tiny frame claiming
//! `u64::MAX` rows is a typed refusal, not a giant allocation.

use etable_relational::algebra::{RelColumn, Relation};
use etable_relational::intern::Sym;
use etable_relational::storage::codec::{crc32, PayloadReader, PayloadWriter};
use etable_relational::value::{DataType, Value};
use etable_relational::{Error, ErrorCode, Result};
use std::collections::HashMap;
use std::io::{Read, Write};

/// Protocol magic carried by `Hello`/`HelloOk` ("ETWP" LE).
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"ETWP");
/// Current protocol version. Bump on any layout change.
pub const WIRE_VERSION: u32 = 1;
/// Upper bound on a single frame's payload; larger lengths are rejected
/// before any allocation (a corrupt length must not drive a huge alloc).
pub const MAX_FRAME_LEN: u64 = 64 * 1024 * 1024;

/// Message-type bytes. Client-to-server types are `0x0_`, server-to-
/// client types have the high bit set.
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const QUIT: u8 = 0x03;
    pub const HELLO_OK: u8 = 0x81;
    pub const RESULT: u8 = 0x82;
    pub const ERROR: u8 = 0x83;
}

/// One decoded protocol message (either direction).
#[derive(Debug, Clone)]
pub enum Message {
    /// Client handshake: magic + the protocol version it speaks.
    Hello {
        /// Must equal [`WIRE_MAGIC`].
        magic: u32,
        /// Must equal [`WIRE_VERSION`].
        version: u32,
    },
    /// One SQL statement to execute.
    Query {
        /// The SQL text.
        sql: String,
    },
    /// Orderly goodbye; the server closes the connection after it.
    Quit,
    /// Server handshake answer: its magic/version plus the current epoch.
    HelloOk {
        /// Echoes [`WIRE_MAGIC`].
        magic: u32,
        /// The version the server speaks.
        version: u32,
        /// The shared database's epoch at accept time.
        epoch: u64,
    },
    /// A successful statement's result batch.
    Result {
        /// The epoch the statement observed (reads) or published (writes).
        epoch: u64,
        /// The decoded result relation.
        relation: Relation,
    },
    /// A failed statement or protocol violation, as a stable numeric
    /// [`ErrorCode`] plus the human-readable message.
    Error {
        /// The error class code ([`ErrorCode::as_u16`]).
        code: u16,
        /// The class's message payload.
        message: String,
    },
}

/// Remaps codec bounds-check errors (typed `Storage` because the codec's
/// home is the on-disk format) onto the wire's own error class.
fn as_protocol(e: Error) -> Error {
    match e {
        Error::Storage(m) => Error::Protocol(m),
        other => other,
    }
}

/// Writes one frame: length, payload, checksum.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let io = |e: std::io::Error| Error::Protocol(format!("write failed: {e}"));
    w.write_all(&(payload.len() as u64).to_le_bytes())
        .map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.write_all(&crc32(payload).to_le_bytes()).map_err(io)?;
    w.flush().map_err(io)
}

/// What one attempt to read a frame produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A whole, checksum-verified frame payload.
    Frame(Vec<u8>),
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The socket's read timeout elapsed **before any frame byte**
    /// arrived (poll tick — only possible with a read timeout set).
    /// A timeout *inside* a frame keeps waiting: frames are atomic.
    IdleTimeout,
}

/// Reads one frame's payload, verifying length bound and checksum.
/// Returns `Ok(None)` on a clean end-of-stream **at a frame boundary**;
/// EOF anywhere inside a frame is a protocol error, and so is an idle
/// timeout (use [`read_frame_event`] on sockets with read timeouts).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    match read_frame_event(r)? {
        FrameEvent::Frame(p) => Ok(Some(p)),
        FrameEvent::Eof => Ok(None),
        FrameEvent::IdleTimeout => Err(Error::Protocol("read timed out".into())),
    }
}

/// Timeout-aware [`read_frame`]: idle timeouts at a frame boundary come
/// back as [`FrameEvent::IdleTimeout`] so a server can poll its shutdown
/// flag without ever abandoning a partially received frame.
pub fn read_frame_event(r: &mut impl Read) -> Result<FrameEvent> {
    let mut len_bytes = [0u8; 8];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::Eof => return Ok(FrameEvent::Eof),
        ReadOutcome::IdleTimeout => return Ok(FrameEvent::IdleTimeout),
        ReadOutcome::Filled => {}
    }
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(Error::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_fully(r, &mut payload, "frame payload")?;
    let mut crc_bytes = [0u8; 4];
    read_fully(r, &mut crc_bytes, "frame checksum")?;
    let expect = u32::from_le_bytes(crc_bytes);
    let got = crc32(&payload);
    if got != expect {
        return Err(Error::Protocol(format!(
            "frame checksum mismatch (stored {expect:#010x}, computed {got:#010x})"
        )));
    }
    Ok(FrameEvent::Frame(payload))
}

enum ReadOutcome {
    Filled,
    Eof,
    IdleTimeout,
}

/// True for the two error kinds a socket read timeout produces
/// (`WouldBlock` on unix, `TimedOut` on windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// `read_exact`, except a clean EOF or a read timeout **before the first
/// byte** is reported as its own outcome instead of an error, and a
/// timeout after the first byte keeps waiting (frames are atomic).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(Error::Protocol(format!(
                    "connection closed mid-frame ({filled} of {} header bytes)",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && filled == 0 => return Ok(ReadOutcome::IdleTimeout),
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(Error::Protocol(format!("read failed: {e}"))),
        }
    }
    Ok(ReadOutcome::Filled)
}

/// `read_exact` that rides out interrupts and read timeouts — once a
/// frame header arrived, the body read must not be abandoned part-way.
fn read_fully(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(Error::Protocol(format!(
                    "connection closed reading {what} ({filled} of {} bytes)",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted || is_timeout(&e) => {}
            Err(e) => return Err(Error::Protocol(format!("read failed reading {what}: {e}"))),
        }
    }
    Ok(())
}

/// Type codes for [`DataType`] on the wire (pinned by proto tests).
fn type_code(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
    }
}

fn type_from_code(code: u8) -> Result<DataType> {
    Ok(match code {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        other => return Err(Error::Protocol(format!("unknown column type code {other}"))),
    })
}

/// Encodes a message into a frame payload (pass to [`write_frame`]).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    match msg {
        Message::Hello { magic, version } => {
            w.u8(tag::HELLO);
            w.u32(*magic);
            w.u32(*version);
        }
        Message::Query { sql } => {
            w.u8(tag::QUERY);
            w.str(sql);
        }
        Message::Quit => w.u8(tag::QUIT),
        Message::HelloOk {
            magic,
            version,
            epoch,
        } => {
            w.u8(tag::HELLO_OK);
            w.u32(*magic);
            w.u32(*version);
            w.u64(*epoch);
        }
        Message::Result { epoch, relation } => {
            w.u8(tag::RESULT);
            w.u64(*epoch);
            encode_relation(&mut w, relation);
        }
        Message::Error { code, message } => {
            w.u8(tag::ERROR);
            w.u32(u32::from(*code));
            w.str(message);
        }
    }
    w.into_bytes()
}

/// Column-major relation body with a per-message string dictionary:
///
/// ```text
/// ncols: u32 | ncols × (qualified_name: str, type_code: u8)
/// nrows: u64
/// dict_len: u32 | dict_len × str          -- distinct strings, first use
/// ncols × nrows × cell                    -- column-major
/// cell: tag u8 (0 NULL | 1 Int i64 | 2 Float f64 | 3 Text u32-dict-index
///               | 4 Bool u8)
/// ```
fn encode_relation(w: &mut PayloadWriter, rel: &Relation) {
    w.u32(rel.columns.len() as u32);
    for c in &rel.columns {
        w.str(&c.qualified_name());
        w.u8(type_code(c.data_type));
    }
    w.u64(rel.rows.len() as u64);
    // Dictionary: each distinct string once, in first-use order.
    let mut ids: HashMap<Sym, u32> = HashMap::new();
    let mut dict: Vec<Sym> = Vec::new();
    for row in &rel.rows {
        for v in row {
            if let Value::Text(s) = v {
                ids.entry(*s).or_insert_with(|| {
                    dict.push(*s);
                    (dict.len() - 1) as u32
                });
            }
        }
    }
    w.u32(dict.len() as u32);
    for s in &dict {
        w.str(s.as_str());
    }
    for col in 0..rel.columns.len() {
        for row in &rel.rows {
            match row[col] {
                Value::Null => w.u8(0),
                Value::Int(i) => {
                    w.u8(1);
                    w.i64(i);
                }
                Value::Float(f) => {
                    w.u8(2);
                    w.f64(f);
                }
                Value::Text(s) => {
                    w.u8(3);
                    w.u32(ids[&s]);
                }
                Value::Bool(b) => {
                    w.u8(4);
                    w.u8(u8::from(b));
                }
            }
        }
    }
}

/// Rejects a decoded element count that could not possibly fit the
/// reader's remaining payload (each element needs at least `min_bytes`
/// of encoding). Counts come off the wire attacker-controlled, so every
/// one must fail here **before** it sizes an allocation — a ~25-byte
/// frame claiming `u64::MAX` rows must cost nothing.
fn bounded_count(n: u64, min_bytes: usize, r: &PayloadReader<'_>, what: &str) -> Result<usize> {
    let fits = n
        .checked_mul(min_bytes as u64)
        .is_some_and(|need| need <= r.remaining() as u64);
    if !fits {
        return Err(Error::Protocol(format!(
            "implausible {what} {n} (only {} payload bytes remain)",
            r.remaining()
        )));
    }
    Ok(n as usize)
}

fn decode_relation(r: &mut PayloadReader<'_>) -> Result<Relation> {
    // Minimum encoded sizes backing the bounds below: a column header is
    // a u32 name length + a type byte (5), a dictionary entry a u32
    // length (4), a cell its tag byte (1). A row therefore needs at
    // least `ncols` cell bytes; zero-column relations (which the engine
    // never produces for SQL results) must still pay one byte per
    // claimed row so a count can never outrun the payload.
    let raw_ncols = r.u32("column count").map_err(as_protocol)?;
    let ncols = bounded_count(u64::from(raw_ncols), 5, r, "column count")?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.str("column name").map_err(as_protocol)?;
        let ty = type_from_code(r.u8("column type").map_err(as_protocol)?)?;
        columns.push(RelColumn::bare(name, ty));
    }
    let raw_nrows = r.u64("row count").map_err(as_protocol)?;
    let nrows = bounded_count(raw_nrows, ncols.max(1), r, "row count")?;
    let raw_dict = r.u32("dictionary length").map_err(as_protocol)?;
    let dict_len = bounded_count(u64::from(raw_dict), 4, r, "dictionary length")?;
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(Sym::intern(
            &r.str("dictionary string").map_err(as_protocol)?,
        ));
    }
    // Column-major cells back into row-major rows.
    let mut rows = vec![vec![Value::Null; ncols]; nrows];
    for col in 0..ncols {
        for row in rows.iter_mut() {
            row[col] = match r.u8("cell tag").map_err(as_protocol)? {
                0 => Value::Null,
                1 => Value::Int(r.i64("int cell").map_err(as_protocol)?),
                2 => Value::Float(r.f64("float cell").map_err(as_protocol)?),
                3 => {
                    let idx = r.u32("text cell index").map_err(as_protocol)? as usize;
                    let s = dict.get(idx).ok_or_else(|| {
                        Error::Protocol(format!(
                            "text cell references dictionary entry {idx} of {dict_len}"
                        ))
                    })?;
                    Value::Text(*s)
                }
                4 => Value::Bool(r.u8("bool cell").map_err(as_protocol)? != 0),
                t => return Err(Error::Protocol(format!("unknown cell tag {t}"))),
            };
        }
    }
    Ok(Relation::new(columns, rows))
}

/// Decodes a frame payload into a message.
pub fn decode(payload: &[u8]) -> Result<Message> {
    let mut r = PayloadReader::new(payload, "wire frame");
    let t = r.u8("message type").map_err(as_protocol)?;
    let msg = match t {
        tag::HELLO => Message::Hello {
            magic: r.u32("hello magic").map_err(as_protocol)?,
            version: r.u32("hello version").map_err(as_protocol)?,
        },
        tag::QUERY => Message::Query {
            sql: r.str("query text").map_err(as_protocol)?,
        },
        tag::QUIT => Message::Quit,
        tag::HELLO_OK => Message::HelloOk {
            magic: r.u32("hello-ok magic").map_err(as_protocol)?,
            version: r.u32("hello-ok version").map_err(as_protocol)?,
            epoch: r.u64("hello-ok epoch").map_err(as_protocol)?,
        },
        tag::RESULT => Message::Result {
            epoch: r.u64("result epoch").map_err(as_protocol)?,
            relation: decode_relation(&mut r)?,
        },
        tag::ERROR => {
            let code32 = r.u32("error code").map_err(as_protocol)?;
            let code = u16::try_from(code32)
                .map_err(|_| Error::Protocol(format!("error code {code32} exceeds u16")))?;
            Message::Error {
                code,
                message: r.str("error message").map_err(as_protocol)?,
            }
        }
        other => {
            return Err(Error::Protocol(format!(
                "unknown message type {other:#04x}"
            )))
        }
    };
    r.expect_end().map_err(as_protocol)?;
    Ok(msg)
}

/// Encodes an engine error as a wire error message. The message carries
/// the class-free payload ([`Error::message`]); the class itself travels
/// as the numeric code, so rehydration renders identically to the
/// original (no stacked class prefixes).
pub fn error_message(e: &Error) -> Message {
    Message::Error {
        code: e.code().as_u16(),
        message: e.message().to_string(),
    }
}

/// Rehydrates a wire error into the engine error class its code names
/// (unknown codes fall back to the protocol class so nothing is lost).
pub fn error_from_wire(code: u16, message: String) -> Error {
    match ErrorCode::from_u16(code) {
        Some(c) => Error::from_code(c, message),
        None => Error::Protocol(format!("server error with unknown code {code}: {message}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) -> Message {
        let payload = encode(&msg);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cur = &buf[..];
        let got = read_frame(&mut cur).unwrap().expect("one frame");
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF after");
        decode(&got).unwrap()
    }

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            Message::Hello {
                magic: WIRE_MAGIC,
                version: WIRE_VERSION,
            },
            Message::Query {
                sql: "SELECT 1 FROM t".into(),
            },
            Message::Quit,
            Message::HelloOk {
                magic: WIRE_MAGIC,
                version: WIRE_VERSION,
                epoch: 42,
            },
            Message::Error {
                code: 300,
                message: "SQL parse error: nope".into(),
            },
        ] {
            // Relation has no PartialEq; debug form is an exact canon
            // for the control variants under test here.
            assert_eq!(format!("{:?}", round_trip(msg.clone())), format!("{msg:?}"));
        }
    }

    #[test]
    fn relations_round_trip_with_nulls_and_dictionary() {
        let rel = Relation::new(
            vec![
                RelColumn::bare("id", DataType::Int),
                RelColumn::bare("name", DataType::Text),
                RelColumn::bare("score", DataType::Float),
                RelColumn::bare("ok", DataType::Bool),
            ],
            vec![
                vec![
                    Value::Int(1),
                    Value::from("alpha"),
                    Value::Float(1.5),
                    Value::Bool(true),
                ],
                vec![
                    Value::Null,
                    Value::from("alpha"),
                    Value::Null,
                    Value::Bool(false),
                ],
                vec![
                    Value::Int(-3),
                    Value::from("beta"),
                    Value::Float(-0.0),
                    Value::Null,
                ],
            ],
        );
        let got = round_trip(Message::Result {
            epoch: 7,
            relation: rel.clone(),
        });
        let Message::Result { epoch, relation } = got else {
            panic!("wrong message type back");
        };
        assert_eq!(epoch, 7);
        assert_eq!(relation.rows, rel.rows);
        assert_eq!(
            relation
                .columns
                .iter()
                .map(|c| (c.qualified_name(), c.data_type))
                .collect::<Vec<_>>(),
            rel.columns
                .iter()
                .map(|c| (c.qualified_name(), c.data_type))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_frames_are_typed_protocol_errors() {
        let payload = encode(&Message::Quit);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();

        // Flip a payload bit: checksum mismatch.
        let mut bad = buf.clone();
        bad[8] ^= 0x40;
        let e = read_frame(&mut &bad[..]).unwrap_err();
        assert_eq!(e.code().as_u16(), 500, "{e}");
        assert!(e.to_string().contains("checksum"), "{e}");

        // Truncate mid-frame: protocol error, not clean EOF.
        let e = read_frame(&mut &buf[..buf.len() - 2]).unwrap_err();
        assert_eq!(e.code().as_u16(), 500, "{e}");

        // Absurd length: rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let e = read_frame(&mut &huge[..]).unwrap_err();
        assert!(e.to_string().contains("limit"), "{e}");

        // Unknown message type.
        let e = decode(&[0x7f]).unwrap_err();
        assert!(e.to_string().contains("unknown message type"), "{e}");
    }

    #[test]
    fn hostile_result_counts_are_rejected_before_allocation() {
        // Each payload claims a count wildly beyond its own byte length;
        // decode must answer with a typed protocol error (it would
        // panic with "capacity overflow" or allocate gigabytes if the
        // counts were trusted).
        let result_header = |w: &mut PayloadWriter| {
            w.u8(tag::RESULT);
            w.u64(7); // epoch
        };

        // u64::MAX rows behind a single one-column header.
        let mut w = PayloadWriter::new();
        result_header(&mut w);
        w.u32(1); // ncols
        w.str("c");
        w.u8(0);
        w.u64(u64::MAX); // nrows
        let e = decode(&w.into_bytes()).unwrap_err();
        assert_eq!(e.code().as_u16(), 500, "{e}");
        assert!(e.to_string().contains("row count"), "{e}");

        // Huge rows with zero columns (rows still cost >= 1 byte each).
        let mut w = PayloadWriter::new();
        result_header(&mut w);
        w.u32(0); // ncols
        w.u64(1 << 40); // nrows
        let e = decode(&w.into_bytes()).unwrap_err();
        assert!(e.to_string().contains("row count"), "{e}");

        // A column count no payload this size could encode.
        let mut w = PayloadWriter::new();
        result_header(&mut w);
        w.u32(u32::MAX); // ncols
        let e = decode(&w.into_bytes()).unwrap_err();
        assert!(e.to_string().contains("column count"), "{e}");

        // A dictionary length past the remaining bytes.
        let mut w = PayloadWriter::new();
        result_header(&mut w);
        w.u32(1); // ncols
        w.str("c");
        w.u8(0);
        w.u64(0); // nrows
        w.u32(u32::MAX); // dict_len
        let e = decode(&w.into_bytes()).unwrap_err();
        assert!(e.to_string().contains("dictionary length"), "{e}");
    }

    #[test]
    fn type_codes_are_pinned() {
        // Wire layout freeze: these numbers are protocol, not implementation.
        assert_eq!(type_code(DataType::Int), 0);
        assert_eq!(type_code(DataType::Float), 1);
        assert_eq!(type_code(DataType::Text), 2);
        assert_eq!(type_code(DataType::Bool), 3);
        assert_eq!(WIRE_MAGIC, 0x5057_5445); // "ETWP" little-endian
        assert_eq!(WIRE_VERSION, 1);
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
        ] {
            assert_eq!(type_from_code(type_code(ty)).unwrap(), ty);
        }
    }
}
