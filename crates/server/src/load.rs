//! The load-test harness: N client threads × M queries each against a
//! running server, with every response checked byte-for-byte against the
//! sequentially computed expectation, and p50/p99/throughput reported.
//!
//! Used three ways: the `serve_load` binary (CI smoke gate and the
//! nightly high-concurrency leg), the `serve` bench family, and the
//! server integration tests.

use crate::client::Client;
use etable_relational::algebra::Relation;
use etable_relational::shared::SharedDatabase;
use etable_relational::{Error, Result};
use std::time::{Duration, Instant};

/// The mixed read workload over the synthetic academic corpus: scans,
/// LIKE, multi-way joins, grouping, aggregates, DISTINCT, pagination.
pub const ACADEMIC_QUERIES: [&str; 10] = [
    "SELECT acronym FROM Conferences ORDER BY id",
    "SELECT COUNT(*) FROM Papers",
    "SELECT year, COUNT(*) AS n FROM Papers GROUP BY year ORDER BY n DESC, year",
    "SELECT title FROM Papers WHERE title LIKE '%data%' ORDER BY title LIMIT 40",
    "SELECT a.name, COUNT(*) AS n FROM Authors a, Paper_Authors pa \
     WHERE a.id = pa.author_id GROUP BY a.name ORDER BY n DESC, a.name LIMIT 30",
    "SELECT p.title FROM Papers p JOIN Conferences c ON p.conference_id = c.id \
     WHERE c.acronym = 'SIGMOD' ORDER BY p.year DESC, p.title LIMIT 25",
    "SELECT DISTINCT country FROM Institutions ORDER BY country",
    "SELECT MIN(year), MAX(year), COUNT(*) FROM Papers",
    "SELECT i.name, COUNT(*) AS n FROM Institutions i, Authors a \
     WHERE a.institution_id = i.id GROUP BY i.name HAVING COUNT(*) > 3 \
     ORDER BY n DESC, i.name LIMIT 20",
    "SELECT id, title FROM Papers ORDER BY year, id LIMIT 15 OFFSET 100",
];

/// Canonical byte form of a result relation: the column shape line plus
/// every row, exactly as the stress suite renders them. Two relations
/// with equal canon are byte-identical for the protocol's purposes.
pub fn canon(r: &Relation) -> String {
    let cols: Vec<String> = r
        .columns
        .iter()
        .map(|c| format!("{}:{:?}", c.qualified_name(), c.data_type))
        .collect();
    format!("{cols:?}\n{:?}", r.rows)
}

/// Computes the sequential baseline for a workload: each query executed
/// once, in order, against the shared database directly (no wire).
pub fn baselines(db: &SharedDatabase, queries: &[&str]) -> Result<Vec<(String, String)>> {
    queries
        .iter()
        .map(|q| Ok((q.to_string(), canon(&db.execute(q)?))))
        .collect()
}

/// The harness verdict: latency distribution, throughput, and
/// correctness counters. `wrong == 0 && errors == 0` is the gate.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads run.
    pub clients: usize,
    /// Queries issued per client.
    pub per_client: usize,
    /// Responses that did not match the sequential baseline.
    pub wrong: usize,
    /// Transport or server errors.
    pub errors: usize,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Median per-query round-trip latency.
    pub p50: Duration,
    /// 99th-percentile per-query round-trip latency.
    pub p99: Duration,
    /// Aggregate queries per second across all clients.
    pub qps: f64,
}

impl LoadReport {
    /// True when every response matched the baseline and nothing failed.
    pub fn clean(&self) -> bool {
        self.wrong == 0 && self.errors == 0
    }

    /// One-line human rendering (what `serve_load` prints per run).
    pub fn render(&self) -> String {
        format!(
            "{} clients x {} queries: {} total in {:.2?} | p50 {:.1?} p99 {:.1?} | {:.0} qps | wrong {} errors {}",
            self.clients,
            self.per_client,
            self.clients * self.per_client,
            self.elapsed,
            self.p50,
            self.p99,
            self.qps,
            self.wrong,
            self.errors,
        )
    }
}

/// Runs `clients` threads × `per_client` queries each against `addr`.
/// Every client cycles through the workload starting at a different
/// offset, so at any instant different queries are in flight. Each
/// response is compared byte-for-byte against its baseline.
pub fn run_load(
    addr: &str,
    clients: usize,
    per_client: usize,
    workload: &[(String, String)],
) -> Result<LoadReport> {
    if workload.is_empty() || clients == 0 || per_client == 0 {
        return Err(Error::Protocol("empty load configuration".into()));
    }
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.to_string();
            let workload = workload.to_vec();
            std::thread::spawn(move || -> (Vec<Duration>, usize, usize) {
                let mut lat = Vec::with_capacity(per_client);
                let (mut wrong, mut errors) = (0usize, 0usize);
                let mut client = match Client::connect(addr.as_str()) {
                    Ok(c) => c,
                    Err(_) => return (lat, wrong, per_client),
                };
                for i in 0..per_client {
                    let (sql, expected) = &workload[(i + id) % workload.len()];
                    let t0 = Instant::now();
                    match client.query(sql) {
                        Ok(rel) => {
                            lat.push(t0.elapsed());
                            if canon(&rel) != *expected {
                                wrong += 1;
                            }
                        }
                        Err(_) => errors += 1,
                    }
                }
                let _ = client.quit();
                (lat, wrong, errors)
            })
        })
        .collect();

    let mut lat: Vec<Duration> = Vec::with_capacity(clients * per_client);
    let (mut wrong, mut errors) = (0usize, 0usize);
    for t in threads {
        let (l, w, e) = t
            .join()
            .map_err(|_| Error::Protocol("a load client thread panicked".into()))?;
        lat.extend(l);
        wrong += w;
        errors += e;
    }
    let elapsed = started.elapsed();
    lat.sort_unstable();
    let pct = |p: usize| -> Duration {
        if lat.is_empty() {
            Duration::ZERO
        } else {
            lat[(lat.len() - 1) * p / 100]
        }
    };
    Ok(LoadReport {
        clients,
        per_client,
        wrong,
        errors,
        elapsed,
        p50: pct(50),
        p99: pct(99),
        qps: lat.len() as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    })
}
