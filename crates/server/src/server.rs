//! The multi-threaded TCP server: one accept loop, one handler thread
//! and one [`Connection`] per client, all over a single
//! [`SharedDatabase`] + `Arc<Tgdb>` pair.
//!
//! Concurrency model: reads execute on per-statement epoch snapshots
//! (never blocking each other), writes serialize inside the shared
//! handle (see `etable_relational::shared`). Shutdown is cooperative and
//! **complete**: [`Server::shutdown`] flips a flag, wakes the accept
//! loop with a loopback connect, force-disconnects every live client
//! socket, and joins the accept thread and every handler thread — when
//! it returns, no server thread is left running (the CI smoke gate
//! asserts exactly this). Handler reads use a poll timeout so an idle
//! client's thread notices the flag promptly; the force-disconnect
//! covers clients stalled mid-frame or mid-write, where the flag is
//! deliberately not polled (frames are atomic).

use crate::proto::{
    decode, encode, error_message, read_frame_event, write_frame, FrameEvent, Message, WIRE_MAGIC,
    WIRE_VERSION,
};
use etable_core::connection::Connection;
use etable_relational::shared::SharedDatabase;
use etable_relational::{Error, Result};
use etable_tgm::Tgdb;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked handler read waits before re-checking the shutdown
/// flag. Bounds shutdown latency without busy-waiting.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How long the accept loop sleeps after `accept` itself fails (e.g.
/// EMFILE). Without this a persistent error would spin the thread at
/// 100% CPU.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(20);

/// Counters the load harness and smoke gate read after a run.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Query messages answered with a result.
    pub queries_ok: AtomicU64,
    /// Query messages answered with an error frame.
    pub queries_err: AtomicU64,
}

/// A running server: owns the accept thread and all handler threads.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<ClientThread>>>,
    stats: Arc<ServerStats>,
}

/// One live client: its handler thread plus a second handle on its
/// socket, kept so [`Server::shutdown`] can force-disconnect a client
/// that is stalled mid-frame (frame reads deliberately ride out
/// timeouts once a frame started, and writes have none) instead of
/// joining forever.
struct ClientThread {
    handle: JoinHandle<()>,
    stream: TcpStream,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting clients over the shared handles.
    pub fn start(addr: &str, db: SharedDatabase, tgdb: Arc<Tgdb>) -> Result<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::Protocol(format!("{addr}: cannot bind: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::Protocol(format!("{addr}: no local addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<ClientThread>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ServerStats::default());

        let accept = {
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                let mut accept_failing = false;
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => {
                            accept_failing = false;
                            s
                        }
                        Err(e) => {
                            // Log once per error streak, then back off:
                            // a persistent failure like EMFILE must not
                            // spin the loop or flood stderr.
                            if !accept_failing {
                                accept_failing = true;
                                eprintln!("etable-server: accept failed: {e} (backing off)");
                            }
                            std::thread::sleep(ACCEPT_BACKOFF);
                            continue;
                        }
                    };
                    // The second socket handle lets shutdown() unblock a
                    // handler stalled mid-read/mid-write; a client we
                    // could not register that way is refused outright.
                    let Ok(peer) = stream.try_clone() else {
                        continue;
                    };
                    stats.connections.fetch_add(1, Ordering::Relaxed);
                    let conn = Connection::connect(&db, &tgdb);
                    let stop = Arc::clone(&stop);
                    let stats = Arc::clone(&stats);
                    let handle =
                        std::thread::spawn(move || handle_client(stream, conn, &stop, &stats));
                    let mut hs = lock(&handlers);
                    // Reap finished handlers so a long-lived server does
                    // not accumulate join handles or sockets.
                    let mut live: Vec<ClientThread> =
                        hs.drain(..).filter(|c| !c.handle.is_finished()).collect();
                    live.push(ClientThread {
                        handle,
                        stream: peer,
                    });
                    *hs = live;
                }
            })
        };

        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            handlers,
            stats,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops accepting, wakes and joins every thread. When this returns
    /// no server thread remains; all clients — idle, stalled mid-frame,
    /// or mid-write — are disconnected.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway loopback connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            h.join()
                .map_err(|_| Error::Protocol("accept thread panicked".into()))?;
        }
        // The accept thread is gone, so the registry is now complete.
        let clients: Vec<ClientThread> = {
            let mut hs = lock(&self.handlers);
            hs.drain(..).collect()
        };
        // Force-disconnect every socket *before* joining: the stop flag
        // is only polled at frame boundaries, so a client that sent a
        // partial frame (or stopped reading while the server writes)
        // would otherwise pin its handler — and this join — forever.
        for c in &clients {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        for c in clients {
            c.handle
                .join()
                .map_err(|_| Error::Protocol("a connection handler panicked".into()))?;
        }
        Ok(())
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One client's lifetime: handshake, then a query/answer loop until
/// `Quit`, disconnect, protocol violation, or server shutdown.
fn handle_client(stream: TcpStream, conn: Connection, stop: &AtomicBool, stats: &ServerStats) {
    // Best-effort service: any I/O failure just ends this connection.
    let _ = serve_one(&stream, &conn, stop, stats);
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_one(
    stream: &TcpStream,
    conn: &Connection,
    stop: &AtomicBool,
    stats: &ServerStats,
) -> Result<()> {
    stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .map_err(|e| Error::Protocol(format!("set_read_timeout: {e}")))?;
    // Answers are small multi-write frames followed by a client read;
    // without this, Nagle + delayed ACK adds ~40ms to every round-trip.
    stream
        .set_nodelay(true)
        .map_err(|e| Error::Protocol(format!("set_nodelay: {e}")))?;
    let mut reader = std::io::BufReader::new(stream);
    let mut writer = stream;

    // Handshake: the first frame must be a well-formed, version-matched
    // Hello; anything else gets one error frame and a close.
    match next_frame(&mut reader, stop) {
        Err(e) => {
            // Unreadable framing (bad checksum, oversize length): report
            // the typed protocol error once, then close.
            write_frame(&mut writer, &encode(&error_message(&e)))?;
            return Ok(());
        }
        Ok(None) => return Ok(()),
        Ok(Some(payload)) => match client_message(&payload) {
            Ok(Message::Hello {
                magic: WIRE_MAGIC,
                version: WIRE_VERSION,
            }) => {
                let hello_ok = Message::HelloOk {
                    magic: WIRE_MAGIC,
                    version: WIRE_VERSION,
                    epoch: conn.shared().epoch(),
                };
                write_frame(&mut writer, &encode(&hello_ok))?;
            }
            Ok(Message::Hello { magic, version }) => {
                let e = Error::Protocol(format!(
                    "handshake mismatch: magic {magic:#010x} version {version} \
                     (want {WIRE_MAGIC:#010x} version {WIRE_VERSION})"
                ));
                write_frame(&mut writer, &encode(&error_message(&e)))?;
                return Ok(());
            }
            Ok(other) => {
                let e = Error::Protocol(format!("expected Hello, got {other:?}"));
                write_frame(&mut writer, &encode(&error_message(&e)))?;
                return Ok(());
            }
            Err(e) => {
                write_frame(&mut writer, &encode(&error_message(&e)))?;
                return Ok(());
            }
        },
    }

    loop {
        let payload = match next_frame(&mut reader, stop) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(e) => {
                // Framing is no longer trustworthy: one typed error
                // frame, then close.
                write_frame(&mut writer, &encode(&error_message(&e)))?;
                break;
            }
        };
        match client_message(&payload) {
            Ok(Message::Query { sql }) => match conn.sql_with_epoch(&sql) {
                // The epoch comes from the statement itself (the
                // snapshot a read ran on, the epoch a write published)
                // — re-reading the live epoch here would race
                // concurrent writers and mislabel the result.
                Ok((epoch, relation)) => {
                    stats.queries_ok.fetch_add(1, Ordering::Relaxed);
                    let msg = Message::Result { epoch, relation };
                    write_frame(&mut writer, &encode(&msg))?;
                }
                Err(e) => {
                    stats.queries_err.fetch_add(1, Ordering::Relaxed);
                    write_frame(&mut writer, &encode(&error_message(&e)))?;
                }
            },
            Ok(Message::Quit) => break,
            Ok(other) => {
                let e = Error::Protocol(format!("unexpected message {other:?}"));
                write_frame(&mut writer, &encode(&error_message(&e)))?;
                break;
            }
            Err(e) => {
                // Corrupt payload: report once, then close — framing is
                // no longer trustworthy.
                write_frame(&mut writer, &encode(&error_message(&e)))?;
                break;
            }
        }
    }
    Ok(())
}

/// Decodes a frame from a client, refusing server-to-client message
/// types (high tag bit) on the tag byte alone — a hostile `Result` body
/// full of forged counts is never even parsed.
fn client_message(payload: &[u8]) -> Result<Message> {
    if let Some(t) = payload.first().filter(|t| *t & 0x80 != 0) {
        return Err(Error::Protocol(format!(
            "client sent server-to-client message type {t:#04x}"
        )));
    }
    decode(payload)
}

/// Frame reads under the poll timeout: idle-timeout ticks loop back to
/// check the shutdown flag; a set flag reads as end-of-stream.
fn next_frame(r: &mut impl std::io::Read, stop: &AtomicBool) -> Result<Option<Vec<u8>>> {
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        match read_frame_event(r)? {
            FrameEvent::Frame(p) => return Ok(Some(p)),
            FrameEvent::Eof => return Ok(None),
            FrameEvent::IdleTimeout => continue,
        }
    }
}
