//! The blocking wire client: connect, handshake, then one
//! request/response pair per [`Client::query`] call.
//!
//! Server-side engine errors come back as their original
//! [`etable_relational::Error`] class, rehydrated from the stable
//! numeric code on the wire — a client matching on `Error::Parse` works
//! identically against an embedded database or a remote server.

use crate::proto::{
    decode, encode, error_from_wire, read_frame, write_frame, Message, WIRE_MAGIC, WIRE_VERSION,
};
use etable_relational::algebra::Relation;
use etable_relational::{Error, Result};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected, handshaken wire client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The epoch reported by the most recent server message.
    epoch: u64,
}

impl Client {
    /// Connects and performs the `Hello`/`HelloOk` handshake.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Client> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| Error::Protocol(format!("{addr:?}: connect failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::Protocol(format!("set_nodelay: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| Error::Protocol(format!("stream clone failed: {e}")))?,
        );
        let mut client = Client {
            reader,
            writer: stream,
            epoch: 0,
        };
        let hello = Message::Hello {
            magic: WIRE_MAGIC,
            version: WIRE_VERSION,
        };
        write_frame(&mut client.writer, &encode(&hello))?;
        match client.next_message()? {
            Message::HelloOk { epoch, .. } => {
                client.epoch = epoch;
                Ok(client)
            }
            Message::Error { code, message } => Err(error_from_wire(code, message)),
            other => Err(Error::Protocol(format!("expected HelloOk, got {other:?}"))),
        }
    }

    /// Executes one SQL statement on the server. Engine failures come
    /// back as their original error class (see the module docs);
    /// transport failures as [`Error::Protocol`].
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        let msg = Message::Query { sql: sql.into() };
        write_frame(&mut self.writer, &encode(&msg))?;
        match self.next_message()? {
            Message::Result { epoch, relation } => {
                self.epoch = epoch;
                Ok(relation)
            }
            Message::Error { code, message } => Err(error_from_wire(code, message)),
            other => Err(Error::Protocol(format!("expected Result, got {other:?}"))),
        }
    }

    /// The database epoch as of the last server message — how a client
    /// observes its own writes becoming visible.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Orderly goodbye: sends `Quit` and waits for the server's close.
    pub fn quit(mut self) -> Result<()> {
        write_frame(&mut self.writer, &encode(&Message::Quit))?;
        // The server answers Quit by closing; drain to the EOF so the
        // socket tears down cleanly on both sides.
        while read_frame(&mut self.reader)?.is_some() {}
        Ok(())
    }

    fn next_message(&mut self) -> Result<Message> {
        match read_frame(&mut self.reader)? {
            Some(payload) => decode(&payload),
            None => Err(Error::Protocol(
                "server closed the connection mid-exchange".into(),
            )),
        }
    }
}
