//! End-to-end tests for the serving layer: results over the wire must be
//! byte-identical to direct execution, engine errors must keep their
//! class across the wire, malformed clients must get one typed error
//! frame and a close, and shutdown must leave no thread running.

use etable_core::testutil::{academic_db, academic_tgdb};
use etable_relational::shared::SharedDatabase;
use etable_relational::Error;
use etable_server::proto::{encode, read_frame, write_frame, Message, WIRE_MAGIC, WIRE_VERSION};
use etable_server::{baselines, canon, run_load, Client, Server};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// The mini academic corpus behind a freshly started server.
fn start() -> (Server, SharedDatabase) {
    let db = SharedDatabase::new(academic_db());
    let server = Server::start("127.0.0.1:0", db.clone(), Arc::new(academic_tgdb()))
        .expect("ephemeral bind");
    (server, db)
}

const QUERIES: [&str; 6] = [
    "SELECT acronym FROM Conferences ORDER BY id",
    "SELECT COUNT(*) FROM Papers",
    "SELECT p.title, a.name FROM Papers p, Paper_Authors pa, Authors a \
     WHERE p.id = pa.paper_id AND pa.author_id = a.id ORDER BY p.title, a.name",
    "SELECT year, COUNT(*) AS n FROM Papers GROUP BY year ORDER BY year",
    "SELECT DISTINCT country FROM Institutions ORDER BY country",
    "EXPLAIN SELECT title FROM Papers WHERE year > 2010 ORDER BY title",
];

#[test]
fn wire_results_are_byte_identical_to_direct_execution() {
    let (server, db) = start();
    let mut client = Client::connect(server.addr().to_string().as_str()).unwrap();
    for q in QUERIES {
        let direct = canon(&db.execute(q).unwrap());
        let wired = canon(&client.query(q).unwrap());
        assert_eq!(wired, direct, "diverged over the wire on: {q}");
    }
    client.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn writes_publish_epochs_visible_to_other_clients() {
    let (server, _db) = start();
    let addr = server.addr().to_string();
    let mut a = Client::connect(addr.as_str()).unwrap();
    let mut b = Client::connect(addr.as_str()).unwrap();

    let before = a.epoch();
    a.query("CREATE TABLE scratch (id INT PRIMARY KEY)")
        .unwrap();
    a.query("INSERT INTO scratch VALUES (1), (2), (3)").unwrap();
    assert!(a.epoch() >= before + 2, "each write publishes an epoch");

    let r = b.query("SELECT COUNT(*) FROM scratch").unwrap();
    assert_eq!(format!("{:?}", r.rows), "[[Int(3)]]");
    assert_eq!(b.epoch(), a.epoch(), "reader observed the writer's epoch");

    a.quit().unwrap();
    b.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn engine_errors_keep_their_class_over_the_wire() {
    let (server, db) = start();
    let mut client = Client::connect(server.addr().to_string().as_str()).unwrap();
    for bad in [
        "SELEC nonsense",                // parse
        "SELECT id FROM no_such_table",  // unknown table
        "SELECT nope FROM Papers",       // unknown column
        "INSERT INTO Papers VALUES (1)", // schema arity
    ] {
        let direct = db.execute(bad).unwrap_err();
        let wired = client.query(bad).unwrap_err();
        assert_eq!(
            wired.code(),
            direct.code(),
            "class drifted over the wire for: {bad}"
        );
        assert_eq!(wired.to_string(), direct.to_string());
    }
    // The connection survives engine errors: it still answers queries.
    assert!(client.query("SELECT COUNT(*) FROM Papers").is_ok());
    client.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn handshake_rejects_version_mismatch_with_one_error_frame() {
    let (server, _db) = start();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let bad_hello = Message::Hello {
        magic: WIRE_MAGIC,
        version: WIRE_VERSION + 1,
    };
    write_frame(&mut writer, &encode(&bad_hello)).unwrap();
    let payload = read_frame(&mut reader).unwrap().expect("one error frame");
    match etable_server::proto::decode(&payload).unwrap() {
        Message::Error { code, message } => {
            assert_eq!(code, Error::Protocol(String::new()).code().as_u16());
            assert!(message.contains("version"), "unhelpful message: {message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert!(read_frame(&mut reader).unwrap().is_none(), "then EOF");
    server.shutdown().unwrap();
}

#[test]
fn corrupt_frames_get_a_typed_error_then_close() {
    let (server, _db) = start();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Valid handshake first.
    let hello = Message::Hello {
        magic: WIRE_MAGIC,
        version: WIRE_VERSION,
    };
    write_frame(&mut writer, &encode(&hello)).unwrap();
    let ok = read_frame(&mut reader).unwrap().expect("HelloOk");
    assert!(matches!(
        etable_server::proto::decode(&ok).unwrap(),
        Message::HelloOk { .. }
    ));

    // Then a query frame with one payload bit flipped after checksumming.
    let mut raw = Vec::new();
    write_frame(
        &mut raw,
        &encode(&Message::Query {
            sql: "SELECT 1 FROM Papers".into(),
        }),
    )
    .unwrap();
    raw[10] ^= 0x40; // inside the payload, past the 8-byte length prefix
    writer.write_all(&raw).unwrap();
    writer.flush().unwrap();

    let payload = read_frame(&mut reader).unwrap().expect("one error frame");
    match etable_server::proto::decode(&payload).unwrap() {
        Message::Error { code, .. } => {
            assert_eq!(code, Error::Protocol(String::new()).code().as_u16());
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert!(read_frame(&mut reader).unwrap().is_none(), "then EOF");
    server.shutdown().unwrap();
}

#[test]
fn shutdown_joins_every_thread_and_disconnects_idle_clients() {
    let (server, _db) = start();
    let addr = server.addr().to_string();
    // Two clients handshake and then sit idle (no Quit).
    let mut a = Client::connect(addr.as_str()).unwrap();
    let mut b = Client::connect(addr.as_str()).unwrap();
    assert!(a.query("SELECT COUNT(*) FROM Papers").is_ok());

    assert_eq!(
        server
            .stats()
            .connections
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    // Returns only after the accept thread and both handler threads have
    // been joined — a leak or panic turns into an Err here.
    server.shutdown().unwrap();

    assert!(a.query("SELECT 1 FROM Papers").is_err(), "server is gone");
    assert!(b.query("SELECT 1 FROM Papers").is_err(), "server is gone");
}

#[test]
fn shutdown_force_disconnects_a_mid_frame_stalled_client() {
    let (server, _db) = start();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    // A frame header promising 100 payload bytes, then only 3 and a
    // stall with the socket held open. The handler deliberately rides
    // out read timeouts mid-frame (frames are atomic), so without the
    // force-disconnect in shutdown() this join would hang forever.
    writer.write_all(&100u64.to_le_bytes()).unwrap();
    writer.write_all(&[1, 2, 3]).unwrap();
    writer.flush().unwrap();
    // Give the handler time to enter the mid-frame body read.
    std::thread::sleep(std::time::Duration::from_millis(120));
    server.shutdown().unwrap();
    drop(stream);
}

#[test]
fn server_rejects_server_to_client_tags_with_one_error_frame() {
    let (server, _db) = start();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Valid handshake first.
    let hello = Message::Hello {
        magic: WIRE_MAGIC,
        version: WIRE_VERSION,
    };
    write_frame(&mut writer, &encode(&hello)).unwrap();
    let ok = read_frame(&mut reader).unwrap().expect("HelloOk");
    assert!(matches!(
        etable_server::proto::decode(&ok).unwrap(),
        Message::HelloOk { .. }
    ));

    // A client has no business sending a Result; the server must refuse
    // it on the tag byte (its body is never parsed) and close.
    let forged = Message::Result {
        epoch: 0,
        relation: etable_relational::algebra::Relation::new(Vec::new(), Vec::new()),
    };
    write_frame(&mut writer, &encode(&forged)).unwrap();
    let payload = read_frame(&mut reader).unwrap().expect("one error frame");
    match etable_server::proto::decode(&payload).unwrap() {
        Message::Error { code, message } => {
            assert_eq!(code, Error::Protocol(String::new()).code().as_u16());
            assert!(
                message.contains("server-to-client"),
                "unhelpful message: {message}"
            );
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert!(read_frame(&mut reader).unwrap().is_none(), "then EOF");
    server.shutdown().unwrap();
}

#[test]
fn result_epochs_name_the_snapshot_the_statement_observed() {
    let (server, db) = start();
    let mut client = Client::connect(server.addr().to_string().as_str()).unwrap();
    // Reads at epoch 0 report epoch 0.
    client.query("SELECT COUNT(*) FROM Papers").unwrap();
    assert_eq!(client.epoch(), 0);
    // A write reports the epoch it published...
    client
        .query("CREATE TABLE scratch (id INT PRIMARY KEY)")
        .unwrap();
    assert_eq!(client.epoch(), 1);
    // ...and a server-side write moves what later reads observe.
    db.execute("INSERT INTO scratch VALUES (1)").unwrap();
    client.query("SELECT COUNT(*) FROM scratch").unwrap();
    assert_eq!(client.epoch(), 2);
    client.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn load_harness_agrees_with_sequential_baseline() {
    let (server, db) = start();
    let workload = baselines(&db, &QUERIES).unwrap();
    let report = run_load(&server.addr().to_string(), 4, 60, &workload).unwrap();
    assert!(
        report.clean(),
        "wrong {} errors {}",
        report.wrong,
        report.errors
    );
    assert_eq!(report.clients, 4);
    assert!(report.qps > 0.0);
    server.shutdown().unwrap();
    assert_eq!(
        server_queries_floor(&report),
        240,
        "every query got an answer"
    );
}

fn server_queries_floor(report: &etable_server::LoadReport) -> usize {
    report.clients * report.per_client - report.wrong - report.errors
}
