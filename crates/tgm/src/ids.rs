//! Newtype identifiers for graph objects.
//!
//! `u32` representations keep the instance graph compact (paper-scale data
//! sets have tens of thousands of nodes; u32 leaves ample headroom).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The index this id encodes.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from an index.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id space exhausted"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a node type in the schema graph.
    NodeTypeId,
    "nt"
);
id_type!(
    /// Identifies an edge type in the schema graph.
    EdgeTypeId,
    "et"
);
id_type!(
    /// Identifies a node in the instance graph.
    NodeId,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeTypeId(1) < NodeTypeId(2));
    }
}
