//! The TGDB schema graph (paper Definition 1).
//!
//! `GS = (T, P)`: node types `τi = (αi, Ai, βi)` — name, single-valued
//! attributes, and a label attribute — and edge types `ρ ∈ T × T` with
//! names. All edge types carry an explicit reverse so relationships can be
//! browsed from either side (the paper's Figure 1 shows both `Papers
//! (referencing)` and `Papers (referenced)` columns for the self-relationship
//! on Papers).

use crate::ids::{EdgeTypeId, NodeTypeId};
use etable_relational::value::DataType;
use std::fmt;

/// How a node type was derived from the relational schema (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTypeKind {
    /// From an entity table (relation with a single-attribute primary key).
    Entity,
    /// From a multi-valued attribute relation (two attributes, one an FK).
    MultiValued,
    /// From a single-valued categorical attribute of low cardinality.
    Categorical,
}

impl fmt::Display for NodeTypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTypeKind::Entity => write!(f, "entity table"),
            NodeTypeKind::MultiValued => write!(f, "multi-valued attribute"),
            NodeTypeKind::Categorical => write!(f, "single-valued categorical attribute"),
        }
    }
}

/// How an edge type was derived from the relational schema (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeTypeKind {
    /// Foreign key between two entity relations.
    OneToMany,
    /// Relation with a composite primary key of two foreign keys.
    ManyToMany,
    /// From an entity table to a multi-valued attribute node type.
    MultiValued,
    /// From an entity table to a categorical attribute node type.
    Categorical,
}

impl fmt::Display for EdgeTypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeTypeKind::OneToMany => write!(f, "one-to-many relationship"),
            EdgeTypeKind::ManyToMany => write!(f, "many-to-many relationship"),
            EdgeTypeKind::MultiValued => write!(f, "multi-valued attribute"),
            EdgeTypeKind::Categorical => write!(f, "single-valued categorical attribute"),
        }
    }
}

/// Structured provenance of an edge type: which relational construct it was
/// derived from. Needed to translate ETable queries back into SQL over the
/// original relational schema (paper §8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeProvenance {
    /// A foreign key `table.column` referencing the target entity's PK.
    ForeignKey {
        /// Owning (referencing) table.
        table: String,
        /// Referencing column.
        column: String,
    },
    /// A relationship relation `table(left_col, right_col)`.
    Relation {
        /// Junction table name.
        table: String,
        /// FK column referencing the forward-source entity.
        left_col: String,
        /// FK column referencing the forward-target entity.
        right_col: String,
    },
    /// A multivalued-attribute relation `table(fk_col, value_col)`.
    MultiValued {
        /// MVA table name.
        table: String,
        /// FK column referencing the owning entity.
        fk_col: String,
        /// Value column.
        value_col: String,
    },
    /// A categorical attribute `table.column`.
    Categorical {
        /// Owning entity table.
        table: String,
        /// The categorical column.
        column: String,
    },
}

impl fmt::Display for EdgeProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeProvenance::ForeignKey { table, column } => write!(f, "FK {table}.{column}"),
            EdgeProvenance::Relation { table, .. } => write!(f, "relation {table}"),
            EdgeProvenance::MultiValued { table, .. } => write!(f, "relation {table}"),
            EdgeProvenance::Categorical { table, column } => {
                write!(f, "column {table}.{column}")
            }
        }
    }
}

/// An attribute of a node type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub data_type: DataType,
}

/// A node type `τ = (α, A, β)`.
#[derive(Debug, Clone)]
pub struct NodeType {
    /// Name `α`, e.g. `Papers` or `Paper_Keywords: keyword`.
    pub name: String,
    /// Single-valued attributes `A`.
    pub attrs: Vec<AttrDef>,
    /// Index into `attrs` of the label attribute `β`.
    pub label_attr: usize,
    /// Provenance category (paper Table 1).
    pub kind: NodeTypeKind,
    /// The relational table this type came from.
    pub source_table: String,
}

impl NodeType {
    /// Position of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

/// An edge type `ρ` with explicit direction and a paired reverse.
#[derive(Debug, Clone)]
pub struct EdgeType {
    /// Display name, unique among the edge types leaving `source`.
    pub name: String,
    /// Source node type.
    pub source: NodeTypeId,
    /// Target node type.
    pub target: NodeTypeId,
    /// Provenance category (paper Table 1).
    pub kind: EdgeTypeKind,
    /// The paired reverse edge type.
    pub reverse: EdgeTypeId,
    /// The relational construct this type came from.
    pub provenance: EdgeProvenance,
    /// Whether this is the forward direction of its provenance (e.g. for a
    /// `ForeignKey`, forward goes referencing → referenced).
    pub forward: bool,
}

impl EdgeType {
    /// Human-readable provenance text.
    pub fn source_desc(&self) -> String {
        self.provenance.to_string()
    }
}

/// The schema graph `GS = (T, P)`.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    node_types: Vec<NodeType>,
    edge_types: Vec<EdgeType>,
}

impl SchemaGraph {
    /// Creates an empty schema graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node type and returns its id.
    pub fn add_node_type(&mut self, nt: NodeType) -> NodeTypeId {
        assert!(
            self.node_type_by_name(&nt.name).is_none(),
            "duplicate node type name `{}`",
            nt.name
        );
        assert!(
            nt.label_attr < nt.attrs.len(),
            "label attribute out of range"
        );
        let id = NodeTypeId::from_index(self.node_types.len());
        self.node_types.push(nt);
        id
    }

    /// Adds a forward/reverse pair of edge types and returns the forward id.
    ///
    /// The reverse edge is created even when `source == target` (a
    /// self-relationship such as paper citations): the two directions are
    /// semantically distinct ("referenced" vs "referencing") and the paper's
    /// interface exposes both as separate columns.
    pub fn add_edge_type_pair(
        &mut self,
        forward_name: impl Into<String>,
        reverse_name: impl Into<String>,
        source: NodeTypeId,
        target: NodeTypeId,
        kind: EdgeTypeKind,
        provenance: EdgeProvenance,
    ) -> EdgeTypeId {
        let fid = EdgeTypeId::from_index(self.edge_types.len());
        let rid = EdgeTypeId::from_index(self.edge_types.len() + 1);
        self.edge_types.push(EdgeType {
            name: forward_name.into(),
            source,
            target,
            kind,
            reverse: rid,
            provenance: provenance.clone(),
            forward: true,
        });
        self.edge_types.push(EdgeType {
            name: reverse_name.into(),
            source: target,
            target: source,
            kind,
            reverse: fid,
            provenance,
            forward: false,
        });
        fid
    }

    /// Node type by id.
    pub fn node_type(&self, id: NodeTypeId) -> &NodeType {
        &self.node_types[id.index()]
    }

    /// Edge type by id.
    pub fn edge_type(&self, id: EdgeTypeId) -> &EdgeType {
        &self.edge_types[id.index()]
    }

    /// All node types with ids.
    pub fn node_types(&self) -> impl Iterator<Item = (NodeTypeId, &NodeType)> {
        self.node_types
            .iter()
            .enumerate()
            .map(|(i, t)| (NodeTypeId::from_index(i), t))
    }

    /// All edge types with ids.
    pub fn edge_types(&self) -> impl Iterator<Item = (EdgeTypeId, &EdgeType)> {
        self.edge_types
            .iter()
            .enumerate()
            .map(|(i, t)| (EdgeTypeId::from_index(i), t))
    }

    /// Number of node types.
    pub fn node_type_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edge types (counting each direction separately).
    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    /// Finds a node type by name.
    pub fn node_type_by_name(&self, name: &str) -> Option<(NodeTypeId, &NodeType)> {
        self.node_types().find(|(_, t)| t.name == name)
    }

    /// Edge types whose source is `nt` (the neighbor columns `Ah` of an
    /// ETable whose primary node type is `nt`).
    pub fn outgoing(&self, nt: NodeTypeId) -> Vec<(EdgeTypeId, &EdgeType)> {
        self.edge_types().filter(|(_, e)| e.source == nt).collect()
    }

    /// Finds an outgoing edge type of `nt` by name.
    pub fn outgoing_by_name(&self, nt: NodeTypeId, name: &str) -> Option<(EdgeTypeId, &EdgeType)> {
        self.edge_types()
            .find(|(_, e)| e.source == nt && e.name == name)
    }

    /// The entity node types, in id order (the paper's "default table list",
    /// Figure 9 component 1).
    pub fn entity_types(&self) -> Vec<(NodeTypeId, &NodeType)> {
        self.node_types()
            .filter(|(_, t)| t.kind == NodeTypeKind::Entity)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(name: &str, ty: DataType) -> AttrDef {
        AttrDef {
            name: name.into(),
            data_type: ty,
        }
    }

    fn simple_graph() -> (SchemaGraph, NodeTypeId, NodeTypeId, EdgeTypeId) {
        let mut g = SchemaGraph::new();
        let papers = g.add_node_type(NodeType {
            name: "Papers".into(),
            attrs: vec![attr("id", DataType::Int), attr("title", DataType::Text)],
            label_attr: 1,
            kind: NodeTypeKind::Entity,
            source_table: "Papers".into(),
        });
        let confs = g.add_node_type(NodeType {
            name: "Conferences".into(),
            attrs: vec![attr("id", DataType::Int), attr("acronym", DataType::Text)],
            label_attr: 1,
            kind: NodeTypeKind::Entity,
            source_table: "Conferences".into(),
        });
        let e = g.add_edge_type_pair(
            "Conferences",
            "Papers",
            papers,
            confs,
            EdgeTypeKind::OneToMany,
            EdgeProvenance::ForeignKey {
                table: "Papers".into(),
                column: "conference_id".into(),
            },
        );
        (g, papers, confs, e)
    }

    #[test]
    fn reverse_edges_paired() {
        let (g, papers, confs, e) = simple_graph();
        let fwd = g.edge_type(e);
        assert_eq!(fwd.source, papers);
        assert_eq!(fwd.target, confs);
        let rev = g.edge_type(fwd.reverse);
        assert_eq!(rev.source, confs);
        assert_eq!(rev.target, papers);
        assert_eq!(rev.reverse, e);
    }

    #[test]
    fn outgoing_filters_by_source() {
        let (g, papers, confs, _) = simple_graph();
        assert_eq!(g.outgoing(papers).len(), 1);
        assert_eq!(g.outgoing(confs).len(), 1);
        assert_eq!(g.outgoing(papers)[0].1.name, "Conferences");
    }

    #[test]
    #[should_panic(expected = "duplicate node type")]
    fn duplicate_names_rejected() {
        let (mut g, _, _, _) = simple_graph();
        g.add_node_type(NodeType {
            name: "Papers".into(),
            attrs: vec![attr("x", DataType::Int)],
            label_attr: 0,
            kind: NodeTypeKind::Entity,
            source_table: "Papers".into(),
        });
    }

    #[test]
    fn lookup_by_name() {
        let (g, papers, _, _) = simple_graph();
        let (id, t) = g.node_type_by_name("Papers").unwrap();
        assert_eq!(id, papers);
        assert_eq!(t.attrs.len(), 2);
        assert!(g.node_type_by_name("Nope").is_none());
    }

    #[test]
    fn entity_list() {
        let (g, _, _, _) = simple_graph();
        assert_eq!(g.entity_types().len(), 2);
    }
}
