//! Reverse engineering a relational database into TGDB schema and instance
//! graphs (paper Appendix A, summarized in Table 1).
//!
//! Assumptions, as in the paper:
//! 1. relations are in BCNF/3NF;
//! 2. relationships are binary;
//! 3. attributes of relationship relations beyond the two foreign keys are
//!    ignored (e.g. `Paper_Authors.order`);
//! 4. a multivalued-attribute relation has exactly two columns.

use crate::ids::{EdgeTypeId, NodeId, NodeTypeId};
use crate::instance_graph::InstanceGraph;
use crate::schema_graph::{
    AttrDef, EdgeProvenance, EdgeTypeKind, NodeType, NodeTypeKind, SchemaGraph,
};
use crate::{Error, Result};
use etable_relational::database::Database;
use etable_relational::schema::TableSchema;
use etable_relational::value::{DataType, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// How a relation was classified during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationCategory {
    /// Entity relation: single-attribute primary key that is not a foreign
    /// key. Becomes a node type.
    Entity,
    /// Relationship relation: composite primary key of two foreign keys to
    /// entity relations. Becomes an edge type (plus reverse).
    Relationship {
        /// First FK column (edge source side).
        left_fk: String,
        /// Second FK column (edge target side).
        right_fk: String,
    },
    /// Multivalued attribute relation: two columns forming the primary key,
    /// the first a foreign key. Becomes a value node type plus an edge type.
    MultiValuedAttr {
        /// The FK column referencing the entity relation.
        fk_col: String,
        /// The value column.
        value_col: String,
    },
}

/// Options steering the translation.
#[derive(Debug, Clone)]
pub struct TranslateOptions {
    /// Attributes of entity relations with at most this many distinct values
    /// are promoted to categorical node types (paper: "often, attributes
    /// with low cardinality (e.g., less than 30) can be candidates").
    /// `0` disables automatic detection.
    pub categorical_threshold: usize,
    /// Explicit categorical attributes `(table, column)`, applied in
    /// addition to the automatic detection (the paper lets users select).
    pub categorical_columns: Vec<(String, String)>,
    /// Explicit label attribute overrides `table -> column` (the paper lets
    /// users pick labels manually when the heuristic guesses wrong).
    pub label_overrides: BTreeMap<String, String>,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            categorical_threshold: 30,
            categorical_columns: Vec::new(),
            label_overrides: BTreeMap::new(),
        }
    }
}

/// One line of the translation report (regenerates paper Table 1).
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// "Node type" or "Edge type".
    pub form: &'static str,
    /// Name of the created graph object.
    pub name: String,
    /// Source category text, as in Table 1's "Source" column.
    pub source: String,
    /// Determining factor text, as in Table 1's rightmost column.
    pub determining_factor: String,
}

/// The translated typed graph database.
#[derive(Debug, Clone)]
pub struct Tgdb {
    /// The schema graph `GS`.
    pub schema: SchemaGraph,
    /// The instance graph `GI`.
    pub instances: InstanceGraph,
    /// Classification of every input relation.
    pub categories: BTreeMap<String, RelationCategory>,
    /// Table-1-style report entries, in creation order.
    pub report: Vec<ReportEntry>,
    /// Per node type: primary-key value -> node id (entity types only).
    pk_index: HashMap<NodeTypeId, HashMap<Value, NodeId>>,
}

impl Tgdb {
    /// Finds an entity node by its relational primary-key value.
    pub fn node_by_pk(&self, nt: NodeTypeId, pk: &Value) -> Option<NodeId> {
        self.pk_index.get(&nt).and_then(|m| m.get(pk)).copied()
    }

    /// Finds a node of any type by its label text (first match in insertion
    /// order). Mirrors clicking an entity reference in the UI.
    pub fn node_by_label(&self, nt: NodeTypeId, label: &str) -> Option<NodeId> {
        self.instances
            .nodes_of_type(nt)
            .iter()
            .copied()
            .find(|&id| self.instances.label(&self.schema, id) == label)
    }
}

/// Classifies every relation of `db` (the first phase of Appendix A).
pub fn classify(db: &Database) -> Result<BTreeMap<String, RelationCategory>> {
    let mut out = BTreeMap::new();
    for table in db.tables() {
        let schema = table.schema();
        out.insert(schema.name.clone(), classify_one(schema)?);
    }
    Ok(out)
}

fn classify_one(schema: &TableSchema) -> Result<RelationCategory> {
    let pk = &schema.primary_key;
    // Entity relation: single-attribute PK that is not a foreign key.
    if pk.len() == 1 && !schema.is_fk_column(&pk[0]) {
        return Ok(RelationCategory::Entity);
    }
    // Relationship relation: composite PK, both attributes FKs.
    if pk.len() == 2 && pk.iter().all(|c| schema.is_fk_column(c)) {
        return Ok(RelationCategory::Relationship {
            left_fk: pk[0].clone(),
            right_fk: pk[1].clone(),
        });
    }
    // Multivalued attribute: exactly two columns, both in the PK, the first
    // an FK and the second plain.
    if schema.columns.len() == 2
        && pk.len() == 2
        && schema.is_fk_column(&pk[0])
        && !schema.is_fk_column(&pk[1])
    {
        return Ok(RelationCategory::MultiValuedAttr {
            fk_col: pk[0].clone(),
            value_col: pk[1].clone(),
        });
    }
    Err(Error::Unsupported(format!(
        "relation `{}` does not match any Appendix A category \
         (pk = {pk:?}; the translation requires entity, relationship, or \
         multivalued-attribute relations)",
        schema.name
    )))
}

/// Chooses the label attribute `β` for an entity relation.
///
/// Heuristics from Appendix A: text is generally more interpretable than
/// numbers, and key columns make poor labels. Users can override.
fn pick_label(schema: &TableSchema, attrs: &[AttrDef], override_col: Option<&str>) -> usize {
    if let Some(name) = override_col {
        if let Some(i) = attrs.iter().position(|a| a.name == name) {
            return i;
        }
    }
    let mut best = 0usize;
    let mut best_score = i32::MIN;
    for (i, a) in attrs.iter().enumerate() {
        let mut score = 0i32;
        if a.data_type == DataType::Text {
            score += 4;
        }
        let lname = a.name.to_ascii_lowercase();
        if ["name", "title", "label", "acronym"]
            .iter()
            .any(|k| lname.contains(k))
        {
            score += 4;
        }
        if schema.is_pk_column(&a.name) {
            score -= 3;
        }
        if score > best_score {
            best_score = score;
            best = i;
        }
    }
    best
}

/// Translates `db` into a typed graph database.
pub fn translate(db: &Database, opts: &TranslateOptions) -> Result<Tgdb> {
    let categories = classify(db)?;
    let mut schema = SchemaGraph::new();
    let mut report = Vec::new();

    // --- Node types from entity relations. -------------------------------
    let mut entity_type: BTreeMap<String, NodeTypeId> = BTreeMap::new();
    let mut entity_label: BTreeMap<String, String> = BTreeMap::new();
    for (name, cat) in &categories {
        if *cat != RelationCategory::Entity {
            continue;
        }
        let tschema = db.table(name)?.schema();
        // FK columns become edges, not attributes: the paper's Figure 1
        // shows e.g. `Conferences` as an entity-reference column instead of
        // a raw `conference_id` base attribute.
        let attrs: Vec<AttrDef> = tschema
            .columns
            .iter()
            .filter(|c| !tschema.is_fk_column(&c.name))
            .map(|c| AttrDef {
                name: c.name.clone(),
                data_type: c.data_type,
            })
            .collect();
        let label_attr = pick_label(
            tschema,
            &attrs,
            opts.label_overrides.get(name).map(String::as_str),
        );
        let label_name = attrs[label_attr].name.clone();
        let id = schema.add_node_type(NodeType {
            name: name.clone(),
            attrs,
            label_attr,
            kind: NodeTypeKind::Entity,
            source_table: name.clone(),
        });
        entity_type.insert(name.clone(), id);
        entity_label.insert(name.clone(), label_name);
        report.push(ReportEntry {
            form: "Node type",
            name: name.clone(),
            source: "Entity tables".into(),
            determining_factor: "Relation with a single-attribute primary key".into(),
        });
    }

    let entity_of_fk = |tschema: &TableSchema, col: &str| -> Result<NodeTypeId> {
        let fk = tschema.fk_on_column(col).ok_or_else(|| {
            Error::Unsupported(format!(
                "column `{col}` of `{}` is not a single-column FK",
                tschema.name
            ))
        })?;
        entity_type
            .get(&fk.referenced_table)
            .copied()
            .ok_or_else(|| {
                Error::Unsupported(format!(
                    "FK target `{}` is not an entity relation",
                    fk.referenced_table
                ))
            })
    };

    // Edge-name disambiguation per source node type (Appendix A: "If the
    // label is used by another edge type, a slightly different label will
    // be created").
    let mut used_names: HashSet<(NodeTypeId, String)> = HashSet::new();
    let unique_name = |used: &mut HashSet<(NodeTypeId, String)>,
                       source: NodeTypeId,
                       base: &str,
                       hint: &str|
     -> String {
        if used.insert((source, base.to_string())) {
            return base.to_string();
        }
        let with_hint = format!("{base} ({hint})");
        if used.insert((source, with_hint.clone())) {
            return with_hint;
        }
        let mut i = 2;
        loop {
            let candidate = format!("{base} ({hint} {i})");
            if used.insert((source, candidate.clone())) {
                return candidate;
            }
            i += 1;
        }
    };

    // --- Edge types from FKs between entity relations (1:1 / 1:n). -------
    // (src type, tgt type, edge type, fk column, source table name)
    let mut fk_edges: Vec<(NodeTypeId, NodeTypeId, EdgeTypeId, String, String)> = Vec::new();
    for (name, cat) in &categories {
        if *cat != RelationCategory::Entity {
            continue;
        }
        let tschema = db.table(name)?.schema().clone();
        let src = entity_type[name];
        for fk in &tschema.foreign_keys {
            if fk.columns.len() != 1 {
                return Err(Error::Unsupported(format!(
                    "composite FK on entity relation `{name}` is not supported"
                )));
            }
            let tgt = entity_of_fk(&tschema, &fk.columns[0])?;
            let fwd_name = unique_name(
                &mut used_names,
                src,
                &schema.node_type(tgt).name,
                &fk.columns[0],
            );
            let rev_name = unique_name(&mut used_names, tgt, &schema.node_type(src).name, name);
            let et = schema.add_edge_type_pair(
                fwd_name.clone(),
                rev_name,
                src,
                tgt,
                EdgeTypeKind::OneToMany,
                EdgeProvenance::ForeignKey {
                    table: name.clone(),
                    column: fk.columns[0].clone(),
                },
            );
            fk_edges.push((src, tgt, et, fk.columns[0].clone(), name.clone()));
            report.push(ReportEntry {
                form: "Edge type",
                name: fwd_name,
                source: "One-to-many relationships".into(),
                determining_factor: "Foreign key between two entity relations".into(),
            });
        }
    }

    // --- Edge types from relationship relations (m:n). -------------------
    // (relation name, edge type, left entity, right entity, left col, right col)
    let mut mn_edges: Vec<(String, EdgeTypeId, NodeTypeId, NodeTypeId, String, String)> =
        Vec::new();
    for (name, cat) in &categories {
        let RelationCategory::Relationship { left_fk, right_fk } = cat else {
            continue;
        };
        let tschema = db.table(name)?.schema().clone();
        let left = entity_of_fk(&tschema, left_fk)?;
        let right = entity_of_fk(&tschema, right_fk)?;
        let (fwd_name, rev_name) = if left == right {
            // Self-relationship, e.g. citations: both directions are
            // meaningful and get distinguishing labels (Figure 1 shows
            // "Papers (referenced)" and "Papers (referencing)").
            (
                unique_name(
                    &mut used_names,
                    left,
                    &format!("{} (referenced)", schema.node_type(right).name),
                    name,
                ),
                unique_name(
                    &mut used_names,
                    right,
                    &format!("{} (referencing)", schema.node_type(left).name),
                    name,
                ),
            )
        } else {
            (
                unique_name(&mut used_names, left, &schema.node_type(right).name, name),
                unique_name(&mut used_names, right, &schema.node_type(left).name, name),
            )
        };
        let et = schema.add_edge_type_pair(
            fwd_name.clone(),
            rev_name,
            left,
            right,
            EdgeTypeKind::ManyToMany,
            EdgeProvenance::Relation {
                table: name.clone(),
                left_col: left_fk.clone(),
                right_col: right_fk.clone(),
            },
        );
        mn_edges.push((
            name.clone(),
            et,
            left,
            right,
            left_fk.clone(),
            right_fk.clone(),
        ));
        report.push(ReportEntry {
            form: "Edge type",
            name: fwd_name,
            source: "Many-to-many relationships".into(),
            determining_factor:
                "Relation with a composite primary key; both are foreign keys of entity relations"
                    .into(),
        });
    }

    // --- Node + edge types from multivalued attribute relations. ---------
    // (relation, value node type, edge type, entity type, fk col, value col)
    let mut mva_defs: Vec<(String, NodeTypeId, EdgeTypeId, NodeTypeId, String, String)> =
        Vec::new();
    for (name, cat) in &categories {
        let RelationCategory::MultiValuedAttr { fk_col, value_col } = cat else {
            continue;
        };
        let tschema = db.table(name)?.schema().clone();
        let owner = entity_of_fk(&tschema, fk_col)?;
        let value_ty = tschema
            .column(value_col)
            .expect("classified column exists")
            .data_type;
        let nt_name = format!("{name}: {value_col}");
        let vt = schema.add_node_type(NodeType {
            name: nt_name.clone(),
            attrs: vec![AttrDef {
                name: value_col.clone(),
                data_type: value_ty,
            }],
            label_attr: 0,
            kind: NodeTypeKind::MultiValued,
            source_table: name.clone(),
        });
        report.push(ReportEntry {
            form: "Node type",
            name: nt_name.clone(),
            source: "Multi-valued attributes".into(),
            determining_factor:
                "Relation with two attributes; one of them is a foreign key of an entity relation"
                    .into(),
        });
        let fwd_name = unique_name(&mut used_names, owner, &nt_name, name);
        let rev_name = unique_name(&mut used_names, vt, &schema.node_type(owner).name, name);
        let et = schema.add_edge_type_pair(
            fwd_name.clone(),
            rev_name,
            owner,
            vt,
            EdgeTypeKind::MultiValued,
            EdgeProvenance::MultiValued {
                table: name.clone(),
                fk_col: fk_col.clone(),
                value_col: value_col.clone(),
            },
        );
        mva_defs.push((
            name.clone(),
            vt,
            et,
            owner,
            fk_col.clone(),
            value_col.clone(),
        ));
        report.push(ReportEntry {
            form: "Edge type",
            name: fwd_name,
            source: "Multi-valued attributes".into(),
            determining_factor: "From an entity table to a multi-valued attribute".into(),
        });
    }

    // --- Node + edge types from categorical attributes. ------------------
    // (entity table, cat node type, edge type, entity type, column)
    let mut cat_defs: Vec<(String, NodeTypeId, EdgeTypeId, NodeTypeId, String)> = Vec::new();
    for (name, cat) in &categories {
        if *cat != RelationCategory::Entity {
            continue;
        }
        let table = db.table(name)?;
        let tschema = table.schema().clone();
        let owner = entity_type[name];
        for (ci, col) in tschema.columns.iter().enumerate() {
            if tschema.is_pk_column(&col.name) || tschema.is_fk_column(&col.name) {
                continue;
            }
            let explicit = opts
                .categorical_columns
                .iter()
                .any(|(t, c)| t == name && *c == col.name);
            // A type's own label attribute identifies its nodes; promoting
            // it to a categorical grouping would be redundant, so automatic
            // detection skips it (explicit selection still wins).
            let is_label = entity_label.get(name) == Some(&col.name);
            let auto = opts.categorical_threshold > 0
                && !is_label
                && !table.is_empty()
                && table.distinct_values(ci).len() <= opts.categorical_threshold;
            if !(explicit || auto) {
                continue;
            }
            let nt_name = format!("{name}: {}", col.name);
            let vt = schema.add_node_type(NodeType {
                name: nt_name.clone(),
                attrs: vec![AttrDef {
                    name: col.name.clone(),
                    data_type: col.data_type,
                }],
                label_attr: 0,
                kind: NodeTypeKind::Categorical,
                source_table: name.clone(),
            });
            report.push(ReportEntry {
                form: "Node type",
                name: nt_name.clone(),
                source: "Single-valued categorical attributes".into(),
                determining_factor: "Attribute of low cardinality".into(),
            });
            let fwd_name = unique_name(&mut used_names, owner, &nt_name, name);
            let rev_name = unique_name(&mut used_names, vt, name, &col.name);
            let et = schema.add_edge_type_pair(
                fwd_name.clone(),
                rev_name,
                owner,
                vt,
                EdgeTypeKind::Categorical,
                EdgeProvenance::Categorical {
                    table: name.clone(),
                    column: col.name.clone(),
                },
            );
            cat_defs.push((name.clone(), vt, et, owner, col.name.clone()));
            report.push(ReportEntry {
                form: "Edge type",
                name: fwd_name,
                source: "Single-valued categorical attributes".into(),
                determining_factor: "From an entity table to a categorical attribute".into(),
            });
        }
    }

    // --- Instance graph. --------------------------------------------------
    let mut instances = InstanceGraph::for_schema(&schema);
    let mut pk_index: HashMap<NodeTypeId, HashMap<Value, NodeId>> = HashMap::new();

    // Entity nodes.
    for (name, &nt) in &entity_type {
        let table = db.table(name)?;
        let tschema = table.schema();
        let attr_cols: Vec<usize> = tschema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| !tschema.is_fk_column(&c.name))
            .map(|(i, _)| i)
            .collect();
        let pk_col = tschema
            .column_index(&tschema.primary_key[0])
            .expect("entity pk exists");
        let index = pk_index.entry(nt).or_default();
        // Stream the attribute and PK columns directly out of columnar
        // storage: no full-row materialization, and every text attribute
        // re-uses the symbol the table already interned.
        let cols: Vec<_> = attr_cols.iter().map(|&i| table.column(i)).collect();
        let pk = table.column(pk_col);
        for r in 0..table.len() {
            let values: Vec<Value> = cols.iter().map(|c| c.get(r)).collect();
            let node = instances.add_node(nt, values);
            index.insert(pk.get(r), node);
        }
    }

    // FK edges between entities.
    for (src_ty, tgt_ty, et, fk_col, table_name) in &fk_edges {
        let table = db.table(table_name)?;
        let tschema = table.schema();
        let fk_idx = tschema.column_index(fk_col).expect("fk column");
        let pk_idx = tschema
            .column_index(&tschema.primary_key[0])
            .expect("entity pk");
        let fks = table.column(fk_idx);
        let pks = table.column(pk_idx);
        for r in 0..table.len() {
            if fks.is_null(r) {
                continue;
            }
            let fk_val = fks.get(r);
            let src = pk_index[src_ty][&pks.get(r)];
            let tgt = *pk_index[tgt_ty].get(&fk_val).ok_or_else(|| {
                Error::Integrity(format!("dangling FK {table_name}.{fk_col} = {fk_val}"))
            })?;
            instances.add_edge(&schema, *et, src, tgt);
        }
    }

    // M:N edges.
    for (table_name, et, left_ty, right_ty, left_col, right_col) in &mn_edges {
        let table = db.table(table_name)?;
        let tschema = table.schema();
        let li = tschema.column_index(left_col).expect("left fk");
        let ri = tschema.column_index(right_col).expect("right fk");
        let lc = table.column(li);
        let rc = table.column(ri);
        for r in 0..table.len() {
            let (lv, rv) = (lc.get(r), rc.get(r));
            let src = *pk_index[left_ty].get(&lv).ok_or_else(|| {
                Error::Integrity(format!("dangling FK {table_name}.{left_col} = {lv}"))
            })?;
            let tgt = *pk_index[right_ty].get(&rv).ok_or_else(|| {
                Error::Integrity(format!("dangling FK {table_name}.{right_col} = {rv}"))
            })?;
            instances.add_edge(&schema, *et, src, tgt);
        }
    }

    // MVA value nodes + edges.
    for (table_name, vt, et, owner_ty, fk_col, value_col) in &mva_defs {
        let table = db.table(table_name)?;
        let tschema = table.schema();
        let fi = tschema.column_index(fk_col).expect("fk column");
        let vi = tschema.column_index(value_col).expect("value column");
        // Node creation order comes from `distinct_values` (already in
        // total order); the map itself is only a lookup, so hash on the
        // value (interned text hashes by symbol id — no arena reads).
        let mut value_nodes: HashMap<Value, NodeId> = HashMap::new();
        for v in table.distinct_values(vi) {
            if v.is_null() {
                continue;
            }
            let node = instances.add_node(*vt, vec![v]);
            value_nodes.insert(v, node);
        }
        let fc = table.column(fi);
        let vc = table.column(vi);
        for r in 0..table.len() {
            if vc.is_null(r) {
                continue;
            }
            let fv = fc.get(r);
            let src = *pk_index[owner_ty].get(&fv).ok_or_else(|| {
                Error::Integrity(format!("dangling FK {table_name}.{fk_col} = {fv}"))
            })?;
            instances.add_edge(&schema, *et, src, value_nodes[&vc.get(r)]);
        }
    }

    // Categorical value nodes + edges.
    for (table_name, vt, et, owner_ty, col_name) in &cat_defs {
        let table = db.table(table_name)?;
        let tschema = table.schema();
        let ci = tschema.column_index(col_name).expect("categorical column");
        let pk_idx = tschema
            .column_index(&tschema.primary_key[0])
            .expect("entity pk");
        // Lookup-only map, as above: hash by symbol id, never compare text.
        let mut value_nodes: HashMap<Value, NodeId> = HashMap::new();
        for v in table.distinct_values(ci) {
            if v.is_null() {
                continue;
            }
            let node = instances.add_node(*vt, vec![v]);
            value_nodes.insert(v, node);
        }
        let cc = table.column(ci);
        let pks = table.column(pk_idx);
        for r in 0..table.len() {
            if cc.is_null(r) {
                continue;
            }
            let src = pk_index[owner_ty][&pks.get(r)];
            instances.add_edge(&schema, *et, src, value_nodes[&cc.get(r)]);
        }
    }

    Ok(Tgdb {
        schema,
        instances,
        categories,
        report,
        pk_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etable_relational::schema::{Column, ForeignKey, TableSchema};

    /// A miniature version of the paper's Figure 3 schema.
    fn academic_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "Conferences",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("acronym", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Papers",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("conference_id", DataType::Int),
                    Column::new("title", DataType::Text),
                    Column::new("year", DataType::Int),
                ],
            )
            .with_primary_key(&["id"])
            .with_foreign_key(ForeignKey::single("conference_id", "Conferences", "id")),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Authors",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("name", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Paper_Authors",
                vec![
                    Column::new("paper_id", DataType::Int),
                    Column::new("author_id", DataType::Int),
                    Column::new("ord", DataType::Int),
                ],
            )
            .with_primary_key(&["paper_id", "author_id"])
            .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id"))
            .with_foreign_key(ForeignKey::single("author_id", "Authors", "id")),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Paper_Keywords",
                vec![
                    Column::new("paper_id", DataType::Int),
                    Column::new("keyword", DataType::Text),
                ],
            )
            .with_primary_key(&["paper_id", "keyword"])
            .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id")),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Paper_References",
                vec![
                    Column::new("paper_id", DataType::Int),
                    Column::new("ref_paper_id", DataType::Int),
                ],
            )
            .with_primary_key(&["paper_id", "ref_paper_id"])
            .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id"))
            .with_foreign_key(ForeignKey::single("ref_paper_id", "Papers", "id")),
        )
        .unwrap();

        db.insert("Conferences", vec![1.into(), "SIGMOD".into()])
            .unwrap();
        db.insert("Conferences", vec![2.into(), "KDD".into()])
            .unwrap();
        db.insert(
            "Papers",
            vec![10.into(), 1.into(), "Usable DBs".into(), 2007.into()],
        )
        .unwrap();
        db.insert(
            "Papers",
            vec![11.into(), 1.into(), "SkewTune".into(), 2012.into()],
        )
        .unwrap();
        db.insert(
            "Papers",
            vec![12.into(), 2.into(), "Deep stuff".into(), 2012.into()],
        )
        .unwrap();
        db.insert("Authors", vec![100.into(), "Jagadish".into()])
            .unwrap();
        db.insert("Authors", vec![101.into(), "Nandi".into()])
            .unwrap();
        db.insert("Paper_Authors", vec![10.into(), 100.into(), 1.into()])
            .unwrap();
        db.insert("Paper_Authors", vec![10.into(), 101.into(), 2.into()])
            .unwrap();
        db.insert("Paper_Authors", vec![11.into(), 101.into(), 1.into()])
            .unwrap();
        db.insert("Paper_Keywords", vec![10.into(), "usability".into()])
            .unwrap();
        db.insert("Paper_Keywords", vec![10.into(), "user interface".into()])
            .unwrap();
        db.insert("Paper_Keywords", vec![11.into(), "skew".into()])
            .unwrap();
        db.insert("Paper_References", vec![11.into(), 10.into()])
            .unwrap();
        db.insert("Paper_References", vec![12.into(), 10.into()])
            .unwrap();
        db
    }

    #[test]
    fn classification_matches_table1() {
        let db = academic_db();
        let cats = classify(&db).unwrap();
        assert_eq!(cats["Conferences"], RelationCategory::Entity);
        assert_eq!(cats["Papers"], RelationCategory::Entity);
        assert_eq!(cats["Authors"], RelationCategory::Entity);
        assert!(matches!(
            cats["Paper_Authors"],
            RelationCategory::Relationship { .. }
        ));
        assert!(matches!(
            cats["Paper_Keywords"],
            RelationCategory::MultiValuedAttr { .. }
        ));
        assert!(matches!(
            cats["Paper_References"],
            RelationCategory::Relationship { .. }
        ));
    }

    #[test]
    fn schema_graph_shape() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        // Entities + keyword MVA + categorical (year, acronym, name, title
        // depending on cardinality <= 30: all tiny here).
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let out = tgdb.schema.outgoing(papers);
        let names: Vec<&str> = out.iter().map(|(_, e)| e.name.as_str()).collect();
        assert!(names.contains(&"Conferences"), "{names:?}");
        assert!(names.contains(&"Authors"), "{names:?}");
        assert!(names.contains(&"Paper_Keywords: keyword"), "{names:?}");
        assert!(names.contains(&"Papers (referenced)"), "{names:?}");
        assert!(names.contains(&"Papers (referencing)"), "{names:?}");
    }

    #[test]
    fn label_attribute_prefers_text_names() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        let (_, papers) = tgdb.schema.node_type_by_name("Papers").unwrap();
        assert_eq!(papers.attrs[papers.label_attr].name, "title");
        let (_, authors) = tgdb.schema.node_type_by_name("Authors").unwrap();
        assert_eq!(authors.attrs[authors.label_attr].name, "name");
    }

    #[test]
    fn label_override_wins() {
        let db = academic_db();
        let opts = TranslateOptions {
            label_overrides: [("Papers".to_string(), "year".to_string())]
                .into_iter()
                .collect(),
            ..TranslateOptions::default()
        };
        let tgdb = translate(&db, &opts).unwrap();
        let (_, papers) = tgdb.schema.node_type_by_name("Papers").unwrap();
        assert_eq!(papers.attrs[papers.label_attr].name, "year");
    }

    #[test]
    fn fk_columns_become_edges_not_attrs() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        let (_, papers) = tgdb.schema.node_type_by_name("Papers").unwrap();
        assert!(papers.attr_index("conference_id").is_none());
        assert!(papers.attr_index("title").is_some());
    }

    #[test]
    fn instance_graph_counts_match_relations() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        assert_eq!(tgdb.instances.nodes_of_type(papers).len(), 3);
        // Authors edge adjacency = Paper_Authors row count.
        let (et, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        assert_eq!(tgdb.instances.adjacency_size(et), 3);
        // Keyword adjacency = Paper_Keywords row count.
        let (ket, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Paper_Keywords: keyword")
            .unwrap();
        assert_eq!(tgdb.instances.adjacency_size(ket), 3);
    }

    #[test]
    fn neighbor_lookup_follows_citations() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let skewtune = tgdb.node_by_pk(papers, &11.into()).unwrap();
        let usable = tgdb.node_by_pk(papers, &10.into()).unwrap();
        let (refd, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Papers (referenced)")
            .unwrap();
        assert_eq!(tgdb.instances.neighbors(refd, skewtune), &[usable]);
        let (refg, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Papers (referencing)")
            .unwrap();
        // "Usable DBs" is cited by SkewTune and Deep stuff.
        assert_eq!(tgdb.instances.neighbors(refg, usable).len(), 2);
    }

    #[test]
    fn categorical_detection_respects_threshold() {
        let db = academic_db();
        let opts = TranslateOptions {
            categorical_threshold: 0, // disable auto
            ..TranslateOptions::default()
        };
        let tgdb = translate(&db, &opts).unwrap();
        assert!(tgdb.schema.node_type_by_name("Papers: year").is_none());

        let opts = TranslateOptions::default();
        let tgdb = translate(&db, &opts).unwrap();
        assert!(tgdb.schema.node_type_by_name("Papers: year").is_some());
        // Distinct years 2007/2012 -> 2 value nodes.
        let (yt, _) = tgdb.schema.node_type_by_name("Papers: year").unwrap();
        assert_eq!(tgdb.instances.nodes_of_type(yt).len(), 2);
    }

    #[test]
    fn explicit_categorical_column() {
        let db = academic_db();
        let opts = TranslateOptions {
            categorical_threshold: 0,
            categorical_columns: vec![("Papers".into(), "year".into())],
            ..TranslateOptions::default()
        };
        let tgdb = translate(&db, &opts).unwrap();
        assert!(tgdb.schema.node_type_by_name("Papers: year").is_some());
        assert!(tgdb.schema.node_type_by_name("Papers: title").is_none());
    }

    #[test]
    fn node_by_label_lookup() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let n = tgdb.node_by_label(papers, "SkewTune").unwrap();
        assert_eq!(
            tgdb.instances.attr(&tgdb.schema, n, "year"),
            Some(&Value::Int(2012))
        );
    }

    #[test]
    fn unsupported_relation_rejected() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "Weird",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                    Column::new("c", DataType::Int),
                ],
            )
            .with_primary_key(&["a", "b", "c"]),
        )
        .unwrap();
        assert!(classify(&db).is_err());
    }

    #[test]
    fn report_covers_all_categories() {
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        let sources: HashSet<&str> = tgdb.report.iter().map(|r| r.source.as_str()).collect();
        assert!(sources.contains("Entity tables"));
        assert!(sources.contains("One-to-many relationships"));
        assert!(sources.contains("Many-to-many relationships"));
        assert!(sources.contains("Multi-valued attributes"));
        assert!(sources.contains("Single-valued categorical attributes"));
    }

    #[test]
    fn bidirectional_invariant() {
        // For every edge type: neighbors(et, a) contains b iff
        // neighbors(reverse, b) contains a.
        let db = academic_db();
        let tgdb = translate(&db, &TranslateOptions::default()).unwrap();
        for (et, e) in tgdb.schema.edge_types() {
            let rev = e.reverse;
            for a in tgdb.instances.node_ids() {
                for &b in tgdb.instances.neighbors(et, a) {
                    assert!(
                        tgdb.instances.neighbors(rev, b).contains(&a),
                        "missing reverse edge for {et:?}"
                    );
                }
            }
        }
    }
}
