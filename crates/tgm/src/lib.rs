//! # etable-tgm
//!
//! The **Typed Graph Model** (TGM) of the ETable paper (§4): relational
//! databases are reverse engineered into a *schema graph* (node types and
//! bidirectional edge types) plus an *instance graph* (nodes, edges,
//! per-edge-type adjacency), so that users can browse data at the
//! entity-relationship level and the ETable layer can answer neighbor
//! lookups with hash probes instead of joins.
//!
//! The translation procedure implements the paper's Appendix A, covering
//! all five categories of Table 1: entity tables, one-to-many and
//! many-to-many relationships, multivalued attributes, and categorical
//! attributes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ids;
pub mod instance_graph;
pub mod schema_graph;
pub mod stats;
pub mod translate;

pub use ids::{EdgeTypeId, NodeId, NodeTypeId};
pub use instance_graph::{InstanceGraph, Node};
pub use schema_graph::{
    AttrDef, EdgeProvenance, EdgeType, EdgeTypeKind, NodeType, NodeTypeKind, SchemaGraph,
};
pub use translate::{classify, translate, RelationCategory, Tgdb, TranslateOptions};

use std::fmt;

/// Errors produced during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The relational schema does not satisfy the Appendix A assumptions.
    Unsupported(String),
    /// The relational instances violate referential integrity.
    Integrity(String),
    /// Underlying relational engine error.
    Relational(etable_relational::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unsupported(m) => write!(f, "unsupported schema: {m}"),
            Error::Integrity(m) => write!(f, "integrity error: {m}"),
            Error::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<etable_relational::Error> for Error {
    fn from(e: etable_relational::Error) -> Self {
        Error::Relational(e)
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, Error>;
