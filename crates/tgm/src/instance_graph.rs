//! The TGDB instance graph (paper Definition 2).
//!
//! `GI = (V, E)` with a node-type mapping and an edge-type mapping. The
//! instance graph maintains per-edge-type adjacency indexes so the "quick
//! neighbor-lookup" the paper relies on (§1) is a hash probe plus slice.

use crate::ids::{EdgeTypeId, NodeId, NodeTypeId};
use crate::schema_graph::SchemaGraph;
use etable_relational::value::Value;
use std::collections::HashMap;

/// A node (entity) in the instance graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's type.
    pub node_type: NodeTypeId,
    /// Attribute values, positionally matching the node type's `attrs`.
    pub values: Vec<Value>,
}

/// The instance graph.
#[derive(Debug, Clone, Default)]
pub struct InstanceGraph {
    nodes: Vec<Node>,
    /// node type -> nodes of that type, in insertion order.
    by_type: Vec<Vec<NodeId>>,
    /// edge type -> (source node -> target nodes).
    adjacency: Vec<HashMap<NodeId, Vec<NodeId>>>,
    /// Total number of logical (forward) edges inserted.
    edge_count: usize,
}

impl InstanceGraph {
    /// Creates an empty instance graph shaped for `schema`.
    pub fn for_schema(schema: &SchemaGraph) -> Self {
        InstanceGraph {
            nodes: Vec::new(),
            by_type: vec![Vec::new(); schema.node_type_count()],
            adjacency: vec![HashMap::new(); schema.edge_type_count()],
            edge_count: 0,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node_type: NodeTypeId, values: Vec<Value>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node { node_type, values });
        self.by_type[node_type.index()].push(id);
        id
    }

    /// Adds an edge of type `et` from `src` to `tgt` and mirrors it on the
    /// reverse edge type, keeping the graph bidirectionally navigable.
    pub fn add_edge(&mut self, schema: &SchemaGraph, et: EdgeTypeId, src: NodeId, tgt: NodeId) {
        let reverse = schema.edge_type(et).reverse;
        debug_assert_eq!(
            self.nodes[src.index()].node_type,
            schema.edge_type(et).source
        );
        debug_assert_eq!(
            self.nodes[tgt.index()].node_type,
            schema.edge_type(et).target
        );
        self.adjacency[et.index()].entry(src).or_default().push(tgt);
        self.adjacency[reverse.index()]
            .entry(tgt)
            .or_default()
            .push(src);
        self.edge_count += 1;
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The type of a node (`typeτ` in Definition 2).
    pub fn type_of(&self, id: NodeId) -> NodeTypeId {
        self.nodes[id.index()].node_type
    }

    /// The node's label `label(v) = v[βi]` rendered as text.
    pub fn label(&self, schema: &SchemaGraph, id: NodeId) -> String {
        let node = self.node(id);
        let nt = schema.node_type(node.node_type);
        node.values[nt.label_attr].to_string()
    }

    /// An attribute value of a node by attribute name.
    pub fn attr(&self, schema: &SchemaGraph, id: NodeId, name: &str) -> Option<&Value> {
        let node = self.node(id);
        let nt = schema.node_type(node.node_type);
        nt.attr_index(name).map(|i| &node.values[i])
    }

    /// Nodes of a type, in insertion order.
    pub fn nodes_of_type(&self, nt: NodeTypeId) -> &[NodeId] {
        &self.by_type[nt.index()]
    }

    /// Neighbors of `node` along edge type `et` (possibly empty).
    pub fn neighbors(&self, et: EdgeTypeId, node: NodeId) -> &[NodeId] {
        self.adjacency[et.index()]
            .get(&node)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Out-degree of `node` along `et`.
    pub fn degree(&self, et: EdgeTypeId, node: NodeId) -> usize {
        self.neighbors(et, node).len()
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total logical edge count (each forward/reverse pair counted once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of adjacency list lengths for one edge type (used by integrity
    /// checks: must equal the source relation's row count).
    pub fn adjacency_size(&self, et: EdgeTypeId) -> usize {
        self.adjacency[et.index()].values().map(Vec::len).sum()
    }

    /// All node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Verifies structural consistency against a schema graph:
    /// * every node's values match its type's arity,
    /// * every adjacency entry connects correctly-typed endpoints,
    /// * every edge has its mirror on the reverse edge type.
    ///
    /// Returns the number of directed adjacency entries checked.
    pub fn check_consistency(&self, schema: &SchemaGraph) -> Result<usize, String> {
        for (i, node) in self.nodes.iter().enumerate() {
            let nt = schema.node_type(node.node_type);
            if node.values.len() != nt.attrs.len() {
                return Err(format!(
                    "node {i} of type `{}` has {} values, expected {}",
                    nt.name,
                    node.values.len(),
                    nt.attrs.len()
                ));
            }
        }
        let mut checked = 0usize;
        for (eti, adj) in self.adjacency.iter().enumerate() {
            let et = schema.edge_type(crate::ids::EdgeTypeId::from_index(eti));
            for (&src, targets) in adj {
                if self.type_of(src) != et.source {
                    return Err(format!(
                        "edge type `{}`: source {src} has the wrong node type",
                        et.name
                    ));
                }
                for &tgt in targets {
                    if self.type_of(tgt) != et.target {
                        return Err(format!(
                            "edge type `{}`: target {tgt} has the wrong node type",
                            et.name
                        ));
                    }
                    if !self.neighbors(et.reverse, tgt).contains(&src) {
                        return Err(format!(
                            "edge type `{}`: {src} -> {tgt} lacks its reverse mirror",
                            et.name
                        ));
                    }
                    checked += 1;
                }
            }
        }
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_graph::{AttrDef, EdgeTypeKind, NodeType, NodeTypeKind};
    use etable_relational::value::DataType;

    fn setup() -> (SchemaGraph, InstanceGraph, EdgeTypeId, Vec<NodeId>) {
        let mut schema = SchemaGraph::new();
        let papers = schema.add_node_type(NodeType {
            name: "Papers".into(),
            attrs: vec![
                AttrDef {
                    name: "id".into(),
                    data_type: DataType::Int,
                },
                AttrDef {
                    name: "title".into(),
                    data_type: DataType::Text,
                },
            ],
            label_attr: 1,
            kind: NodeTypeKind::Entity,
            source_table: "Papers".into(),
        });
        let authors = schema.add_node_type(NodeType {
            name: "Authors".into(),
            attrs: vec![
                AttrDef {
                    name: "id".into(),
                    data_type: DataType::Int,
                },
                AttrDef {
                    name: "name".into(),
                    data_type: DataType::Text,
                },
            ],
            label_attr: 1,
            kind: NodeTypeKind::Entity,
            source_table: "Authors".into(),
        });
        let et = schema.add_edge_type_pair(
            "Authors",
            "Papers",
            papers,
            authors,
            EdgeTypeKind::ManyToMany,
            crate::schema_graph::EdgeProvenance::Relation {
                table: "Paper_Authors".into(),
                left_col: "paper_id".into(),
                right_col: "author_id".into(),
            },
        );
        let mut g = InstanceGraph::for_schema(&schema);
        let p1 = g.add_node(papers, vec![1.into(), "Usable DBs".into()]);
        let p2 = g.add_node(papers, vec![2.into(), "SkewTune".into()]);
        let a1 = g.add_node(authors, vec![10.into(), "Jagadish".into()]);
        let a2 = g.add_node(authors, vec![11.into(), "Nandi".into()]);
        g.add_edge(&schema, et, p1, a1);
        g.add_edge(&schema, et, p1, a2);
        g.add_edge(&schema, et, p2, a2);
        (schema, g, et, vec![p1, p2, a1, a2])
    }

    #[test]
    fn neighbor_lookup_both_directions() {
        let (schema, g, et, ids) = setup();
        let (p1, p2, a1, a2) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(g.neighbors(et, p1), &[a1, a2]);
        assert_eq!(g.neighbors(et, p2), &[a2]);
        let rev = schema.edge_type(et).reverse;
        assert_eq!(g.neighbors(rev, a2), &[p1, p2]);
        assert_eq!(g.neighbors(rev, a1), &[p1]);
    }

    #[test]
    fn labels_use_label_attr() {
        let (schema, g, _, ids) = setup();
        assert_eq!(g.label(&schema, ids[0]), "Usable DBs");
        assert_eq!(g.label(&schema, ids[3]), "Nandi");
    }

    #[test]
    fn attr_by_name() {
        let (schema, g, _, ids) = setup();
        assert_eq!(g.attr(&schema, ids[0], "id"), Some(&Value::Int(1)));
        assert!(g.attr(&schema, ids[0], "nope").is_none());
    }

    #[test]
    fn counts() {
        let (_, g, et, _) = setup();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.adjacency_size(et), 3);
    }

    #[test]
    fn nodes_of_type_partition() {
        let (schema, g, _, _) = setup();
        let (papers, _) = schema.node_type_by_name("Papers").unwrap();
        let (authors, _) = schema.node_type_by_name("Authors").unwrap();
        assert_eq!(g.nodes_of_type(papers).len(), 2);
        assert_eq!(g.nodes_of_type(authors).len(), 2);
        // The partition covers every node exactly once.
        assert_eq!(
            g.nodes_of_type(papers).len() + g.nodes_of_type(authors).len(),
            g.node_count()
        );
    }

    #[test]
    fn consistency_check_passes_and_counts() {
        let (schema, g, _, _) = setup();
        // 3 logical edges, mirrored -> 6 directed adjacency entries.
        assert_eq!(g.check_consistency(&schema), Ok(6));
    }

    #[test]
    fn empty_neighbors_for_isolated_node() {
        let (schema, mut g, et, _) = setup();
        let (papers, _) = schema.node_type_by_name("Papers").unwrap();
        let p3 = g.add_node(papers, vec![3.into(), "Lonely".into()]);
        assert!(g.neighbors(et, p3).is_empty());
        assert_eq!(g.degree(et, p3), 0);
    }
}
