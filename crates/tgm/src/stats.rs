//! Descriptive statistics over a typed graph database: per-type node
//! counts, per-edge-type degree distributions, and a text summary. Used by
//! the figure harnesses and by tests asserting the synthetic data keeps the
//! skewed shape of the paper's DBLP/ACM crawl.

use crate::ids::EdgeTypeId;
use crate::translate::Tgdb;

/// Degree distribution summary for one edge type.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Edge type name.
    pub edge_name: String,
    /// Number of source nodes (including zero-degree ones).
    pub sources: usize,
    /// Total edges.
    pub total: usize,
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: usize,
    /// Fraction of source nodes with degree zero.
    pub zero_fraction: f64,
}

/// Computes the out-degree distribution of one edge type over all nodes of
/// its source type.
pub fn degree_stats(tgdb: &Tgdb, edge: EdgeTypeId) -> DegreeStats {
    let et = tgdb.schema.edge_type(edge);
    let sources = tgdb.instances.nodes_of_type(et.source);
    let mut degrees: Vec<usize> = sources
        .iter()
        .map(|&n| tgdb.instances.degree(edge, n))
        .collect();
    degrees.sort_unstable();
    let n = degrees.len();
    let total: usize = degrees.iter().sum();
    let zero = degrees.iter().filter(|&&d| d == 0).count();
    DegreeStats {
        edge_name: et.name.clone(),
        sources: n,
        total,
        min: degrees.first().copied().unwrap_or(0),
        max: degrees.last().copied().unwrap_or(0),
        mean: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        median: if n == 0 { 0 } else { degrees[n / 2] },
        zero_fraction: if n == 0 { 0.0 } else { zero as f64 / n as f64 },
    }
}

/// A whole-database summary: one line per node type and per forward edge
/// type.
pub fn summary(tgdb: &Tgdb) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "node types:");
    for (id, nt) in tgdb.schema.node_types() {
        let _ = writeln!(
            out,
            "  {:<28} {:>8} nodes ({})",
            nt.name,
            tgdb.instances.nodes_of_type(id).len(),
            nt.kind
        );
    }
    let _ = writeln!(out, "edge types (forward directions):");
    for (id, et) in tgdb.schema.edge_types() {
        if !et.forward {
            continue;
        }
        let s = degree_stats(tgdb, id);
        let _ = writeln!(
            out,
            "  {:<28} {:>8} edges  degree min/med/mean/max = {}/{}/{:.2}/{}",
            et.name, s.total, s.min, s.median, s.mean, s.max
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tgdb() -> Tgdb {
        // Reuse the translate-module fixture through a small local build.
        use etable_relational::database::Database;
        use etable_relational::schema::{Column, ForeignKey, TableSchema};
        use etable_relational::value::DataType;
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "P",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("name", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "C",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("p_id", DataType::Int),
                    Column::new("label", DataType::Text),
                ],
            )
            .with_primary_key(&["id"])
            .with_foreign_key(ForeignKey::single("p_id", "P", "id")),
        )
        .unwrap();
        db.insert("P", vec![1.into(), "a".into()]).unwrap();
        db.insert("P", vec![2.into(), "b".into()]).unwrap();
        db.insert("C", vec![10.into(), 1.into(), "x".into()])
            .unwrap();
        db.insert("C", vec![11.into(), 1.into(), "y".into()])
            .unwrap();
        crate::translate::translate(&db, &crate::translate::TranslateOptions::default()).unwrap()
    }

    #[test]
    fn degree_stats_count_correctly() {
        let t = tgdb();
        let (p, _) = t.schema.node_type_by_name("P").unwrap();
        // Reverse FK edge: P -> C, degrees are [2, 0].
        let (et, _) = t.schema.outgoing_by_name(p, "C").unwrap();
        let s = degree_stats(&t, et);
        assert_eq!(s.sources, 2);
        assert_eq!(s.total, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 0);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!((s.zero_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_everything() {
        let t = tgdb();
        let text = summary(&t);
        assert!(text.contains("node types:"));
        assert!(text.contains("edge types"));
        assert!(text.contains("P "));
        assert!(text.contains("degree min/med/mean/max"));
    }
}
