//! # etable-datagen
//!
//! Synthetic academic database generator reproducing the data set of the
//! ETable paper's evaluation (§7.1): the Figure 3 relational schema
//! (7 relations, 7 foreign keys), ~38k papers at 19 conferences with skewed
//! authorship/citation distributions, plus the six study tasks of Table 2
//! with computable ground truth.
//!
//! The paper crawled DBLP and the ACM Digital Library; this crate generates
//! a statistically similar database deterministically from a seed — see
//! DESIGN.md for the substitution rationale.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dump;
pub mod generator;
pub mod names;
pub mod schema;
pub mod snapshot;
pub mod tasks;

pub use dump::{dump_sql, load_sql};
pub use generator::{generate, planted, GenConfig, GENERATOR_REV, MIN_PAPERS};
pub use schema::academic_schema;
pub use snapshot::{load_or_generate, snapshot_key};
pub use tasks::{ground_truth, params, task_set, Task, TaskCategory, TaskParams, TaskSet};
