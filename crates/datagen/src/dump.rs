//! SQL dump of a generated database: serializes schema + rows as
//! `CREATE TABLE` / `INSERT` statements that the `etable-relational` SQL
//! dialect can replay. Round-tripping a generated database through its own
//! dump exercises the whole SQL surface at scale and lets users persist a
//! world or load it into another engine.

use etable_relational::database::Database;
use etable_relational::sql::execute;
use etable_relational::value::{DataType, Value};
use std::fmt::Write;

fn sql_type(ty: DataType) -> &'static str {
    match ty {
        DataType::Int => "INT",
        DataType::Float => "FLOAT",
        DataType::Text => "TEXT",
        DataType::Bool => "BOOL",
    }
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Text(s) => format!("'{}'", s.as_str().replace('\'', "''")),
        other => other.to_string(),
    }
}

/// Serializes the whole database as executable SQL.
///
/// Tables are emitted in FK-dependency order so the dump replays with
/// integrity checking enabled; INSERTs are batched.
pub fn dump_sql(db: &Database) -> String {
    // Topologically order tables by FK dependencies.
    let names: Vec<&str> = db.table_names();
    let mut ordered: Vec<&str> = Vec::new();
    let mut remaining: Vec<&str> = names.clone();
    while !remaining.is_empty() {
        let before = ordered.len();
        remaining.retain(|name| {
            let schema = db.table(name).expect("listed table").schema();
            let ready = schema.foreign_keys.iter().all(|fk| {
                fk.referenced_table == *name || ordered.contains(&fk.referenced_table.as_str())
            });
            if ready {
                ordered.push(name);
            }
            !ready
        });
        assert!(
            ordered.len() > before,
            "cyclic FK dependencies between tables {remaining:?}"
        );
    }

    let mut out = String::new();
    for name in &ordered {
        let schema = db.table(name).expect("listed table").schema();
        let _ = write!(out, "CREATE TABLE {name} (");
        for (i, c) in schema.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {}", c.name, sql_type(c.data_type));
            if !c.nullable && !schema.is_pk_column(&c.name) {
                out.push_str(" NOT NULL");
            }
        }
        if !schema.primary_key.is_empty() {
            let _ = write!(out, ", PRIMARY KEY ({})", schema.primary_key.join(", "));
        }
        for fk in &schema.foreign_keys {
            let _ = write!(
                out,
                ", FOREIGN KEY ({}) REFERENCES {} ({})",
                fk.columns.join(", "),
                fk.referenced_table,
                fk.referenced_columns.join(", ")
            );
        }
        out.push_str(");\n");
    }
    for name in &ordered {
        let table = db.table(name).expect("listed table");
        const BATCH: usize = 200;
        let rows = table.to_rows();
        for chunk in rows.chunks(BATCH) {
            let _ = write!(out, "INSERT INTO {name} VALUES ");
            for (i, row) in chunk.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let fields: Vec<String> = row.iter().map(sql_literal).collect();
                let _ = write!(out, "({})", fields.join(", "));
            }
            out.push_str(";\n");
        }
    }
    out
}

/// Replays a dump into a fresh database.
pub fn load_sql(dump: &str) -> Result<Database, etable_relational::Error> {
    let mut db = Database::new();
    for stmt in dump.split(";\n") {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        execute(&mut db, stmt)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let original = generate(&GenConfig::small());
        let dump = dump_sql(&original);
        let restored = load_sql(&dump).expect("dump replays");
        assert_eq!(original.table_names(), restored.table_names());
        for name in original.table_names() {
            let a = original.table(name).unwrap();
            let b = restored.table(name).unwrap();
            assert_eq!(a.schema(), b.schema(), "{name} schema");
            assert_eq!(a.to_rows(), b.to_rows(), "{name} rows");
        }
        restored.check_integrity().unwrap();
    }

    #[test]
    fn dump_orders_tables_by_dependency() {
        let db = generate(&GenConfig::small());
        let dump = dump_sql(&db);
        let pos = |t: &str| dump.find(&format!("CREATE TABLE {t} ")).unwrap();
        assert!(pos("Institutions") < pos("Authors"));
        assert!(pos("Conferences") < pos("Papers"));
        assert!(pos("Papers") < pos("Paper_Authors"));
        assert!(pos("Authors") < pos("Paper_Authors"));
    }

    #[test]
    fn dump_escapes_quotes() {
        use etable_relational::schema::{Column, TableSchema};
        use etable_relational::value::DataType;
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "T",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("s", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.insert("T", vec![1.into(), "it's".into()]).unwrap();
        let dump = dump_sql(&db);
        assert!(dump.contains("'it''s'"), "{dump}");
        let restored = load_sql(&dump).unwrap();
        assert_eq!(
            restored.table("T").unwrap().row(0).unwrap()[1],
            Value::text("it's")
        );
    }

    #[test]
    fn translated_dump_equals_translated_original() {
        // The TGM built from a restored dump is identical in shape.
        use etable_tgm::{translate, TranslateOptions};
        let original = generate(&GenConfig::small());
        let restored = load_sql(&dump_sql(&original)).unwrap();
        let t1 = translate(&original, &TranslateOptions::default()).unwrap();
        let t2 = translate(&restored, &TranslateOptions::default()).unwrap();
        assert_eq!(t1.schema.node_type_count(), t2.schema.node_type_count());
        assert_eq!(t1.instances.node_count(), t2.instances.node_count());
        assert_eq!(t1.instances.edge_count(), t2.instances.edge_count());
    }
}
