//! Seeded synthetic generator for the academic database.
//!
//! Reproduces the *statistical shape* of the paper's DBLP/ACM crawl: ~38k
//! papers at 19 conferences since 2000, skewed authorship and citation
//! distributions, and multi-keyword papers. Entities the Table 2 tasks and
//! the Figure 1/6/7 example queries refer to are planted deterministically
//! so every experiment has a non-trivial answer (see DESIGN.md,
//! "Substitutions").

use crate::names;
use crate::schema::academic_schema;
use etable_relational::database::Database;
use etable_relational::table::Row;
use etable_relational::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce identical databases.
    pub seed: u64,
    /// Number of papers.
    pub papers: usize,
    /// Number of authors.
    pub authors: usize,
    /// Publication year range (inclusive).
    pub years: (i64, i64),
    /// Mean authors per paper (skewed; clamped to `1..=12`).
    pub mean_authors: f64,
    /// Mean keywords per paper (skewed; clamped to `1..=10`).
    pub mean_keywords: f64,
    /// Mean references per paper (skewed; clamped to `0..=30`).
    pub mean_refs: f64,
}

impl GenConfig {
    /// A small configuration for unit tests (hundreds of rows).
    pub fn small() -> Self {
        GenConfig {
            seed: 42,
            papers: 300,
            authors: 220,
            years: (2000, 2015),
            mean_authors: 2.8,
            mean_keywords: 4.0,
            mean_refs: 5.0,
        }
    }

    /// The default medium configuration (a few thousand rows, fast enough
    /// for integration tests and examples).
    pub fn medium() -> Self {
        GenConfig {
            papers: 3000,
            authors: 2000,
            ..Self::small()
        }
    }

    /// The paper-scale configuration: ~38,000 papers (§7.1).
    pub fn paper_scale() -> Self {
        GenConfig {
            papers: 38_000,
            authors: 24_000,
            ..Self::small()
        }
    }

    /// A copy with a different number of papers (authors scale along),
    /// used by benchmark sweeps.
    pub fn with_papers(&self, papers: usize) -> Self {
        GenConfig {
            papers,
            authors: (papers * 2 / 3).max(30),
            ..self.clone()
        }
    }

    /// Like [`GenConfig::with_papers`], but validates the scale up front so
    /// user-facing entry points (`ETABLE_SCALE`) can report a friendly error
    /// instead of hitting the generator's internal assertion.
    pub fn try_with_papers(&self, papers: usize) -> std::result::Result<Self, String> {
        if papers < MIN_PAPERS {
            return Err(format!(
                "scale {papers} is too small: the generator needs at least {MIN_PAPERS} papers \
                 to plant the Table 2 task entities (try ETABLE_SCALE={MIN_PAPERS} or larger)"
            ));
        }
        Ok(self.with_papers(papers))
    }

    /// Applies the `ETABLE_SCALE` environment variable: returns `self`
    /// unchanged when it is unset, the resized configuration when it names
    /// a valid paper count, and a friendly error message otherwise. The
    /// single source of the scale-validation contract shared by every
    /// user-facing entry point (CLI, figure binaries).
    pub fn with_scale_from_env(&self) -> std::result::Result<Self, String> {
        let Ok(scale) = std::env::var("ETABLE_SCALE") else {
            return Ok(self.clone());
        };
        let n = scale
            .parse::<usize>()
            .map_err(|_| format!("ETABLE_SCALE must be a number of papers, got `{scale}`"))?;
        self.try_with_papers(n)
    }
}

/// The smallest paper count the generator supports: below this the planted
/// Table 2 entities (two target papers, the Madden/CMU/SNU clusters) would
/// not fit.
pub const MIN_PAPERS: usize = 20;

/// Revision stamp of the generator's *output*, folded into the snapshot
/// cache key ([`crate::snapshot::snapshot_key`]). Bump this whenever a
/// change to this module (or [`crate::names`]/[`crate::schema`]) alters
/// the database produced for an identical [`GenConfig`], so stale cached
/// corpora can never be served.
pub const GENERATOR_REV: u32 = 1;

impl Default for GenConfig {
    fn default() -> Self {
        Self::medium()
    }
}

/// Draws a skewed (exponential) count with the given mean, clamped.
fn skewed_count(rng: &mut StdRng, mean: f64, min: usize, max: usize) -> usize {
    let u: f64 = rng.gen_range(0.0_f64..1.0).max(1e-12);
    let x = (-mean * u.ln()).round() as usize;
    x.clamp(min, max)
}

/// Samples an index with Zipf-like weights `1/(i+1)` over `n` items.
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    // Inverse-CDF on the harmonic distribution, approximated by
    // exp-distributed rank.
    let u: f64 = rng.gen_range(0.0_f64..1.0);
    let h = ((n as f64).ln_1p()).exp(); // ~ n+1
    let r = (h.powf(u) - 1.0) as usize;
    r.min(n - 1)
}

/// IDs of the planted entities (stable across seeds).
pub mod planted {
    /// Paper id of "Making database systems usable" (task 1 target).
    pub const USABLE_PAPER: i64 = 1;
    /// Paper id of "Collaborative filtering with temporal dynamics" (task 2).
    pub const CF_PAPER: i64 = 2;
    /// Author id of Samuel Madden (task 3).
    pub const MADDEN: i64 = 1;
    /// Conference id of SIGMOD (pool position 1).
    pub const SIGMOD: i64 = 1;
    /// Conference id of KDD (pool position 7).
    pub const KDD: i64 = 7;
    /// Institution id of Carnegie Mellon University (task 4).
    pub const CMU: i64 = 1;
    /// Institution id of Seoul National University (task 5 winner).
    pub const SNU: i64 = 11;
}

/// Generates the synthetic academic database.
pub fn generate(cfg: &GenConfig) -> Database {
    assert!(
        cfg.papers >= MIN_PAPERS,
        "need at least {MIN_PAPERS} papers (see GenConfig::try_with_papers)"
    );
    assert!(cfg.authors >= 20, "need at least 20 authors");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = academic_schema();

    // --- Conferences ------------------------------------------------------
    db.append_rows(
        "Conferences",
        names::CONFERENCES
            .iter()
            .enumerate()
            .map(|(i, (acr, title))| vec![(i as i64 + 1).into(), (*acr).into(), (*title).into()]),
    )
    .expect("conference rows");
    let n_conf = names::CONFERENCES.len() as i64;

    // --- Institutions -----------------------------------------------------
    db.append_rows(
        "Institutions",
        names::INSTITUTIONS
            .iter()
            .enumerate()
            .map(|(i, (name, country))| {
                vec![(i as i64 + 1).into(), (*name).into(), (*country).into()]
            }),
    )
    .expect("institution rows");
    let n_inst = names::INSTITUTIONS.len() as i64;

    // --- Authors ----------------------------------------------------------
    // Author 1 is Samuel Madden (planted, at MIT = institution 2).
    let mut used_names: HashSet<String> = HashSet::new();
    used_names.insert("Samuel Madden".into());
    let mut author_rows: Vec<Row> = Vec::with_capacity(cfg.authors);
    author_rows.push(vec![
        planted::MADDEN.into(),
        "Samuel Madden".into(),
        2.into(),
    ]);
    // Authors 2..=6 are planted at CMU so task 4 has answers.
    for id in 2..=6i64 {
        let name = fresh_name(&mut rng, &mut used_names);
        author_rows.push(vec![id.into(), name.into(), planted::CMU.into()]);
    }
    // A cluster of authors is planted at Seoul National University so
    // task 5 ("which South Korean institution has the most authors?")
    // has a unique winner on every seed. The Zipf tail is nearly flat
    // across the five South Korean schools (ranks 11-15), so the winner
    // must be structural, not left to the draws — and the margin must
    // scale with the population: each school's Zipf count grows linearly
    // in `authors` with binomial noise, so a fixed plant would drown at
    // medium/paper scale. 2% of authors (min 8) stays well clear of the
    // noise at every configuration.
    let snu_cluster = (cfg.authors / 50).max(8) as i64;
    for id in 7..7 + snu_cluster {
        let name = fresh_name(&mut rng, &mut used_names);
        author_rows.push(vec![id.into(), name.into(), planted::SNU.into()]);
    }
    for id in (7 + snu_cluster)..=cfg.authors as i64 {
        let name = fresh_name(&mut rng, &mut used_names);
        // ~4% of authors have no recorded institution (nullable FK).
        let inst: Value = if rng.gen_ratio(1, 25) {
            Value::Null
        } else {
            // Zipf over institutions: big schools dominate.
            (zipf(&mut rng, n_inst as usize) as i64 + 1).into()
        };
        author_rows.push(vec![id.into(), name.into(), inst]);
    }
    db.append_rows("Authors", author_rows).expect("author rows");

    // --- Papers -----------------------------------------------------------
    let mut used_titles: HashSet<String> = HashSet::new();
    let mut paper_rows: Vec<Row> = Vec::with_capacity(cfg.papers);
    let mut paper_year: Vec<i64> = Vec::with_capacity(cfg.papers);
    let mut paper_conf: Vec<i64> = Vec::with_capacity(cfg.papers);
    for id in 1..=cfg.papers as i64 {
        let (title, conf, year) = if id == planted::USABLE_PAPER {
            (
                "Making database systems usable".to_string(),
                planted::SIGMOD,
                2007,
            )
        } else if id == planted::CF_PAPER {
            (
                "Collaborative filtering with temporal dynamics".to_string(),
                planted::KDD,
                2009,
            )
        } else {
            let title = fresh_title(&mut rng, &mut used_titles);
            let conf = zipf(&mut rng, n_conf as usize) as i64 + 1;
            let year = rng.gen_range(cfg.years.0..=cfg.years.1);
            (title, conf, year)
        };
        used_titles.insert(title.clone());
        let page_start = rng.gen_range(1..1800i64);
        let page_len = rng.gen_range(2..14i64);
        paper_rows.push(vec![
            id.into(),
            conf.into(),
            title.into(),
            year.into(),
            page_start.into(),
            (page_start + page_len).into(),
        ]);
        paper_year.push(year);
        paper_conf.push(conf);
    }
    db.append_rows("Papers", paper_rows).expect("paper rows");

    // --- Paper_Authors (preferential attachment over authors) -------------
    // Tickets: an author's chance of being picked grows with each paper,
    // yielding the power-law paper counts real bibliographies show.
    let mut tickets: Vec<i64> = (1..=cfg.authors as i64).collect();
    let mut pa_rows: Vec<(i64, i64, i64)> = Vec::new();
    for pid in 1..=cfg.papers as i64 {
        let mut count = skewed_count(&mut rng, cfg.mean_authors, 1, 12);
        if pid == planted::USABLE_PAPER {
            count = 7; // the paper's running example shows 7 authors
        }
        let mut chosen: Vec<i64> = Vec::with_capacity(count);
        let mut guard = 0;
        while chosen.len() < count && guard < 200 {
            let a = tickets[rng.gen_range(0..tickets.len())];
            if !chosen.contains(&a) {
                chosen.push(a);
            }
            guard += 1;
        }
        for (ord, a) in chosen.iter().enumerate() {
            pa_rows.push((pid, *a, ord as i64 + 1));
            tickets.push(*a);
        }
    }
    // Planted guarantees:
    // * Samuel Madden authored at least three papers from 2013 on (task 3)
    //   and one earlier paper (so the year filter is non-trivial).
    let mut madden_recent = 0;
    let mut madden_old = 0;
    for (pid, a, _) in &pa_rows {
        if *a == planted::MADDEN {
            if paper_year[(*pid - 1) as usize] >= 2013 {
                madden_recent += 1;
            } else {
                madden_old += 1;
            }
        }
    }
    let add_author = |pa_rows: &mut Vec<(i64, i64, i64)>, pid: i64, a: i64| {
        if !pa_rows.iter().any(|(p, x, _)| *p == pid && *x == a) {
            let ord = pa_rows.iter().filter(|(p, _, _)| *p == pid).count() as i64 + 1;
            pa_rows.push((pid, a, ord));
        }
    };
    {
        let recent: Vec<i64> = (1..=cfg.papers as i64)
            .filter(|&p| paper_year[(p - 1) as usize] >= 2013)
            .take(6)
            .collect();
        let old: Vec<i64> = (1..=cfg.papers as i64)
            .filter(|&p| paper_year[(p - 1) as usize] < 2013)
            .take(3)
            .collect();
        for &p in recent.iter().take((3 - madden_recent.min(3)) as usize + 1) {
            add_author(&mut pa_rows, p, planted::MADDEN);
        }
        for &p in old.iter().take((1 - madden_old.min(1)) as usize) {
            add_author(&mut pa_rows, p, planted::MADDEN);
        }
        // * CMU researchers (authors 2..=6) published at KDD (task 4).
        let kdd_papers: Vec<i64> = (1..=cfg.papers as i64)
            .filter(|&p| paper_conf[(p - 1) as usize] == planted::KDD)
            .take(4)
            .collect();
        for (i, &p) in kdd_papers.iter().enumerate() {
            add_author(&mut pa_rows, p, 2 + (i as i64 % 5));
        }
    }
    pa_rows.sort();
    pa_rows.dedup_by_key(|(p, a, _)| (*p, *a));
    db.append_rows(
        "Paper_Authors",
        pa_rows
            .iter()
            .map(|(pid, a, ord)| vec![(*pid).into(), (*a).into(), (*ord).into()]),
    )
    .expect("paper-author rows");

    // --- Paper_Keywords ----------------------------------------------------
    let mut kw_rows: Vec<Row> = Vec::new();
    for pid in 1..=cfg.papers as i64 {
        let mut kws: Vec<&str> = Vec::new();
        if pid == planted::USABLE_PAPER {
            kws = vec![
                "user interfaces",
                "human factors",
                "usability",
                "design",
                "databases",
                "sql",
            ];
        } else if pid == planted::CF_PAPER {
            kws = vec![
                "recommendation",
                "user preferences",
                "machine learning",
                "clustering",
            ];
        } else {
            let count = skewed_count(&mut rng, cfg.mean_keywords, 1, 10);
            let mut guard = 0;
            while kws.len() < count && guard < 100 {
                let k = names::KEYWORDS[zipf(&mut rng, names::KEYWORDS.len())];
                if !kws.contains(&k) {
                    kws.push(k);
                }
                guard += 1;
            }
        }
        for k in kws {
            kw_rows.push(vec![pid.into(), k.into()]);
        }
    }
    db.append_rows("Paper_Keywords", kw_rows)
        .expect("keyword rows");

    // --- Paper_References (preferential attachment over earlier papers) ---
    let mut cite_tickets: Vec<i64> = Vec::new();
    let mut ref_rows: Vec<Row> = Vec::new();
    for pid in 2..=cfg.papers as i64 {
        cite_tickets.push(pid - 1);
        let count = skewed_count(&mut rng, cfg.mean_refs, 0, 30);
        let mut refs: Vec<i64> = Vec::new();
        let mut guard = 0;
        while refs.len() < count && guard < 200 {
            let r = cite_tickets[rng.gen_range(0..cite_tickets.len())];
            if r != pid && !refs.contains(&r) {
                refs.push(r);
            }
            guard += 1;
        }
        for r in &refs {
            ref_rows.push(vec![pid.into(), (*r).into()]);
            cite_tickets.push(*r);
        }
    }
    db.append_rows("Paper_References", ref_rows)
        .expect("reference rows");

    db
}

fn fresh_name(rng: &mut StdRng, used: &mut HashSet<String>) -> String {
    loop {
        let first = names::FIRST_NAMES[rng.gen_range(0..names::FIRST_NAMES.len())];
        let last = names::LAST_NAMES[rng.gen_range(0..names::LAST_NAMES.len())];
        let mut name = format!("{first} {last}");
        let mut suffix = 2;
        while used.contains(&name) {
            name = format!("{first} {last} {}", roman(suffix));
            suffix += 1;
            if suffix > 30 {
                break;
            }
        }
        if used.insert(name.clone()) {
            return name;
        }
    }
}

fn fresh_title(rng: &mut StdRng, used: &mut HashSet<String>) -> String {
    loop {
        let head = names::TITLE_HEADS[rng.gen_range(0..names::TITLE_HEADS.len())];
        let subj = names::TITLE_SUBJECTS[rng.gen_range(0..names::TITLE_SUBJECTS.len())];
        let tail = names::TITLE_TAILS[rng.gen_range(0..names::TITLE_TAILS.len())];
        let mut title = format!("{head} {subj} {tail}");
        let mut n = 2;
        while used.contains(&title) {
            title = format!("{head} {subj} {tail}, part {n}");
            n += 1;
        }
        if used.insert(title.clone()) {
            return title;
        }
    }
}

fn roman(mut n: usize) -> String {
    let table = [(10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")];
    let mut out = String::new();
    for (v, s) in table {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etable_relational::sql::execute;

    fn small_db() -> Database {
        generate(&GenConfig::small())
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = generate(&GenConfig::small());
        let b = generate(&GenConfig::small());
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table("Papers").unwrap();
        let tb = b.table("Papers").unwrap();
        assert_eq!(ta.to_rows(), tb.to_rows());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::small());
        let b = generate(&GenConfig {
            seed: 43,
            ..GenConfig::small()
        });
        assert_ne!(
            a.table("Papers").unwrap().to_rows(),
            b.table("Papers").unwrap().to_rows()
        );
    }

    #[test]
    fn referential_integrity_holds() {
        small_db().check_integrity().unwrap();
    }

    #[test]
    fn row_counts_match_config() {
        let db = small_db();
        assert_eq!(db.table("Papers").unwrap().len(), 300);
        assert_eq!(db.table("Authors").unwrap().len(), 220);
        assert_eq!(db.table("Conferences").unwrap().len(), 19);
    }

    #[test]
    fn task1_answer_planted() {
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT year FROM Papers WHERE title = 'Making database systems usable'",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2007));
    }

    #[test]
    fn task2_answer_planted() {
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT pk.keyword FROM Papers p, Paper_Keywords pk \
             WHERE pk.paper_id = p.id AND p.title = 'Collaborative filtering with temporal dynamics'",
        )
        .unwrap();
        assert!(r.len() >= 3);
    }

    #[test]
    fn task3_answer_nonempty() {
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT p.title FROM Papers p, Paper_Authors pa, Authors a \
             WHERE p.id = pa.paper_id AND pa.author_id = a.id \
             AND a.name = 'Samuel Madden' AND p.year >= 2013",
        )
        .unwrap();
        assert!(r.len() >= 3, "only {} Madden papers >= 2013", r.len());
        // And he has older papers too, so the filter matters.
        let all = execute(
            &mut db,
            "SELECT p.title FROM Papers p, Paper_Authors pa, Authors a \
             WHERE p.id = pa.paper_id AND pa.author_id = a.id AND a.name = 'Samuel Madden'",
        )
        .unwrap();
        assert!(all.len() > r.len());
    }

    #[test]
    fn task4_answer_nonempty() {
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT p.title FROM Papers p, Paper_Authors pa, Authors a, Institutions i, Conferences c \
             WHERE p.id = pa.paper_id AND pa.author_id = a.id AND a.institution_id = i.id \
             AND p.conference_id = c.id AND i.name = 'Carnegie Mellon University' \
             AND c.acronym = 'KDD'",
        )
        .unwrap();
        assert!(!r.is_empty());
    }

    #[test]
    fn task5_answer_well_defined() {
        // The planted SNU cluster must make the winner unique AND be the
        // winner itself, at every scale the tests exercise — a unique
        // winner keeps the task answerable, and pinning *which* school
        // wins guards the `planted::SNU` invariant the cluster pays for.
        for cfg in [GenConfig::small(), GenConfig::medium()] {
            let mut db = generate(&cfg);
            let r = execute(
                &mut db,
                "SELECT i.name, COUNT(*) AS n FROM Institutions i, Authors a \
                 WHERE a.institution_id = i.id AND i.country = 'South Korea' \
                 GROUP BY i.name ORDER BY n DESC",
            )
            .unwrap();
            assert!(!r.is_empty());
            assert_eq!(
                r.rows[0][0].to_string(),
                "Seoul National University",
                "planted cluster must win at {} authors",
                cfg.authors
            );
            if r.len() >= 2 {
                assert_ne!(
                    r.rows[0][1], r.rows[1][1],
                    "task 5 has a tie at {} authors",
                    cfg.authors
                );
            }
        }
    }

    #[test]
    fn task6_answer_nonempty() {
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT a.name, COUNT(*) AS n FROM Papers p, Paper_Authors pa, Authors a, Conferences c \
             WHERE p.id = pa.paper_id AND pa.author_id = a.id AND p.conference_id = c.id \
             AND c.acronym = 'SIGMOD' GROUP BY a.name ORDER BY n DESC, a.name LIMIT 3",
        )
        .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn authorship_distribution_is_skewed() {
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT pa.author_id, COUNT(*) AS n FROM Paper_Authors pa \
             GROUP BY pa.author_id ORDER BY n DESC",
        )
        .unwrap();
        let top = r.rows[0][1].as_int().unwrap();
        let median = r.rows[r.len() / 2][1].as_int().unwrap();
        assert!(
            top >= median * 3,
            "expected skew: top {top} vs median {median}"
        );
    }

    #[test]
    fn figure1_workload_nonempty() {
        // SIGMOD papers with a keyword containing 'user' exist.
        let mut db = small_db();
        let r = execute(
            &mut db,
            "SELECT DISTINCT p.id FROM Papers p, Paper_Keywords pk, Conferences c \
             WHERE pk.paper_id = p.id AND p.conference_id = c.id \
             AND pk.keyword LIKE '%user%' AND c.acronym = 'SIGMOD'",
        )
        .unwrap();
        assert!(r.len() >= 2);
    }

    #[test]
    fn scaling_config_scales() {
        let cfg = GenConfig::small().with_papers(600);
        let db = generate(&cfg);
        assert_eq!(db.table("Papers").unwrap().len(), 600);
        assert_eq!(db.table("Authors").unwrap().len(), 400);
    }

    #[test]
    fn tiny_scale_is_a_friendly_error() {
        let err = GenConfig::medium().try_with_papers(5).unwrap_err();
        assert!(err.contains("at least 20 papers"), "{err}");
        assert!(GenConfig::medium().try_with_papers(MIN_PAPERS).is_ok());
    }
}
