//! The six user-study tasks (paper Table 2), with ground-truth SQL.
//!
//! The paper used two matched task sets differing only in parameter values;
//! both sets are provided. Categories: finding attribute values (1–2),
//! filtering (3–4), aggregation (5–6).

use etable_relational::database::Database;
use etable_relational::sql::execute;
use std::collections::BTreeSet;

/// Task category (Table 2's middle column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskCategory {
    /// Retrieve attribute values (tasks 1–2).
    Attribute,
    /// Filter entities (tasks 3–4).
    Filter,
    /// Perform aggregation (tasks 5–6).
    Aggregate,
}

impl std::fmt::Display for TaskCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskCategory::Attribute => write!(f, "Attribute"),
            TaskCategory::Filter => write!(f, "Filter"),
            TaskCategory::Aggregate => write!(f, "Aggregate"),
        }
    }
}

/// One study task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task number (1–6).
    pub number: usize,
    /// Natural-language statement, as shown to participants.
    pub description: String,
    /// Category.
    pub category: TaskCategory,
    /// Number of relations a relational formulation must touch (Table 2's
    /// `#Relations` column).
    pub relations: usize,
    /// Ground-truth SQL over the Figure 3 schema.
    pub sql: String,
}

/// Which of the two matched task sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSet {
    /// The set printed in Table 2.
    A,
    /// The matched set with different parameters.
    B,
}

/// The parameter values that differ between the two matched task sets.
#[derive(Debug, Clone)]
pub struct TaskParams {
    /// Target paper title for task 1.
    pub title1: &'static str,
    /// Target paper title for task 2.
    pub title2: &'static str,
    /// Target author for task 3.
    pub author: &'static str,
    /// Year threshold for task 3.
    pub year: i64,
    /// Target institution for task 4.
    pub institution: &'static str,
    /// Conference for the aggregation task 6.
    pub conf_agg: &'static str,
    /// Conference for the filter task 4.
    pub conf_filter: &'static str,
}

/// The parameters of a task set.
pub fn params(set: TaskSet) -> TaskParams {
    match set {
        TaskSet::A => TaskParams {
            title1: "Making database systems usable",
            title2: "Collaborative filtering with temporal dynamics",
            author: "Samuel Madden",
            year: 2013,
            institution: "Carnegie Mellon University",
            conf_agg: "SIGMOD",
            conf_filter: "KDD",
        },
        TaskSet::B => TaskParams {
            title1: "Collaborative filtering with temporal dynamics",
            title2: "Making database systems usable",
            author: "Samuel Madden",
            year: 2010,
            institution: "Carnegie Mellon University",
            conf_agg: "KDD",
            conf_filter: "KDD",
        },
    }
}

/// Builds a task set (Table 2 for [`TaskSet::A`]; the matched variant for
/// [`TaskSet::B`]).
pub fn task_set(set: TaskSet) -> Vec<Task> {
    let TaskParams {
        title1: t1,
        title2: t2,
        author,
        year,
        institution: inst,
        conf_agg,
        conf_filter,
    } = params(set);
    vec![
        Task {
            number: 1,
            description: format!("Find the year that the paper titled '{t1}' was published in."),
            category: TaskCategory::Attribute,
            relations: 1,
            sql: format!("SELECT year FROM Papers WHERE title = '{t1}'"),
        },
        Task {
            number: 2,
            description: format!("Find all the keywords of the paper titled '{t2}'."),
            category: TaskCategory::Attribute,
            relations: 2,
            sql: format!(
                "SELECT pk.keyword FROM Papers p, Paper_Keywords pk \
                 WHERE pk.paper_id = p.id AND p.title = '{t2}' ORDER BY pk.keyword"
            ),
        },
        Task {
            number: 3,
            description: format!(
                "Find all the papers that were written by '{author}' and published in {year} or after."
            ),
            category: TaskCategory::Filter,
            relations: 3,
            sql: format!(
                "SELECT p.title FROM Papers p, Paper_Authors pa, Authors a \
                 WHERE p.id = pa.paper_id AND pa.author_id = a.id \
                 AND a.name = '{author}' AND p.year >= {year} ORDER BY p.title"
            ),
        },
        Task {
            number: 4,
            description: format!(
                "Find all the papers written by researchers at '{inst}' and published at the {conf_filter} conference."
            ),
            category: TaskCategory::Filter,
            relations: 5,
            sql: format!(
                "SELECT DISTINCT p.title FROM Papers p, Paper_Authors pa, Authors a, \
                 Institutions i, Conferences c \
                 WHERE p.id = pa.paper_id AND pa.author_id = a.id \
                 AND a.institution_id = i.id AND p.conference_id = c.id \
                 AND i.name = '{inst}' AND c.acronym = '{conf_filter}' ORDER BY p.title"
            ),
        },
        Task {
            number: 5,
            description: "Which institution in South Korea has the largest number of researchers?"
                .to_string(),
            category: TaskCategory::Aggregate,
            relations: 2,
            sql: "SELECT i.name FROM Institutions i, Authors a \
                  WHERE a.institution_id = i.id AND i.country = 'South Korea' \
                  GROUP BY i.name ORDER BY COUNT(*) DESC, i.name LIMIT 1"
                .to_string(),
        },
        Task {
            number: 6,
            description: format!(
                "Find the top 3 researchers who have published the most papers in the {conf_agg} conference."
            ),
            category: TaskCategory::Aggregate,
            relations: 4,
            sql: format!(
                "SELECT a.name FROM Papers p, Paper_Authors pa, Authors a, Conferences c \
                 WHERE p.id = pa.paper_id AND pa.author_id = a.id AND p.conference_id = c.id \
                 AND c.acronym = '{conf_agg}' GROUP BY a.name \
                 ORDER BY COUNT(*) DESC, a.name LIMIT 3"
            ),
        },
    ]
}

/// Computes a task's ground-truth answer as a set of strings (first output
/// column of its SQL).
pub fn ground_truth(db: &Database, task: &Task) -> BTreeSet<String> {
    let mut db = db.clone();
    let rel = execute(&mut db, &task.sql).expect("task SQL is valid");
    rel.rows.iter().map(|r| r[0].to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};

    #[test]
    fn table2_shape() {
        let tasks = task_set(TaskSet::A);
        assert_eq!(tasks.len(), 6);
        assert_eq!(
            tasks.iter().map(|t| t.relations).collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 2, 4]
        );
        assert_eq!(tasks[0].category, TaskCategory::Attribute);
        assert_eq!(tasks[3].category, TaskCategory::Filter);
        assert_eq!(tasks[5].category, TaskCategory::Aggregate);
    }

    #[test]
    fn all_tasks_have_nonempty_answers_in_both_sets() {
        let db = generate(&GenConfig::small());
        for set in [TaskSet::A, TaskSet::B] {
            for task in task_set(set) {
                let answer = ground_truth(&db, &task);
                assert!(
                    !answer.is_empty(),
                    "task {} of {set:?} has an empty answer",
                    task.number
                );
            }
        }
    }

    #[test]
    fn task_sets_are_matched_but_different() {
        let a = task_set(TaskSet::A);
        let b = task_set(TaskSet::B);
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.category, tb.category);
        }
        assert_ne!(a[0].description, b[0].description);
    }
}
