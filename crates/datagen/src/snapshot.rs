//! Content-addressed snapshot cache for generated databases.
//!
//! Generation is deterministic in `(GenConfig, rand stream, generator
//! logic)`, and the binary table format ([`etable_relational::storage`])
//! is deterministic in the database — so a generated corpus can be saved
//! once under a key derived from those inputs and every later cold start
//! (CLI, benches, tests) can open the snapshot instead of re-running the
//! generator.
//!
//! The key hashes **every** [`GenConfig`] field, the on-disk
//! [`FORMAT_VERSION`], [`GENERATOR_REV`], and — the part that cannot be
//! read off any API — the identity of the rand shim, probed from its
//! actual output stream ([`rng_stream_id`]). Swapping SplitMix64 for a
//! future ChaCha12-backed `StdRng` changes the probe, so a stale snapshot
//! can never be served for a generator that would now produce different
//! data.
//!
//! Cache root resolution: `ETABLE_SNAPSHOT=off` disables the cache
//! entirely; `ETABLE_SNAPSHOT_DIR` names the root; otherwise snapshots
//! live under the system temp directory (`etable-snapshots/`). Every hit
//! or miss prints one line to stderr so harnesses can assert cache
//! behavior. Publication is atomic (write to a process-private directory,
//! then `rename`), so concurrent cold starts race safely; a corrupt
//! snapshot is removed and regenerated, never trusted.

use crate::generator::{generate, GenConfig, GENERATOR_REV};
use etable_relational::database::Database;
use etable_relational::storage::{FORMAT_VERSION, MANIFEST_FILE};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

/// Fingerprints the rand shim by hashing the first words of a
/// fixed-seeded stream. Two builds agree on this value iff their
/// `StdRng` produces the same stream — the property snapshot reuse
/// actually depends on — so the key survives a shim swap (SplitMix64 to
/// ChaCha12, see `crates/compat/README.md`) without either generator
/// needing to declare an identity string.
pub fn rng_stream_id() -> u64 {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE_F00D_D1CE);
    let mut h = FNV_OFFSET;
    for _ in 0..4 {
        h = fnv1a_u64(h, rng.next_u64());
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content-address of `cfg`'s generated corpus: a directory name
/// embedding the human-legible scale (`p<papers>-s<seed>-`) and a hash of
/// every generation input (all config fields, format version, generator
/// revision, rand-shim stream identity).
pub fn snapshot_key(cfg: &GenConfig) -> String {
    let mut h = FNV_OFFSET;
    for v in [
        cfg.seed,
        cfg.papers as u64,
        cfg.authors as u64,
        cfg.years.0 as u64,
        cfg.years.1 as u64,
        cfg.mean_authors.to_bits(),
        cfg.mean_keywords.to_bits(),
        cfg.mean_refs.to_bits(),
        FORMAT_VERSION as u64,
        GENERATOR_REV as u64,
        rng_stream_id(),
    ] {
        h = fnv1a_u64(h, v);
    }
    format!("p{}-s{}-{h:016x}", cfg.papers, cfg.seed)
}

/// The cache root, or `None` when caching is disabled
/// (`ETABLE_SNAPSHOT=off`/`0`).
fn snapshot_root() -> Option<PathBuf> {
    if let Ok(v) = std::env::var("ETABLE_SNAPSHOT") {
        if v == "off" || v == "0" {
            return None;
        }
    }
    if let Some(dir) = std::env::var_os("ETABLE_SNAPSHOT_DIR") {
        return Some(PathBuf::from(dir));
    }
    Some(std::env::temp_dir().join("etable-snapshots"))
}

/// Like [`generate`], but backed by the snapshot cache: a prior save of
/// the same key is opened (column data pages in lazily) instead of
/// re-running the generator; a miss generates, publishes the snapshot
/// atomically, and returns the fresh database. Cache failures are never
/// fatal — worst case this degrades to plain generation.
pub fn load_or_generate(cfg: &GenConfig) -> Database {
    match snapshot_root() {
        Some(root) => load_or_generate_in(cfg, &root),
        None => generate(cfg),
    }
}

/// Best-effort reclamation of orphaned `.tmp-*` publication directories:
/// a crash between `save` and `rename` leaves a `.tmp-<key>-<pid>`
/// directory that no key ever matches, and nothing else would ever delete
/// it. A tmp dir is stale — and removed — when its owning process is dead
/// (the pid parsed from the name no longer exists under `/proc`) or, where
/// liveness cannot be probed, when it has not been touched for an hour
/// (no publication takes anywhere near that long). Live publications from
/// concurrent processes are never touched; neither is anything that does
/// not carry the `.tmp-` prefix. All failures are swallowed: sweeping is
/// an opportunistic cleanup, never a correctness dependency.
fn sweep_stale_tmp_dirs(root: &Path) {
    const STALE_AFTER: std::time::Duration = std::time::Duration::from_secs(3600);
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(".tmp-") {
            continue;
        }
        let stale = match name.rsplit('-').next().and_then(|p| p.parse::<u32>().ok()) {
            Some(pid) if pid == std::process::id() => false,
            Some(pid) if Path::new("/proc").is_dir() => {
                !Path::new("/proc").join(pid.to_string()).exists()
            }
            _ => entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > STALE_AFTER),
        };
        if stale {
            let _ = fs::remove_dir_all(entry.path());
            eprintln!(
                "datagen snapshot: reclaimed orphaned {}",
                entry.path().display()
            );
        }
    }
}

/// [`load_or_generate`] against an explicit cache root (tests and
/// harnesses that must not touch the process environment).
pub fn load_or_generate_in(cfg: &GenConfig, root: &Path) -> Database {
    sweep_stale_tmp_dirs(root);
    let key = snapshot_key(cfg);
    let dir = root.join(&key);
    if dir.join(MANIFEST_FILE).exists() {
        match Database::open(&dir) {
            Ok(db) => {
                eprintln!("datagen snapshot hit: {}", dir.display());
                return db;
            }
            Err(e) => {
                // Partial write from a crashed process, or on-disk rot:
                // drop it and fall through to regeneration.
                eprintln!("datagen snapshot corrupt ({e}); regenerating");
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }
    let db = generate(cfg);
    // Publish atomically: save into a process-private directory, then
    // rename. A concurrent cold start either wins the rename or finds the
    // winner's snapshot; a crash leaves only a .tmp- directory that no
    // key ever matches.
    let tmp = root.join(format!(".tmp-{key}-{}", std::process::id()));
    if let Err(e) = db.save(&tmp) {
        eprintln!("datagen snapshot save failed ({e}); continuing uncached");
        let _ = fs::remove_dir_all(&tmp);
        return db;
    }
    match fs::rename(&tmp, &dir) {
        Ok(()) => eprintln!("datagen snapshot miss: saved {}", dir.display()),
        Err(_) if dir.join(MANIFEST_FILE).exists() => {
            // Lost the race; the published snapshot is equivalent.
            let _ = fs::remove_dir_all(&tmp);
            eprintln!("datagen snapshot miss: raced, kept {}", dir.display());
        }
        Err(e) => {
            let _ = fs::remove_dir_all(&tmp);
            eprintln!("datagen snapshot publish failed ({e}); continuing uncached");
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_deterministic_and_scale_sensitive() {
        let small = GenConfig::small();
        assert_eq!(snapshot_key(&small), snapshot_key(&small));
        assert_ne!(snapshot_key(&small), snapshot_key(&GenConfig::medium()));
        let mut reseeded = GenConfig::small();
        reseeded.seed += 1;
        assert_ne!(snapshot_key(&small), snapshot_key(&reseeded));
        assert!(snapshot_key(&small).starts_with("p300-s42-"));
    }

    #[test]
    fn key_depends_on_every_mean_field() {
        let base = GenConfig::small();
        for bump in 0..3 {
            let mut cfg = GenConfig::small();
            match bump {
                0 => cfg.mean_authors += 0.5,
                1 => cfg.mean_keywords += 0.5,
                _ => cfg.mean_refs += 0.5,
            }
            assert_ne!(snapshot_key(&base), snapshot_key(&cfg), "field {bump}");
        }
    }

    #[test]
    fn rng_stream_id_is_stable_within_a_build() {
        assert_eq!(rng_stream_id(), rng_stream_id());
    }

    #[test]
    fn miss_then_hit_round_trips_the_corpus() {
        let root = std::env::temp_dir().join(format!(
            "etable-snapshot-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&root);
        let cfg = GenConfig::small();
        let generated = load_or_generate_in(&cfg, &root);
        let reopened = load_or_generate_in(&cfg, &root);
        assert_eq!(generated.table_names(), reopened.table_names());
        for name in generated.table_names() {
            let a = generated.table(name).unwrap();
            let b = reopened.table(name).unwrap();
            assert_eq!(a.schema(), b.schema(), "{name}");
            assert_eq!(a.to_rows(), b.to_rows(), "{name}");
        }
        let _ = fs::remove_dir_all(&root);
    }

    /// Regression: a crash between `save` and `rename` used to leave its
    /// `.tmp-<key>-<pid>` directory behind forever. The sweep must
    /// reclaim an orphan whose owner is dead, keep a tmp dir owned by a
    /// live process (here: our own pid), and leave the published
    /// snapshot untouched.
    #[test]
    fn orphaned_tmp_dirs_are_reclaimed_without_disturbing_snapshots() {
        let root = std::env::temp_dir().join(format!(
            "etable-snapshot-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&root);
        let cfg = GenConfig::small();
        let generated = load_or_generate_in(&cfg, &root);
        let key = snapshot_key(&cfg);
        // A dead owner: pid u32::MAX is far above any real pid_max.
        let orphan = root.join(format!(".tmp-{key}-{}", u32::MAX));
        fs::create_dir_all(&orphan).unwrap();
        fs::write(orphan.join("t0.etb"), b"partial garbage").unwrap();
        // A live owner (this process) must survive the sweep.
        let live = root.join(format!(".tmp-{key}-{}", std::process::id()));
        fs::create_dir_all(&live).unwrap();
        // Non-tmp entries are never candidates, whatever their name.
        let bystander = root.join("not-a-tmp-dir");
        fs::create_dir_all(&bystander).unwrap();
        let reloaded = load_or_generate_in(&cfg, &root);
        assert!(!orphan.exists(), "dead-pid orphan not reclaimed");
        assert!(live.exists(), "live publication dir must not be touched");
        assert!(bystander.exists(), "non-tmp dir must not be touched");
        assert!(
            root.join(&key).join(MANIFEST_FILE).exists(),
            "published snapshot was disturbed"
        );
        assert_eq!(generated.total_rows(), reloaded.total_rows());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_snapshot_is_dropped_and_regenerated() {
        let root = std::env::temp_dir().join(format!(
            "etable-snapshot-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&root);
        let cfg = GenConfig::small();
        let generated = load_or_generate_in(&cfg, &root);
        let dir = root.join(snapshot_key(&cfg));
        // Truncate one table file; the next load must fall back cleanly.
        let victim = dir.join("t0.etb");
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let recovered = load_or_generate_in(&cfg, &root);
        assert_eq!(generated.total_rows(), recovered.total_rows());
        let _ = fs::remove_dir_all(&root);
    }
}
