//! The relational schema of the academic data set (paper Figure 3):
//! 7 relations, 7 foreign keys.

use etable_relational::database::Database;
use etable_relational::schema::{Column, ForeignKey, TableSchema};
use etable_relational::value::DataType;

/// Creates an empty database with the Figure 3 schema.
///
/// Relations: `Conferences(id, acronym, title)`,
/// `Institutions(id, name, country)`, `Authors(id, name, institution_id)`,
/// `Papers(id, conference_id, title, year, page_start, page_end)`,
/// `Paper_Authors(paper_id, author_id, ord)`,
/// `Paper_Keywords(paper_id, keyword)`,
/// `Paper_References(paper_id, ref_paper_id)`.
pub fn academic_schema() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "Conferences",
            vec![
                Column::new("id", DataType::Int),
                Column::new("acronym", DataType::Text),
                Column::new("title", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .expect("static schema");
    db.create_table(
        TableSchema::new(
            "Institutions",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("country", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .expect("static schema");
    db.create_table(
        TableSchema::new(
            "Authors",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::nullable("institution_id", DataType::Int),
            ],
        )
        .with_primary_key(&["id"])
        .with_foreign_key(ForeignKey::single("institution_id", "Institutions", "id")),
    )
    .expect("static schema");
    db.create_table(
        TableSchema::new(
            "Papers",
            vec![
                Column::new("id", DataType::Int),
                Column::new("conference_id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("year", DataType::Int),
                Column::new("page_start", DataType::Int),
                Column::new("page_end", DataType::Int),
            ],
        )
        .with_primary_key(&["id"])
        .with_foreign_key(ForeignKey::single("conference_id", "Conferences", "id")),
    )
    .expect("static schema");
    db.create_table(
        TableSchema::new(
            "Paper_Authors",
            vec![
                Column::new("paper_id", DataType::Int),
                Column::new("author_id", DataType::Int),
                Column::new("ord", DataType::Int),
            ],
        )
        .with_primary_key(&["paper_id", "author_id"])
        .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id"))
        .with_foreign_key(ForeignKey::single("author_id", "Authors", "id")),
    )
    .expect("static schema");
    db.create_table(
        TableSchema::new(
            "Paper_Keywords",
            vec![
                Column::new("paper_id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ],
        )
        .with_primary_key(&["paper_id", "keyword"])
        .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id")),
    )
    .expect("static schema");
    db.create_table(
        TableSchema::new(
            "Paper_References",
            vec![
                Column::new("paper_id", DataType::Int),
                Column::new("ref_paper_id", DataType::Int),
            ],
        )
        .with_primary_key(&["paper_id", "ref_paper_id"])
        .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id"))
        .with_foreign_key(ForeignKey::single("ref_paper_id", "Papers", "id")),
    )
    .expect("static schema");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use etable_tgm::{classify, RelationCategory};

    #[test]
    fn seven_relations_seven_fks() {
        let db = academic_schema();
        assert_eq!(db.table_names().len(), 7);
        let fk_count: usize = db.tables().map(|t| t.schema().foreign_keys.len()).sum();
        assert_eq!(fk_count, 7);
    }

    #[test]
    fn classification_matches_paper_table1() {
        let db = academic_schema();
        let cats = classify(&db).unwrap();
        assert_eq!(cats["Conferences"], RelationCategory::Entity);
        assert_eq!(cats["Institutions"], RelationCategory::Entity);
        assert_eq!(cats["Authors"], RelationCategory::Entity);
        assert_eq!(cats["Papers"], RelationCategory::Entity);
        assert!(matches!(
            cats["Paper_Authors"],
            RelationCategory::Relationship { .. }
        ));
        assert!(matches!(
            cats["Paper_Keywords"],
            RelationCategory::MultiValuedAttr { .. }
        ));
        assert!(matches!(
            cats["Paper_References"],
            RelationCategory::Relationship { .. }
        ));
    }
}
