//! Vocabulary pools for the synthetic academic data set.
//!
//! The paper's data came from DBLP and the ACM Digital Library; we generate
//! names, titles and keywords from fixed pools so the data set *looks* like
//! the paper's examples (Figure 1/5) while staying fully synthetic and
//! deterministic.

/// The 19 conferences of the paper's data set: databases, data mining, and
/// human-computer interaction venues since 2000 (§7.1).
pub const CONFERENCES: &[(&str, &str)] = &[
    ("SIGMOD", "International Conference on Management of Data"),
    ("VLDB", "International Conference on Very Large Data Bases"),
    ("ICDE", "International Conference on Data Engineering"),
    (
        "EDBT",
        "International Conference on Extending Database Technology",
    ),
    ("PODS", "Symposium on Principles of Database Systems"),
    ("CIDR", "Conference on Innovative Data Systems Research"),
    ("KDD", "Conference on Knowledge Discovery and Data Mining"),
    ("ICDM", "International Conference on Data Mining"),
    ("SDM", "SIAM International Conference on Data Mining"),
    ("WSDM", "Conference on Web Search and Data Mining"),
    ("CIKM", "Conference on Information and Knowledge Management"),
    ("WWW", "The Web Conference"),
    (
        "SIGIR",
        "Conference on Research and Development in Information Retrieval",
    ),
    ("RecSys", "Conference on Recommender Systems"),
    ("CHI", "Conference on Human Factors in Computing Systems"),
    (
        "UIST",
        "Symposium on User Interface Software and Technology",
    ),
    ("CSCW", "Conference on Computer-Supported Cooperative Work"),
    ("IUI", "Conference on Intelligent User Interfaces"),
    ("AVI", "Conference on Advanced Visual Interfaces"),
];

/// Institution name stems combined with country assignments. Includes the
/// planted entities the Table 2 tasks refer to: Carnegie Mellon University
/// (task 4) and several South Korean institutions (task 5).
pub const INSTITUTIONS: &[(&str, &str)] = &[
    ("Carnegie Mellon University", "USA"),
    ("Massachusetts Institute of Technology", "USA"),
    ("University of Michigan", "USA"),
    ("University of Washington", "USA"),
    ("Stanford University", "USA"),
    ("University of California, Berkeley", "USA"),
    ("Georgia Institute of Technology", "USA"),
    ("University of Illinois", "USA"),
    ("University of Wisconsin", "USA"),
    ("Cornell University", "USA"),
    ("Seoul National University", "South Korea"),
    ("KAIST", "South Korea"),
    ("POSTECH", "South Korea"),
    ("Yonsei University", "South Korea"),
    ("Korea University", "South Korea"),
    ("ETH Zurich", "Switzerland"),
    ("EPFL", "Switzerland"),
    ("Technical University of Munich", "Germany"),
    ("Saarland University", "Germany"),
    ("Humboldt University", "Germany"),
    ("University of Oxford", "UK"),
    ("University of Cambridge", "UK"),
    ("University of Edinburgh", "UK"),
    ("Imperial College London", "UK"),
    ("National University of Singapore", "Singapore"),
    ("Nanyang Technological University", "Singapore"),
    ("Tsinghua University", "China"),
    ("Peking University", "China"),
    ("Hong Kong University of Science and Technology", "China"),
    ("University of Tokyo", "Japan"),
    ("Kyoto University", "Japan"),
    ("IIT Bombay", "India"),
    ("IIT Delhi", "India"),
    ("University of Toronto", "Canada"),
    ("University of Waterloo", "Canada"),
    ("University of Melbourne", "Australia"),
    ("Tel Aviv University", "Israel"),
    ("Technion", "Israel"),
    ("INRIA", "France"),
    ("University of Amsterdam", "Netherlands"),
];

/// Given-name pool for author generation.
pub const FIRST_NAMES: &[&str] = &[
    "Samuel", "Alice", "Bob", "Carol", "David", "Erica", "Frank", "Grace", "Henry", "Irene",
    "James", "Karen", "Louis", "Maria", "Nathan", "Olivia", "Peter", "Qing", "Rachel", "Steven",
    "Tina", "Umar", "Vera", "Wei", "Xin", "Yuki", "Zoe", "Minsuk", "Arnab", "Magda", "Jignesh",
    "Surajit", "Divesh", "Jiawei", "Christos", "Hector", "Jennifer", "Michael", "Laura", "Daniel",
    "Sofia", "Pablo", "Elena", "Ivan", "Jun", "Hye", "Sang", "Joon", "Anna", "Tom",
];

/// Family-name pool for author generation.
pub const LAST_NAMES: &[&str] = &[
    "Madden",
    "Smith",
    "Johnson",
    "Lee",
    "Kim",
    "Park",
    "Chen",
    "Wang",
    "Zhang",
    "Liu",
    "Garcia",
    "Martinez",
    "Brown",
    "Davis",
    "Miller",
    "Wilson",
    "Taylor",
    "Anderson",
    "Thomas",
    "Moore",
    "Jackson",
    "Martin",
    "Thompson",
    "White",
    "Lopez",
    "Gonzalez",
    "Harris",
    "Clark",
    "Lewis",
    "Walker",
    "Hall",
    "Young",
    "King",
    "Wright",
    "Scott",
    "Nandi",
    "Jagadish",
    "Halevy",
    "Widom",
    "Stonebraker",
    "DeWitt",
    "Abadi",
    "Kraska",
    "Franklin",
    "Hellerstein",
    "Suciu",
    "Koudas",
    "Srivastava",
    "Ioannidis",
    "Gehrke",
];

/// Title vocabulary: adjective/verb-ish openers.
pub const TITLE_HEADS: &[&str] = &[
    "Efficient",
    "Scalable",
    "Interactive",
    "Adaptive",
    "Incremental",
    "Distributed",
    "Approximate",
    "Robust",
    "Fast",
    "Parallel",
    "Declarative",
    "Automatic",
    "Learned",
    "Probabilistic",
    "Streaming",
    "Online",
    "Visual",
    "Usable",
    "Collaborative",
    "Guided",
];

/// Title vocabulary: subjects.
pub const TITLE_SUBJECTS: &[&str] = &[
    "query processing",
    "data exploration",
    "join optimization",
    "schema matching",
    "entity resolution",
    "crowdsourcing",
    "data cleaning",
    "indexing",
    "query suggestion",
    "keyword search",
    "data integration",
    "provenance tracking",
    "graph analytics",
    "recommendation",
    "clustering",
    "classification",
    "anomaly detection",
    "data visualization",
    "user interfaces",
    "spreadsheet interfaces",
    "natural language querying",
    "sampling",
    "caching",
    "view maintenance",
    "transaction processing",
    "concurrency control",
];

/// Title vocabulary: contexts.
pub const TITLE_TAILS: &[&str] = &[
    "in relational databases",
    "for large-scale systems",
    "over data streams",
    "with human feedback",
    "on modern hardware",
    "in the cloud",
    "for interactive analytics",
    "using machine learning",
    "at scale",
    "for scientific workflows",
    "in social networks",
    "with provable guarantees",
    "for end users",
    "on heterogeneous data",
    "under uncertainty",
];

/// Keyword pool; the substring `user` appears in several entries because the
/// paper's running example filters papers by `keyword LIKE '%user%'`.
pub const KEYWORDS: &[&str] = &[
    "user interfaces",
    "user studies",
    "user preferences",
    "user feedback",
    "usability",
    "design",
    "human factors",
    "algorithms",
    "performance",
    "experimentation",
    "measurement",
    "theory",
    "query processing",
    "query optimization",
    "data exploration",
    "data cleaning",
    "data integration",
    "keyword search",
    "information retrieval",
    "visualization",
    "interactive systems",
    "direct manipulation",
    "spreadsheets",
    "databases",
    "sql",
    "schema design",
    "normalization",
    "join algorithms",
    "indexing",
    "caching",
    "materialized views",
    "provenance",
    "crowdsourcing",
    "machine learning",
    "deep learning",
    "clustering",
    "classification",
    "recommendation",
    "graph mining",
    "social networks",
    "parallel databases",
    "distributed systems",
    "transactions",
    "concurrency",
    "skew",
    "load balancing",
    "sampling",
    "approximation",
    "streams",
    "sensors",
    "privacy",
    "security",
    "reliability",
    "economics",
    "scalability",
    "benchmarking",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_planted_entities_present() {
        assert_eq!(CONFERENCES.len(), 19);
        assert!(INSTITUTIONS
            .iter()
            .any(|(n, _)| *n == "Carnegie Mellon University"));
        assert!(
            INSTITUTIONS
                .iter()
                .filter(|(_, c)| *c == "South Korea")
                .count()
                >= 3
        );
        assert!(FIRST_NAMES.contains(&"Samuel"));
        assert!(LAST_NAMES.contains(&"Madden"));
        assert!(KEYWORDS.iter().filter(|k| k.contains("user")).count() >= 4);
    }

    #[test]
    fn no_duplicate_conference_acronyms() {
        let mut acronyms: Vec<&str> = CONFERENCES.iter().map(|(a, _)| *a).collect();
        acronyms.sort();
        acronyms.dedup();
        assert_eq!(acronyms.len(), CONFERENCES.len());
    }
}
