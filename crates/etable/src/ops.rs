//! The four primitive operators of §5.3: `Initiate`, `Select`, `Add`,
//! `Shift`.
//!
//! Each operator is a pure function from a query pattern to a new query
//! pattern, mirroring the paper's formalization `op(Q) = Q'`. User-level
//! actions ([`crate::actions`]) compose them.
//!
//! ```
//! use etable_core::{ops, pattern::NodeFilter};
//! use etable_core::testutil::academic_tgdb;
//! use etable_relational::expr::CmpOp;
//!
//! let tgdb = academic_tgdb();
//! let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
//! let q = ops::initiate(&tgdb, confs).unwrap();                        // P1
//! let q = ops::select(&tgdb, &q,
//!     NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap();       // P2
//! let (papers_edge, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
//! let q = ops::add(&tgdb, &q, papers_edge).unwrap();                   // P3
//! assert_eq!(q.len(), 2);
//! ```

use crate::pattern::{NodeFilter, PatternEdge, PatternNode, PatternNodeId, QueryPattern};
use crate::{Error, Result};
use etable_tgm::{EdgeTypeId, NodeTypeId, Tgdb};

/// `Initiate(τk)`: a fresh pattern with a single node of type `τk`.
///
/// `τ'a = τk, T' = {τk}, P' = {}, C' = {}`.
pub fn initiate(tgdb: &Tgdb, node_type: NodeTypeId) -> Result<QueryPattern> {
    if node_type.index() >= tgdb.schema.node_type_count() {
        return Err(Error::InvalidNode(format!(
            "node type {node_type} out of range"
        )));
    }
    Ok(QueryPattern {
        nodes: vec![PatternNode {
            node_type,
            filter: NodeFilter::none(),
        }],
        edges: Vec::new(),
        primary: PatternNodeId(0),
    })
}

/// `Select(Ck, Q)`: conjoins `Ck` onto the primary node's condition.
///
/// `τ'a = τa, T' = T, P' = P, C'a = Ca ∧ Ck`. (The paper writes `C'a = Ck`;
/// in the interface successive filters accumulate — see the history panel of
/// Figure 1, step 4 — so we conjoin.)
pub fn select(tgdb: &Tgdb, q: &QueryPattern, filter: NodeFilter) -> Result<QueryPattern> {
    select_on(tgdb, q, q.primary, filter)
}

/// `Select` applied to an arbitrary participating node (used internally by
/// user actions such as `Seeall`, which select a row before pivoting).
pub fn select_on(
    tgdb: &Tgdb,
    q: &QueryPattern,
    node: PatternNodeId,
    filter: NodeFilter,
) -> Result<QueryPattern> {
    if node.0 >= q.nodes.len() {
        return Err(Error::InvalidNode(format!("pattern node {node} missing")));
    }
    // Validate attribute names eagerly so errors surface at operator time.
    let nt = tgdb.schema.node_type(q.nodes[node.0].node_type);
    for atom in &filter.atoms {
        use crate::pattern::FilterAtom::*;
        let attr = match atom {
            Cmp { attr, .. }
            | Like { attr, .. }
            | NotLike { attr, .. }
            | In { attr, .. }
            | IsNull { attr } => Some(attr),
            NodeIs(_) | NeighborLabelLike { .. } => None,
        };
        if let Some(attr) = attr {
            if nt.attr_index(attr).is_none() {
                return Err(Error::UnknownAttribute {
                    node_type: nt.name.clone(),
                    attr: attr.clone(),
                });
            }
        }
        if let NeighborLabelLike { edge, .. } = atom {
            if tgdb.schema.edge_type(*edge).source != q.nodes[node.0].node_type {
                return Err(Error::InvalidEdge(format!(
                    "edge {edge} does not leave node type `{}`",
                    nt.name
                )));
            }
        }
    }
    let mut out = q.clone();
    out.nodes[node.0].filter = out.nodes[node.0].filter.clone().and(filter);
    Ok(out)
}

/// `Add(ρk, Q)`: adds a new occurrence of `target(ρk)` connected to the
/// primary node by `ρk`, and shifts the primary to it.
///
/// `τ'a = target(ρk), T' = T ∪ {target(ρk)}, P' = P ∪ {ρk}`.
pub fn add(tgdb: &Tgdb, q: &QueryPattern, edge_type: EdgeTypeId) -> Result<QueryPattern> {
    let et = tgdb.schema.edge_type(edge_type);
    let primary_type = q.primary_node().node_type;
    if et.source != primary_type {
        return Err(Error::InvalidEdge(format!(
            "edge type `{}` does not leave the primary node type `{}`",
            et.name,
            tgdb.schema.node_type(primary_type).name
        )));
    }
    let mut out = q.clone();
    let new_id = PatternNodeId(out.nodes.len());
    out.nodes.push(PatternNode {
        node_type: et.target,
        filter: NodeFilter::none(),
    });
    out.edges.push(PatternEdge {
        edge_type,
        from: q.primary,
        to: new_id,
    });
    out.primary = new_id;
    Ok(out)
}

/// `Shift(τk, Q)`: moves the primary to another participating node.
///
/// `τ'a = τk, T' = T, P' = P, C' = C`.
pub fn shift(q: &QueryPattern, to: PatternNodeId) -> Result<QueryPattern> {
    if to.0 >= q.nodes.len() {
        return Err(Error::InvalidNode(format!("pattern node {to} missing")));
    }
    let mut out = q.clone();
    out.primary = to;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    #[test]
    fn initiate_single_node() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = initiate(&tgdb, papers).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.primary, PatternNodeId(0));
        q.validate(&tgdb).unwrap();
    }

    #[test]
    fn figure7_operator_sequence() {
        // P1..P8 of Figure 7: Conferences -> filter -> add Papers -> filter
        // -> add Authors -> add Institutions -> filter -> shift to Authors.
        let tgdb = academic_tgdb();
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = initiate(&tgdb, confs).unwrap(); // P1
        let q = select(&tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap(); // P2
        let (papers_edge, _) = tgdb
            .schema
            .outgoing_by_name(confs, "Papers")
            .expect("Conferences -> Papers edge");
        let q = add(&tgdb, &q, papers_edge).unwrap(); // P3
        let q = select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2005)).unwrap(); // P4
        let papers_ty = q.primary_node().node_type;
        let (authors_edge, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = add(&tgdb, &q, authors_edge).unwrap(); // P5
        let authors_ty = q.primary_node().node_type;
        let (inst_edge, _) = tgdb
            .schema
            .outgoing_by_name(authors_ty, "Institutions")
            .unwrap();
        let q = add(&tgdb, &q, inst_edge).unwrap(); // P6
        let q = select(&tgdb, &q, NodeFilter::like("country", "%Korea%")).unwrap(); // P7
        let q = shift(&q, PatternNodeId(2)).unwrap(); // P8: Authors
        q.validate(&tgdb).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.edges.len(), 3);
        assert_eq!(
            tgdb.schema.node_type(q.primary_node().node_type).name,
            "Authors"
        );
        let diagram = q.diagram(&tgdb);
        assert!(diagram.contains("Authors *"), "{diagram}");
        assert!(diagram.contains("country like '%Korea%'"), "{diagram}");
    }

    #[test]
    fn add_requires_edge_from_primary() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = initiate(&tgdb, papers).unwrap();
        // An edge leaving Conferences cannot be added while Papers is primary.
        let (bad_edge, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        assert!(add(&tgdb, &q, bad_edge).is_err());
    }

    #[test]
    fn select_validates_attribute() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = initiate(&tgdb, papers).unwrap();
        assert!(select(&tgdb, &q, NodeFilter::cmp("nope", CmpOp::Eq, 1)).is_err());
        assert!(select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Eq, 2007)).is_ok());
    }

    #[test]
    fn select_accumulates_conditions() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = initiate(&tgdb, papers).unwrap();
        let q = select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2005)).unwrap();
        let q = select(&tgdb, &q, NodeFilter::like("title", "%usable%")).unwrap();
        assert_eq!(q.primary_node().filter.atoms.len(), 2);
    }

    #[test]
    fn shift_out_of_range_rejected() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = initiate(&tgdb, papers).unwrap();
        assert!(shift(&q, PatternNodeId(3)).is_err());
    }

    #[test]
    fn same_type_twice_allowed() {
        // Papers citing Papers: the same node type participates twice.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = initiate(&tgdb, papers).unwrap();
        let (cite, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Papers (referenced)")
            .unwrap();
        let q = add(&tgdb, &q, cite).unwrap();
        q.validate(&tgdb).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.nodes[0].node_type, q.nodes[1].node_type);
    }
}
