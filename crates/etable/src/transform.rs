//! Format transformation (§5.4.2): turning an instance-matching result into
//! an enriched table.
//!
//! Rows are the matched primary nodes; columns are
//! 1. base attributes `Ab` of the primary node type,
//! 2. participating node columns `At` (one per non-primary pattern node,
//!    row-scoped through the pattern), and
//! 3. neighbor node columns `Ah` (one per schema edge type leaving the
//!    primary type, unfiltered).
//!
//! A neighbor column is suppressed when the same edge type already connects
//! the primary node to a participating node — "some of these columns are
//! the same as the participating node columns" (Figure 8 caption).

use crate::etable::{Cell, ColumnKind, ColumnSpec, ETableRow, EnrichedTable, EntityRef};
use crate::matching::{match_primary, MatchResult};
use crate::pattern::QueryPattern;
use crate::Result;
use etable_tgm::Tgdb;
use std::collections::HashSet;

/// Executes a query pattern and transforms the result into an enriched
/// table (instance matching + format transformation, Figure 8).
pub fn execute(tgdb: &Tgdb, pattern: &QueryPattern) -> Result<EnrichedTable> {
    let m = match_primary(tgdb, pattern)?;
    transform(tgdb, &m)
}

/// Transforms an existing matching result into an enriched table.
pub fn transform(tgdb: &Tgdb, m: &MatchResult) -> Result<EnrichedTable> {
    let pattern = &m.pattern;
    let primary = pattern.primary;
    let primary_ty = pattern.primary_node().node_type;
    let nt = tgdb.schema.node_type(primary_ty);

    let mut columns: Vec<ColumnSpec> = Vec::new();

    // 1. Base attributes Ab.
    for (i, attr) in nt.attrs.iter().enumerate() {
        columns.push(ColumnSpec {
            name: attr.name.clone(),
            kind: ColumnKind::Base { attr: i },
        });
    }

    // 2. Participating node columns At (every pattern node except the
    //    primary), named after the node type, disambiguated by occurrence.
    let mut used_names: HashSet<String> = columns.iter().map(|c| c.name.clone()).collect();
    // Edge types that connect the primary node to an adjacent participating
    // node; their neighbor columns would duplicate the participating column.
    let mut covered_edges: HashSet<etable_tgm::EdgeTypeId> = HashSet::new();
    for (nb, et) in pattern.incident(tgdb, primary) {
        let _ = nb;
        covered_edges.insert(et);
    }
    for id in pattern.node_ids() {
        if id == primary {
            continue;
        }
        let tname = &tgdb.schema.node_type(pattern.node(id).node_type).name;
        let mut name = tname.clone();
        let mut k = 2;
        while !used_names.insert(name.clone()) {
            name = format!("{tname} ({k})");
            k += 1;
        }
        columns.push(ColumnSpec {
            name,
            kind: ColumnKind::Participating { node: id },
        });
    }

    // 3. Neighbor node columns Ah, for edge types not already covered by an
    //    adjacent participating column.
    for (et_id, et) in tgdb.schema.outgoing(primary_ty) {
        if covered_edges.contains(&et_id) {
            continue;
        }
        let mut name = et.name.clone();
        let mut k = 2;
        while !used_names.insert(name.clone()) {
            name = format!("{} ({k})", et.name);
            k += 1;
        }
        columns.push(ColumnSpec {
            name,
            kind: ColumnKind::Neighbor { edge: et_id },
        });
    }

    // Rows.
    let mut rows = Vec::with_capacity(m.rows().len());
    for &node in m.rows() {
        let mut cells = Vec::with_capacity(columns.len());
        for col in &columns {
            let cell = match &col.kind {
                ColumnKind::Base { attr } => Cell::Atomic(tgdb.instances.node(node).values[*attr]),
                ColumnKind::Participating { node: target } => {
                    let related = m.related(tgdb, node, *target)?;
                    Cell::Refs(
                        related
                            .into_iter()
                            .map(|n| EntityRef {
                                node: n,
                                label: tgdb.instances.label(&tgdb.schema, n),
                            })
                            .collect(),
                    )
                }
                ColumnKind::Neighbor { edge } => Cell::Refs(
                    tgdb.instances
                        .neighbors(*edge, node)
                        .iter()
                        .map(|&n| EntityRef {
                            node: n,
                            label: tgdb.instances.label(&tgdb.schema, n),
                        })
                        .collect(),
                ),
            };
            cells.push(cell);
        }
        rows.push(ETableRow { node, cells });
    }

    // Filter description, e.g. "Papers filtered by year > 2005 AND ...".
    let mut filters = Vec::new();
    for id in pattern.node_ids() {
        let n = pattern.node(id);
        if !n.filter.is_empty() {
            let tname = &tgdb.schema.node_type(n.node_type).name;
            filters.push(format!("{tname}.{}", n.filter.display_with(tgdb)));
        }
    }
    let filter_desc = if filters.is_empty() {
        String::new()
    } else {
        format!("filtered by {}", filters.join(" AND "))
    };

    Ok(EnrichedTable {
        primary_type_name: nt.name.clone(),
        filter_desc,
        columns,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etable::ColumnKind;
    use crate::ops;
    use crate::pattern::NodeFilter;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    #[test]
    fn base_columns_match_node_type_attrs() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        assert_eq!(t.len(), 4);
        // id, title, year base columns.
        let base: Vec<&str> = t
            .columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Base { .. }))
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(base, vec!["id", "title", "year"]);
    }

    #[test]
    fn neighbor_columns_cover_schema_edges() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        for name in [
            "Conferences",
            "Authors",
            "Paper_Keywords: keyword",
            "Papers (referenced)",
            "Papers (referencing)",
        ] {
            assert!(t.column(name).is_some(), "missing neighbor column {name}");
        }
    }

    #[test]
    fn rows_have_no_duplicates() {
        // The key property motivating ETable: one row per primary entity,
        // however many authors/keywords it has.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (ae, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(0)).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        let mut nodes: Vec<_> = t.rows.iter().map(|r| r.node).collect();
        let before = nodes.len();
        nodes.sort();
        nodes.dedup();
        assert_eq!(before, nodes.len());
        assert_eq!(before, 4);
    }

    #[test]
    fn participating_column_respects_filters() {
        // Papers joined with SIGMOD conference: participating Conferences
        // column lists only SIGMOD, and rows shrink to SIGMOD papers.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (ce, _) = tgdb.schema.outgoing_by_name(papers, "Conferences").unwrap();
        let q = ops::add(&tgdb, &q, ce).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(0)).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        assert_eq!(t.len(), 2); // papers 10 and 11
        let col = t.column_index("Conferences").unwrap();
        assert!(matches!(
            t.columns[col].kind,
            ColumnKind::Participating { .. }
        ));
        for row in &t.rows {
            let refs = row.cells[col].refs().unwrap();
            assert_eq!(refs.len(), 1);
            assert_eq!(refs[0].label, "SIGMOD");
        }
    }

    #[test]
    fn neighbor_column_suppressed_when_participating_covers_it() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (ce, _) = tgdb.schema.outgoing_by_name(papers, "Conferences").unwrap();
        let q = ops::add(&tgdb, &q, ce).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(0)).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        // Exactly one "Conferences" column: the participating one.
        let count = t
            .columns
            .iter()
            .filter(|c| c.name.starts_with("Conferences"))
            .count();
        assert_eq!(count, 1);
        assert!(matches!(
            t.column("Conferences").unwrap().kind,
            ColumnKind::Participating { .. }
        ));
    }

    #[test]
    fn neighbor_cells_are_unfiltered() {
        // Even when papers are filtered to SIGMOD, the Authors neighbor
        // column still shows *all* authors of each surviving row.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (ce, _) = tgdb.schema.outgoing_by_name(papers, "Conferences").unwrap();
        let q = ops::add(&tgdb, &q, ce).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(0)).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        let usable = t
            .rows
            .iter()
            .find(|r| {
                r.cells[1]
                    .value()
                    .is_some_and(|v| v.to_string().contains("usable"))
            })
            .unwrap();
        let authors = t.column_index("Authors").unwrap();
        assert_eq!(usable.cells[authors].ref_count(), 2);
    }

    #[test]
    fn filter_description_lists_conditions() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2005)).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        assert!(t.filter_desc.contains("year > 2005"), "{}", t.filter_desc);
    }

    #[test]
    fn figure8_toy_example() {
        // Reproduces the shape of Figure 8: conferences x papers x authors
        // x institutions, pivoted to Authors — each author row lists their
        // papers without duplication.
        let tgdb = academic_tgdb();
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = ops::initiate(&tgdb, confs).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap();
        let (pe, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        let q = ops::add(&tgdb, &q, pe).unwrap();
        let papers_ty = q.primary_node().node_type;
        let (ae, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let t = execute(&tgdb, &q).unwrap();
        // Authors of SIGMOD papers: Jagadish, Nandi, Kwon.
        assert_eq!(t.len(), 3);
        let papers_col = t.column_index("Papers").unwrap();
        for row in &t.rows {
            assert!(row.cells[papers_col].ref_count() >= 1);
        }
    }
}
