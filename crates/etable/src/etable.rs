//! The enriched table: the presentation data model's result format (§5.1).
//!
//! Each row represents one node of the primary node type; columns are
//! base attributes `Ab`, participating node columns `At`, or neighbor node
//! columns `Ah` (§5.4.2). Entity-reference cells hold clickable labels, not
//! foreign keys, mirroring hyperlinks (§5.1).

use crate::pattern::PatternNodeId;
use etable_relational::value::Value;
use etable_tgm::{EdgeTypeId, NodeId};
use std::fmt;

/// A reference to another entity, presented as a clickable label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityRef {
    /// The referenced node.
    pub node: NodeId,
    /// Its label (`label(v) = v[β]`).
    pub label: String,
}

/// One cell of an enriched table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An atomic value (base-attribute column).
    Atomic(Value),
    /// A set of entity references (entity-reference column). The count shown
    /// in the cell corner of the UI is `refs.len()`.
    Refs(Vec<EntityRef>),
}

impl Cell {
    /// Number of references (0 for atomic cells).
    pub fn ref_count(&self) -> usize {
        match self {
            Cell::Atomic(_) => 0,
            Cell::Refs(r) => r.len(),
        }
    }

    /// The references, if this is a reference cell.
    pub fn refs(&self) -> Option<&[EntityRef]> {
        match self {
            Cell::Atomic(_) => None,
            Cell::Refs(r) => Some(r),
        }
    }

    /// The atomic value, if this is an atomic cell.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Cell::Atomic(v) => Some(v),
            Cell::Refs(_) => None,
        }
    }
}

/// What a column presents (§5.4.2's three column kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnKind {
    /// `Ab`: a base attribute of the primary node type.
    Base {
        /// Attribute position in the node type.
        attr: usize,
    },
    /// `At`: a participating node column (entities bound to a non-primary
    /// pattern node, filtered by the whole query pattern).
    Participating {
        /// The pattern node this column tracks.
        node: PatternNodeId,
    },
    /// `Ah`: a neighbor node column (all schema-graph neighbors along one
    /// edge type, regardless of the pattern).
    Neighbor {
        /// The edge type leaving the primary node type.
        edge: EdgeTypeId,
    },
}

/// A column of an enriched table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Display name (attribute name, node type name, or edge name).
    pub name: String,
    /// What the column presents.
    pub kind: ColumnKind,
}

/// One row: a primary node plus its cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ETableRow {
    /// The primary node this row represents.
    pub node: NodeId,
    /// Cells, positionally matching the table's columns.
    pub cells: Vec<Cell>,
}

/// An enriched table (§5.1): the ETable presentation of a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrichedTable {
    /// Name of the primary node type (table heading).
    pub primary_type_name: String,
    /// Human-readable description of the filters applied (table subtitle,
    /// as in Figure 1's "Papers filtered by ...").
    pub filter_desc: String,
    /// The columns.
    pub columns: Vec<ColumnSpec>,
    /// The rows, one per matched primary node.
    pub rows: Vec<ETableRow>,
}

impl EnrichedTable {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column position by display name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column spec by display name.
    pub fn column(&self, name: &str) -> Option<&ColumnSpec> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The row presenting `node`, if present.
    pub fn row_for(&self, node: NodeId) -> Option<&ETableRow> {
        self.rows.iter().find(|r| r.node == node)
    }

    /// Sorts rows by a column: atomic columns by value, reference columns
    /// by reference count (the paper's "Sort table by # of Papers
    /// (referenced)", Figure 1 history step 3).
    pub fn sort_by_column(&mut self, column: usize, descending: bool) {
        self.rows.sort_by(|a, b| {
            let ord = match (&a.cells[column], &b.cells[column]) {
                (Cell::Atomic(x), Cell::Atomic(y)) => x.total_cmp(y),
                (x, y) => x.ref_count().cmp(&y.ref_count()),
            };
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    /// Total number of entity references across all cells (used by the
    /// duplication-factor analysis: a relational join would repeat rows
    /// multiplicatively, an ETable only additively).
    pub fn total_refs(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.cells.iter().map(Cell::ref_count).sum::<usize>())
            .sum()
    }
}

impl fmt::Display for EnrichedTable {
    /// Compact one-line summary; full rendering lives in [`crate::render`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ETable[{} rows of {}; {} columns]",
            self.rows.len(),
            self.primary_type_name,
            self.columns.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EnrichedTable {
        EnrichedTable {
            primary_type_name: "Papers".into(),
            filter_desc: String::new(),
            columns: vec![
                ColumnSpec {
                    name: "title".into(),
                    kind: ColumnKind::Base { attr: 1 },
                },
                ColumnSpec {
                    name: "Authors".into(),
                    kind: ColumnKind::Neighbor {
                        edge: etable_tgm::EdgeTypeId(0),
                    },
                },
            ],
            rows: vec![
                ETableRow {
                    node: NodeId(0),
                    cells: vec![
                        Cell::Atomic("B-paper".into()),
                        Cell::Refs(vec![
                            EntityRef {
                                node: NodeId(5),
                                label: "X".into(),
                            },
                            EntityRef {
                                node: NodeId(6),
                                label: "Y".into(),
                            },
                        ]),
                    ],
                },
                ETableRow {
                    node: NodeId(1),
                    cells: vec![
                        Cell::Atomic("A-paper".into()),
                        Cell::Refs(vec![EntityRef {
                            node: NodeId(5),
                            label: "X".into(),
                        }]),
                    ],
                },
            ],
        }
    }

    #[test]
    fn sort_by_atomic_column() {
        let mut t = table();
        t.sort_by_column(0, false);
        assert_eq!(t.rows[0].cells[0].value(), Some(&"A-paper".into()));
    }

    #[test]
    fn sort_by_ref_count_descending() {
        let mut t = table();
        t.sort_by_column(1, true);
        assert_eq!(t.rows[0].cells[1].ref_count(), 2);
    }

    #[test]
    fn lookups() {
        let t = table();
        assert_eq!(t.column_index("Authors"), Some(1));
        assert!(t.column("nope").is_none());
        assert!(t.row_for(NodeId(1)).is_some());
        assert_eq!(t.total_refs(), 3);
    }

    #[test]
    fn cell_accessors() {
        let c = Cell::Atomic(Value::Int(3));
        assert_eq!(c.ref_count(), 0);
        assert!(c.refs().is_none());
        assert_eq!(c.value(), Some(&Value::Int(3)));
    }
}
