//! Machine-readable export of enriched tables.
//!
//! The original system serves ETables to an HTML/D3 front-end as JSON; the
//! exporters here reproduce that interchange layer (hand-rolled, no serde:
//! the structure is small and the escaping rules are few) plus a flat CSV
//! form for spreadsheet users — the audience the paper's related work says
//! prefers tabular tools.

use crate::etable::{Cell, ColumnKind, EnrichedTable};
use std::fmt::Write;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_value(v: &etable_relational::value::Value) -> String {
    use etable_relational::value::Value;
    match v {
        Value::Null => "null".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => f.to_string(),
        Value::Float(_) => "null".into(), // NaN/inf have no JSON form
        Value::Text(s) => format!("\"{}\"", json_escape(s.as_str())),
        Value::Bool(b) => b.to_string(),
    }
}

/// Serializes an enriched table to JSON:
/// `{"primary": ..., "filter": ..., "columns": [...], "rows": [...]}`.
///
/// ```
/// use etable_core::{export, ops, transform};
/// use etable_core::testutil::academic_tgdb;
///
/// let tgdb = academic_tgdb();
/// let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
/// let q = ops::initiate(&tgdb, papers).unwrap();
/// let table = transform::execute(&tgdb, &q).unwrap();
/// let json = export::to_json(&table);
/// assert!(json.starts_with("{\"primary\":\"Papers\""));
/// ```
///
/// Entity-reference cells become `{"count": n, "refs": [{"node": id,
/// "label": ...}, ...]}` — the count is what the UI badge shows.
pub fn to_json(table: &EnrichedTable) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"primary\":\"{}\",\"filter\":\"{}\",\"columns\":[",
        json_escape(&table.primary_type_name),
        json_escape(&table.filter_desc)
    );
    for (i, col) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match col.kind {
            ColumnKind::Base { .. } => "base",
            ColumnKind::Participating { .. } => "participating",
            ColumnKind::Neighbor { .. } => "neighbor",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{kind}\"}}",
            json_escape(&col.name)
        );
    }
    out.push_str("],\"rows\":[");
    for (ri, row) in table.rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"node\":{},\"cells\":[", row.node.0);
        for (ci, cell) in row.cells.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            match cell {
                Cell::Atomic(v) => out.push_str(&json_value(v)),
                Cell::Refs(refs) => {
                    let _ = write!(out, "{{\"count\":{},\"refs\":[", refs.len());
                    for (i, r) in refs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "{{\"node\":{},\"label\":\"{}\"}}",
                            r.node.0,
                            json_escape(&r.label)
                        );
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Escapes a CSV field (RFC 4180 style).
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes an enriched table to CSV. Reference cells flatten to
/// `label; label; ...` — the comma-separated-values-within-a-cell
/// spreadsheet idiom the paper's introduction describes.
pub fn to_csv(table: &EnrichedTable) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.columns.iter().map(|c| csv_escape(&c.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &table.rows {
        let fields: Vec<String> = row
            .cells
            .iter()
            .map(|cell| match cell {
                Cell::Atomic(v) if v.is_null() => String::new(),
                Cell::Atomic(v) => csv_escape(&v.to_string()),
                Cell::Refs(refs) => {
                    let joined = refs
                        .iter()
                        .map(|r| r.label.as_str())
                        .collect::<Vec<_>>()
                        .join("; ");
                    csv_escape(&joined)
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::testutil::academic_tgdb;
    use crate::transform;

    fn table() -> EnrichedTable {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        transform::execute(&tgdb, &q).unwrap()
    }

    #[test]
    fn json_has_expected_structure() {
        let t = table();
        let json = to_json(&t);
        assert!(json.starts_with("{\"primary\":\"Papers\""));
        assert!(json.contains("\"kind\":\"base\""));
        assert!(json.contains("\"kind\":\"neighbor\""));
        assert!(json.contains("\"count\":"));
        assert!(json.ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn csv_round_shape() {
        let t = table();
        let csv = to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), t.len() + 1);
        assert!(lines[0].starts_with("id,title,year"));
        // A multi-author paper flattens with semicolons.
        assert!(csv.contains("H. V. Jagadish; Arnab Nandi"), "{csv}");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("he said \"hi\""), "\"he said \"\"hi\"\"\"");
    }

    #[test]
    fn null_cells_export_cleanly() {
        use crate::etable::{Cell, ColumnKind, ColumnSpec, ETableRow};
        let t = EnrichedTable {
            primary_type_name: "T".into(),
            filter_desc: String::new(),
            columns: vec![ColumnSpec {
                name: "x".into(),
                kind: ColumnKind::Base { attr: 0 },
            }],
            rows: vec![ETableRow {
                node: etable_tgm::NodeId(0),
                cells: vec![Cell::Atomic(etable_relational::value::Value::Null)],
            }],
        };
        assert!(to_json(&t).contains("null"));
        assert_eq!(to_csv(&t).lines().nth(1), Some(""));
    }
}
