//! Plain-text rendering of enriched tables, query-pattern diagrams, schema
//! graphs and session histories.
//!
//! The original ETable front-end is an HTML/D3 web app; the renderer here
//! reproduces the *information* of Figures 1, 4, 6, 7 and 9 in a terminal,
//! which keeps every figure reproducible and testable.

use crate::etable::{Cell, EnrichedTable};
use crate::session::Session;
use etable_tgm::Tgdb;
use std::fmt::Write;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Maximum rows rendered (the UI paginates; Figure 1 shows ~11).
    pub max_rows: usize,
    /// Maximum entity references listed per cell before eliding (the UI
    /// shows ~5 labels plus the count).
    pub max_refs: usize,
    /// Maximum characters per label before truncation with `…`.
    pub max_label: usize,
    /// Maximum width of a cell in characters.
    pub max_cell: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            max_rows: 12,
            max_refs: 5,
            max_label: 10,
            max_cell: 28,
        }
    }
}

/// Truncates a string to `n` characters, appending `…` when shortened
/// (labels in Figure 1 appear as e.g. "H. V. Jaga…").
pub fn truncate(s: &str, n: usize) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() <= n {
        s.to_string()
    } else {
        let mut out: String = chars[..n.saturating_sub(1)].iter().collect();
        out.push('…');
        out
    }
}

fn render_cell(cell: &Cell, opts: &RenderOptions) -> String {
    match cell {
        Cell::Atomic(v) => truncate(&v.to_string(), opts.max_cell),
        Cell::Refs(refs) => {
            let shown: Vec<String> = refs
                .iter()
                .take(opts.max_refs)
                .map(|r| truncate(&r.label, opts.max_label))
                .collect();
            let mut text = format!("{} | {}", refs.len(), shown.join(", "));
            if refs.len() > opts.max_refs {
                text.push('…');
            }
            truncate(&text, opts.max_cell)
        }
    }
}

/// Renders an enriched table as fixed-width text (the main view, Figure 1).
pub fn render_etable(t: &EnrichedTable, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let title = if t.filter_desc.is_empty() {
        t.primary_type_name.clone()
    } else {
        format!("{} {}", t.primary_type_name, t.filter_desc)
    };
    let _ = writeln!(out, "== {title} ==");

    let headers: Vec<String> = t
        .columns
        .iter()
        .map(|c| truncate(&c.name, opts.max_cell))
        .collect();
    let mut body: Vec<Vec<String>> = Vec::new();
    for row in t.rows.iter().take(opts.max_rows) {
        body.push(row.cells.iter().map(|c| render_cell(c, opts)).collect());
    }
    // Column widths.
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let pad = |s: &str, w: usize| {
        let mut out = s.to_string();
        let len = s.chars().count();
        for _ in len..w {
            out.push(' ');
        }
        out
    };
    let _ = writeln!(
        out,
        "| {} |",
        headers
            .iter()
            .zip(&widths)
            .map(|(h, &w)| pad(h, w))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let _ = writeln!(
        out,
        "|{}|",
        widths
            .iter()
            .map(|&w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in &body {
        let _ = writeln!(
            out,
            "| {} |",
            row.iter()
                .zip(&widths)
                .map(|(c, &w)| pad(c, w))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    if t.rows.len() > opts.max_rows {
        let _ = writeln!(out, "... {} more rows", t.rows.len() - opts.max_rows);
    }
    out
}

/// Renders an enriched table as a GitHub-flavored markdown table (handy
/// for embedding results in documentation or issues).
pub fn render_markdown(t: &EnrichedTable, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "**{}**{}",
        t.primary_type_name,
        if t.filter_desc.is_empty() {
            String::new()
        } else {
            format!(" — {}", t.filter_desc)
        }
    );
    let _ = writeln!(out);
    let escape = |s: &str| s.replace('|', "/");
    let header: Vec<String> = t.columns.iter().map(|c| escape(&c.name)).collect();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        t.columns
            .iter()
            .map(|_| "---")
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in t.rows.iter().take(opts.max_rows) {
        let cells: Vec<String> = row
            .cells
            .iter()
            .map(|c| match c {
                Cell::Atomic(v) => escape(&truncate(&v.to_string(), opts.max_cell)),
                Cell::Refs(refs) => {
                    let shown: Vec<String> = refs
                        .iter()
                        .take(opts.max_refs)
                        .map(|r| escape(&truncate(&r.label, opts.max_label)))
                        .collect();
                    let ellipsis = if refs.len() > opts.max_refs {
                        "…"
                    } else {
                        ""
                    };
                    format!("({}) {}{}", refs.len(), shown.join(", "), ellipsis)
                }
            })
            .collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    }
    if t.rows.len() > opts.max_rows {
        let _ = writeln!(out, "\n*… {} more rows*", t.rows.len() - opts.max_rows);
    }
    out
}

/// Renders the TGDB schema graph (Figure 4): node types and the forward
/// edge types between them.
pub fn render_schema(tgdb: &Tgdb) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== TGDB schema graph ==");
    let _ = writeln!(out, "node types:");
    for (_, nt) in tgdb.schema.node_types() {
        let attrs: Vec<&str> = nt.attrs.iter().map(|a| a.name.as_str()).collect();
        let _ = writeln!(
            out,
            "  [{}] ({}) attrs: {} label: {}",
            nt.name,
            nt.kind,
            attrs.join(", "),
            nt.attrs[nt.label_attr].name
        );
    }
    let _ = writeln!(out, "edge types:");
    for (_, et) in tgdb.schema.edge_types() {
        if !et.forward {
            continue; // reverse directions are implied
        }
        let src = &tgdb.schema.node_type(et.source).name;
        let tgt = &tgdb.schema.node_type(et.target).name;
        let _ = writeln!(
            out,
            "  [{src}] --{}--> [{tgt}]  ({}; {})",
            et.name,
            et.kind,
            et.source_desc()
        );
    }
    out
}

/// Renders the history view (Figure 9 component 4).
pub fn render_history(session: &Session) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== HISTORY ==");
    for (i, step) in session.history().iter().enumerate() {
        let _ = writeln!(out, "{}. {}", i + 1, step.description);
    }
    out
}

/// Renders the full interface state (Figure 9): default table list, main
/// view, schema view, history view.
pub fn render_session(session: &mut Session, opts: &RenderOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== ETABLE BUILDER: choose a table ==");
    for (_, name) in session.default_table_list() {
        let _ = writeln!(out, "  * {name}");
    }
    let _ = writeln!(out);
    match session.etable() {
        Ok(t) => {
            out.push_str(&render_etable(&t, opts));
        }
        Err(_) => {
            let _ = writeln!(out, "(no table open)");
        }
    }
    let _ = writeln!(out);
    if let Some(p) = session.current_pattern() {
        let _ = writeln!(out, "== SCHEMA VIEW (query pattern) ==");
        out.push_str(&p.diagram(session.tgdb()));
        let _ = writeln!(out);
    }
    out.push_str(&render_history(session));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NodeFilter;
    use crate::testutil::academic_tgdb;
    use crate::{ops, transform};
    use etable_relational::expr::CmpOp;

    #[test]
    fn truncate_behaviour() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("H. V. Jagadish", 10), "H. V. Jag…");
        assert_eq!(truncate("ab", 2), "ab");
    }

    #[test]
    fn etable_rendering_contains_counts_and_labels() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let t = transform::execute(&tgdb, &q).unwrap();
        let text = render_etable(&t, &RenderOptions::default());
        assert!(text.contains("Authors"));
        // "Making database systems usable" has 2 authors -> "2 | ".
        assert!(text.contains("2 | "), "{text}");
    }

    #[test]
    fn schema_rendering_lists_forward_edges_once() {
        let tgdb = academic_tgdb();
        let text = render_schema(&tgdb);
        assert!(text.contains("[Papers]"));
        assert!(text.contains("--Authors-->"));
        // Reverse direction is implied, not listed.
        let occurrences = text.matches("many-to-many relationship").count();
        let forward_mn = tgdb
            .schema
            .edge_types()
            .filter(|(_, e)| e.forward && e.kind == etable_tgm::EdgeTypeKind::ManyToMany)
            .count();
        assert_eq!(occurrences, forward_mn);
    }

    #[test]
    fn session_rendering_shows_all_four_components() {
        let tgdb = academic_tgdb();
        let mut s = crate::session::Session::new(std::sync::Arc::new(tgdb));
        s.open_by_name("Papers").unwrap();
        s.filter(NodeFilter::cmp("year", CmpOp::Gt, 2010)).unwrap();
        let text = render_session(&mut s, &RenderOptions::default());
        assert!(text.contains("choose a table"));
        assert!(text.contains("== Papers"));
        assert!(text.contains("SCHEMA VIEW"));
        assert!(text.contains("HISTORY"));
        assert!(text.contains("2. Filter 'Papers'"));
    }

    #[test]
    fn markdown_rendering_is_well_formed() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let t = transform::execute(&tgdb, &q).unwrap();
        let md = render_markdown(&t, &RenderOptions::default());
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("**Papers**"));
        // Header, separator and each row have the same column count.
        let cols = lines[2].matches('|').count();
        assert!(cols > 2);
        assert_eq!(lines[3].matches('|').count(), cols);
        assert_eq!(lines[4].matches('|').count(), cols);
    }

    #[test]
    fn long_tables_elide_rows() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let t = transform::execute(&tgdb, &q).unwrap();
        let opts = RenderOptions {
            max_rows: 2,
            ..Default::default()
        };
        let text = render_etable(&t, &opts);
        assert!(text.contains("... 2 more rows"));
    }
}
