//! The owned connection handle: one client's view of a shared ETable
//! deployment.
//!
//! A [`Connection`] bundles the three things every client needs — a
//! [`SharedDatabase`] handle for SQL (snapshot reads, serialized epoch
//! writes), the shared [`Tgdb`] graph view, and a private, owned
//! [`Session`] for interactive pattern browsing. It is a `Send` value:
//! the CLI owns exactly one, `etable-server` hands one to every
//! accepted socket, and tests can move them freely across threads.
//! Cloning-by-construction is cheap — [`Connection::connect`] copies two
//! `Arc` handles and starts a fresh session; no data is duplicated.
//!
//! This replaces the old borrow-based `Engine::new(&Database, &Tgdb)`
//! facade, which pinned every consumer to the thread that owned the
//! database.

use crate::session::Session;
use etable_relational::algebra::Relation;
use etable_relational::shared::{SharedDatabase, Snapshot};
use etable_tgm::Tgdb;
use std::sync::Arc;

/// One client's handle on a shared deployment: SQL over the shared
/// database plus a private browsing session. See the module docs.
pub struct Connection {
    db: SharedDatabase,
    tgdb: Arc<Tgdb>,
    session: Session,
}

impl Connection {
    /// Opens a new connection over existing shared handles (what the
    /// server does per accepted client). Cheap: two `Arc` clones.
    pub fn connect(db: &SharedDatabase, tgdb: &Arc<Tgdb>) -> Connection {
        Connection {
            db: db.clone(),
            tgdb: Arc::clone(tgdb),
            session: Session::new(Arc::clone(tgdb)),
        }
    }

    /// Wraps owned single-process state (what the CLI and tests do):
    /// `db` becomes epoch 0 of a fresh [`SharedDatabase`], `tgdb` is
    /// shared from here on. Further connections can be opened over
    /// [`Connection::shared`]/[`Connection::tgdb_arc`].
    pub fn single(db: etable_relational::database::Database, tgdb: Tgdb) -> Connection {
        let tgdb = Arc::new(tgdb);
        Connection {
            db: SharedDatabase::new(db),
            tgdb: Arc::clone(&tgdb),
            session: Session::new(tgdb),
        }
    }

    /// Executes one SQL statement: reads run on a fresh snapshot, writes
    /// go through the serialized epoch-publishing path.
    pub fn sql(&self, sql: &str) -> etable_relational::Result<Relation> {
        self.db.execute(sql)
    }

    /// [`sql`](Self::sql), but also reporting the epoch the statement
    /// observed (reads: the snapshot it ran on; writes: the epoch it
    /// published) — what the server stamps on `Result` frames.
    pub fn sql_with_epoch(&self, sql: &str) -> etable_relational::Result<(u64, Relation)> {
        self.db.execute_with_epoch(sql)
    }

    /// Pins the current database epoch for read-your-own consistency
    /// across several statements (e.g. translating a pattern to SQL and
    /// executing it against one stable view).
    pub fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }

    /// The shared database handle (for opening further connections or
    /// driving the write path directly).
    pub fn shared(&self) -> &SharedDatabase {
        &self.db
    }

    /// The connection's private browsing session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The connection's private browsing session, mutably.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The shared typed graph database.
    pub fn tgdb(&self) -> &Tgdb {
        &self.tgdb
    }

    /// The shared graph handle itself.
    pub fn tgdb_arc(&self) -> &Arc<Tgdb> {
        &self.tgdb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NodeFilter;
    use crate::testutil::{academic_db, academic_tgdb};
    use etable_relational::expr::CmpOp;
    use etable_relational::value::Value;

    fn conn() -> Connection {
        Connection::single(academic_db(), academic_tgdb())
    }

    #[test]
    fn connections_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Connection>();
        assert_send::<Session>();
    }

    #[test]
    fn sql_and_session_share_one_deployment() {
        let mut c = conn();
        let r = c.sql("SELECT COUNT(*) FROM Papers").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4));
        c.session_mut().open_by_name("Papers").unwrap();
        assert_eq!(c.session_mut().etable().unwrap().len(), 4);
    }

    #[test]
    fn second_connection_sees_first_ones_writes() {
        let a = conn();
        let b = Connection::connect(a.shared(), a.tgdb_arc());
        a.sql("CREATE TABLE scratch (id INT PRIMARY KEY)").unwrap();
        a.sql("INSERT INTO scratch VALUES (1), (2)").unwrap();
        let r = b.sql("SELECT COUNT(*) FROM scratch").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        // ...but sessions stay private.
        assert!(b.session().current_pattern().is_none());
    }

    #[test]
    fn connection_moves_across_threads_mid_session() {
        let mut c = conn();
        c.session_mut().open_by_name("Papers").unwrap();
        let handle = std::thread::spawn(move || {
            c.session_mut()
                .filter(NodeFilter::cmp("year", CmpOp::Gt, 2010))
                .unwrap();
            c.session_mut().etable().unwrap().len()
        });
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn pinned_snapshot_is_stable_across_writes() {
        let c = conn();
        let snap = c.snapshot();
        c.sql("CREATE TABLE scratch (id INT PRIMARY KEY)").unwrap();
        assert!(snap.table("scratch").is_err());
        assert!(c.snapshot().table("scratch").is_ok());
    }
}
