//! Column ranking — the paper's future-work item (3): "leveraging machine
//! learning techniques to rank and select important columns to display"
//! (§9), motivated by a participant's "there are too many attributes ...,
//! which is not easy to interpret" (§7.2).
//!
//! We implement the interpretable statistical core such a ranker would
//! learn from: a column is informative when it is *filled* (few empty
//! cells), *discriminative* (many distinct values relative to rows), and
//! not overwhelming (bounded average reference-set size). This follows the
//! influence-style column scoring of Yang et al., "Summarizing relational
//! databases" (PVLDB 2009), which the paper cites as [47] for exactly this
//! purpose.

use crate::etable::{Cell, ColumnKind, EnrichedTable};
use std::collections::HashSet;

/// A scored column.
#[derive(Debug, Clone)]
pub struct ColumnScore {
    /// Column display name.
    pub name: String,
    /// Score in `[0, 1]`; higher is more useful to display.
    pub score: f64,
    /// Fraction of rows with a non-empty cell.
    pub fill_rate: f64,
    /// Distinct cell contents relative to row count.
    pub distinctness: f64,
    /// Mean number of references per cell (0 for atomic columns).
    pub mean_refs: f64,
}

/// Scores every column of an enriched table.
pub fn rank_columns(table: &EnrichedTable) -> Vec<ColumnScore> {
    let n = table.rows.len().max(1) as f64;
    let mut scores: Vec<ColumnScore> = table
        .columns
        .iter()
        .enumerate()
        .map(|(ci, col)| {
            let mut filled = 0usize;
            let mut refs_total = 0usize;
            let mut all_ints = true;
            let mut distinct: HashSet<String> = HashSet::new();
            for row in &table.rows {
                match &row.cells[ci] {
                    Cell::Atomic(v) => {
                        if !v.is_null() {
                            filled += 1;
                        }
                        if v.as_int().is_none() {
                            all_ints = false;
                        }
                        distinct.insert(v.to_string());
                    }
                    Cell::Refs(refs) => {
                        if !refs.is_empty() {
                            filled += 1;
                        }
                        refs_total += refs.len();
                        let mut labels: Vec<&str> = refs.iter().map(|r| r.label.as_str()).collect();
                        labels.sort_unstable();
                        distinct.insert(labels.join("\u{1f}"));
                    }
                }
            }
            let fill_rate = filled as f64 / n;
            let distinctness = distinct.len() as f64 / n;
            let mean_refs = refs_total as f64 / n;
            // Crowding penalty: very wide reference sets (like a 30-item
            // citation list) cost screen space; halve the score as the mean
            // set size approaches 10+.
            let crowding = 1.0 / (1.0 + mean_refs / 10.0);
            // Identifier-column penalty: *numeric* base columns where every
            // value is unique (surrogate keys) describe rows no better than
            // position; unique text (titles, names) stays informative.
            let id_penalty = if matches!(col.kind, ColumnKind::Base { .. })
                && all_ints
                && distinctness >= 0.999
                && table.rows.len() > 1
            {
                0.55
            } else {
                1.0
            };
            let score = (0.5 * fill_rate + 0.5 * distinctness) * crowding * id_penalty;
            ColumnScore {
                name: col.name.clone(),
                score,
                fill_rate,
                distinctness,
                mean_refs,
            }
        })
        .collect();
    scores.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.name.cmp(&b.name)));
    scores
}

/// Names of the `k` highest-scoring columns (always keeping the label-ish
/// first base column so rows remain identifiable).
pub fn top_k_columns(table: &EnrichedTable, k: usize) -> Vec<String> {
    let ranked = rank_columns(table);
    ranked.into_iter().take(k).map(|c| c.name).collect()
}

/// The columns a session should hide to show only the top `k` (the
/// complement of [`top_k_columns`]).
pub fn columns_to_hide(table: &EnrichedTable, k: usize) -> Vec<String> {
    let keep: HashSet<String> = top_k_columns(table, k).into_iter().collect();
    table
        .columns
        .iter()
        .filter(|c| !keep.contains(&c.name))
        .map(|c| c.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::testutil::academic_tgdb;
    use crate::transform;

    fn papers_table() -> EnrichedTable {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        transform::execute(&tgdb, &q).unwrap()
    }

    #[test]
    fn scores_are_bounded_and_sorted() {
        let t = papers_table();
        let scores = rank_columns(&t);
        assert_eq!(scores.len(), t.columns.len());
        for s in &scores {
            assert!((0.0..=1.0).contains(&s.score), "{s:?}");
        }
        for w in scores.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_columns_rank_last() {
        let t = papers_table();
        let scores = rank_columns(&t);
        // In the mini fixture no paper has every neighbor kind; columns with
        // mostly-empty cells (e.g. citations for most papers) rank below
        // title.
        let title_pos = scores.iter().position(|s| s.name == "title").unwrap();
        let worst = scores.last().unwrap();
        assert!(title_pos < scores.len() - 1);
        assert!(worst.fill_rate <= scores[title_pos].fill_rate);
    }

    #[test]
    fn id_columns_are_penalized() {
        let t = papers_table();
        let scores = rank_columns(&t);
        let id = scores.iter().find(|s| s.name == "id").unwrap();
        let title = scores.iter().find(|s| s.name == "title").unwrap();
        assert!(
            title.score > id.score,
            "title {} !> id {}",
            title.score,
            id.score
        );
    }

    #[test]
    fn top_k_and_hide_partition_columns() {
        let t = papers_table();
        let k = 4;
        let keep = top_k_columns(&t, k);
        let hide = columns_to_hide(&t, k);
        assert_eq!(keep.len(), k);
        assert_eq!(keep.len() + hide.len(), t.columns.len());
        for name in &keep {
            assert!(!hide.contains(name));
        }
    }

    #[test]
    fn ranking_is_deterministic() {
        let t = papers_table();
        let a: Vec<String> = rank_columns(&t).into_iter().map(|s| s.name).collect();
        let b: Vec<String> = rank_columns(&t).into_iter().map(|s| s.name).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_table_is_handled() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(
            &tgdb,
            &q,
            crate::pattern::NodeFilter::cmp("year", etable_relational::expr::CmpOp::Gt, 9999),
        )
        .unwrap();
        let t = transform::execute(&tgdb, &q).unwrap();
        assert!(t.is_empty());
        let scores = rank_columns(&t);
        assert_eq!(scores.len(), t.columns.len());
    }
}
