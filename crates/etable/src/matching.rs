//! Instance matching `m(Q)` (paper Definition 4).
//!
//! Two strategies:
//!
//! * [`match_full`] materializes the full graph relation
//!   `σC1(R1) ∗p1 σC2(R2) ∗ ... ∗ σCn(Rn)` exactly as Definition 4 states
//!   (used for Figure 8 and as the reference in tests);
//! * [`match_primary`] runs a two-pass message-passing algorithm
//!   (Yannakakis' algorithm for acyclic queries) that computes, per pattern
//!   node, the set of instance nodes participating in *some* full match.
//!   This implements the paper's §6.2 optimization — "we partition a long
//!   SQL query into multiple queries ... and merge them" — the ETable only
//!   needs per-row *sets* of related entities, never the full cross
//!   product.
//!
//! For tree-shaped patterns both agree:
//! `Π_τ(match_full(Q)) == match_primary(Q).allowed[τ]` (property-tested).

use crate::graph_relation::GraphRelation;
use crate::pattern::{PatternNodeId, QueryPattern};
use crate::Result;
use etable_tgm::{NodeId, Tgdb};
use std::collections::HashSet;

/// The decomposed matching result.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// The pattern this result was computed for.
    pub pattern: QueryPattern,
    /// Per pattern node: the instance nodes that appear in at least one
    /// complete match, in instance-graph order.
    pub allowed: Vec<Vec<NodeId>>,
    /// Per pattern node: the same sets in hash form for O(1) membership.
    pub allowed_sets: Vec<HashSet<NodeId>>,
}

impl MatchResult {
    /// The matched primary rows (`R = Π_τa(m(Q))`), in instance order.
    pub fn rows(&self) -> &[NodeId] {
        &self.allowed[self.pattern.primary.0]
    }

    /// Whether `node` participates in a match at pattern node `at`.
    pub fn contains(&self, at: PatternNodeId, node: NodeId) -> bool {
        self.allowed_sets[at.0].contains(&node)
    }

    /// The nodes related to `row` (a matched primary node) at pattern node
    /// `target`: `Π_type(target) σ_{τa = row}(m(Q))` computed by walking the
    /// unique pattern path and intersecting with the allowed sets.
    pub fn related(&self, tgdb: &Tgdb, row: NodeId, target: PatternNodeId) -> Result<Vec<NodeId>> {
        let path = self.pattern.path(tgdb, self.pattern.primary, target)?;
        let mut frontier: Vec<NodeId> = vec![row];
        for (step_node, edge) in path {
            let mut next = Vec::new();
            let mut seen = HashSet::new();
            for &f in &frontier {
                for &nb in tgdb.instances.neighbors(edge, f) {
                    if self.allowed_sets[step_node.0].contains(&nb) && seen.insert(nb) {
                        next.push(nb);
                    }
                }
            }
            frontier = next;
        }
        Ok(frontier)
    }
}

/// Materializes the full graph relation of Definition 4 by walking the
/// pattern tree from the primary node outward, expanding one edge at a time
/// (each expansion is a `∗` join against a filtered base relation).
pub fn match_full(tgdb: &Tgdb, pattern: &QueryPattern) -> Result<GraphRelation> {
    pattern.validate(tgdb)?;
    let root = pattern.primary;
    let mut rel = GraphRelation::base(
        tgdb,
        root,
        pattern.node(root).node_type,
        &pattern.node(root).filter,
    )?;
    // BFS over the tree.
    let mut visited = vec![false; pattern.len()];
    visited[root.0] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    while let Some(cur) = queue.pop_front() {
        for (next, et) in pattern.incident(tgdb, cur) {
            if visited[next.0] {
                continue;
            }
            visited[next.0] = true;
            rel = rel.expand(tgdb, et, cur, next, &pattern.node(next).filter)?;
            queue.push_back(next);
        }
    }
    Ok(rel)
}

/// Computes the per-node participating sets with two passes over the
/// pattern tree (Yannakakis), avoiding the full cross product.
pub fn match_primary(tgdb: &Tgdb, pattern: &QueryPattern) -> Result<MatchResult> {
    pattern.validate(tgdb)?;
    let n = pattern.len();
    let root = pattern.primary;

    // Tree orders: parents/children from the primary root.
    let mut parent: Vec<Option<(PatternNodeId, etable_tgm::EdgeTypeId)>> = vec![None; n];
    let mut order = Vec::with_capacity(n); // BFS pre-order
    let mut visited = vec![false; n];
    visited[root.0] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    while let Some(cur) = queue.pop_front() {
        order.push(cur);
        for (next, et) in pattern.incident(tgdb, cur) {
            if !visited[next.0] {
                visited[next.0] = true;
                // Store the child -> parent direction for the upward pass.
                parent[next.0] = Some((cur, tgdb.schema.edge_type(et).reverse));
                queue.push_back(next);
            }
        }
    }

    // Initial candidates: local filters only.
    let mut allowed_sets: Vec<HashSet<NodeId>> = Vec::with_capacity(n);
    for id in pattern.node_ids() {
        let node = pattern.node(id);
        let mut set = HashSet::new();
        for &v in tgdb.instances.nodes_of_type(node.node_type) {
            if node.filter.eval(tgdb, v)? {
                set.insert(v);
            }
        }
        allowed_sets.push(set);
    }

    // Upward pass (post-order): a node survives only if, for every child,
    // it has at least one allowed neighbor.
    for &cur in order.iter().rev() {
        let children: Vec<(PatternNodeId, etable_tgm::EdgeTypeId)> = pattern
            .incident(tgdb, cur)
            .into_iter()
            .filter(|(nb, _)| parent[nb.0].map(|(p, _)| p) == Some(cur))
            .collect();
        if children.is_empty() {
            continue;
        }
        let survivors: HashSet<NodeId> = allowed_sets[cur.0]
            .iter()
            .copied()
            .filter(|&v| {
                children.iter().all(|&(child, et)| {
                    tgdb.instances
                        .neighbors(et, v)
                        .iter()
                        .any(|nb| allowed_sets[child.0].contains(nb))
                })
            })
            .collect();
        allowed_sets[cur.0] = survivors;
    }

    // Downward pass (pre-order): a node survives only if it has an allowed
    // parent.
    for &cur in &order {
        if let Some((p, up_edge)) = parent[cur.0] {
            let survivors: HashSet<NodeId> = allowed_sets[cur.0]
                .iter()
                .copied()
                .filter(|&v| {
                    tgdb.instances
                        .neighbors(up_edge, v)
                        .iter()
                        .any(|nb| allowed_sets[p.0].contains(nb))
                })
                .collect();
            allowed_sets[cur.0] = survivors;
        }
    }

    // Materialize ordered vectors (instance insertion order for determinism).
    let mut allowed = Vec::with_capacity(n);
    for id in pattern.node_ids() {
        let node = pattern.node(id);
        let ordered: Vec<NodeId> = tgdb
            .instances
            .nodes_of_type(node.node_type)
            .iter()
            .copied()
            .filter(|v| allowed_sets[id.0].contains(v))
            .collect();
        allowed.push(ordered);
    }

    Ok(MatchResult {
        pattern: pattern.clone(),
        allowed,
        allowed_sets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::pattern::NodeFilter;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    /// The Figure 6 / Figure 7 query: SIGMOD papers after 2005 by authors at
    /// Korean institutions, pivoted to Authors.
    fn korea_pattern(tgdb: &etable_tgm::Tgdb) -> QueryPattern {
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = ops::initiate(tgdb, confs).unwrap();
        let q = ops::select(tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap();
        let (pe, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        let q = ops::add(tgdb, &q, pe).unwrap();
        let q = ops::select(tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2005)).unwrap();
        let papers_ty = q.primary_node().node_type;
        let (ae, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = ops::add(tgdb, &q, ae).unwrap();
        let authors_ty = q.primary_node().node_type;
        let (ie, _) = tgdb
            .schema
            .outgoing_by_name(authors_ty, "Institutions")
            .unwrap();
        let q = ops::add(tgdb, &q, ie).unwrap();
        let q = ops::select(tgdb, &q, NodeFilter::like("country", "%Korea%")).unwrap();
        ops::shift(&q, crate::pattern::PatternNodeId(2)).unwrap()
    }

    #[test]
    fn single_node_pattern_lists_type() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let m = match_primary(&tgdb, &q).unwrap();
        assert_eq!(m.rows().len(), 4);
        let full = match_full(&tgdb, &q).unwrap();
        assert_eq!(full.len(), 4);
    }

    #[test]
    fn filters_restrict_rows() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Ge, 2012)).unwrap();
        let m = match_primary(&tgdb, &q).unwrap();
        assert_eq!(m.rows().len(), 2); // SkewTune 2012, Deep stuff 2014
    }

    #[test]
    fn join_pattern_restricts_both_sides() {
        // Papers at SIGMOD: adding the filtered conference node restricts
        // papers; no Korea authors wrote SIGMOD papers after 2005 except...
        let tgdb = academic_tgdb();
        let q = korea_pattern(&tgdb);
        let m = match_primary(&tgdb, &q).unwrap();
        // SIGMOD ∧ year>2005: papers 10 (2007) and 11 (2012).
        // Their authors: Jagadish, Nandi (MI), Kwon (UW) — none in Korea.
        assert!(m.rows().is_empty());
    }

    #[test]
    fn kdd_variant_finds_korean_author() {
        let tgdb = academic_tgdb();
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = ops::initiate(&tgdb, confs).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "KDD")).unwrap();
        let (pe, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        let q = ops::add(&tgdb, &q, pe).unwrap();
        let papers_ty = q.primary_node().node_type;
        let (ae, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let authors_ty = q.primary_node().node_type;
        let (ie, _) = tgdb
            .schema
            .outgoing_by_name(authors_ty, "Institutions")
            .unwrap();
        let q = ops::add(&tgdb, &q, ie).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::like("country", "%Korea%")).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(2)).unwrap();
        let m = match_primary(&tgdb, &q).unwrap();
        let names: Vec<String> = m
            .rows()
            .iter()
            .map(|&a| tgdb.instances.label(&tgdb.schema, a))
            .collect();
        assert_eq!(names, vec!["Minsuk Kim"]);
    }

    #[test]
    fn full_and_primary_agree_on_projections() {
        let tgdb = academic_tgdb();
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = ops::initiate(&tgdb, confs).unwrap();
        let (pe, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        let q = ops::add(&tgdb, &q, pe).unwrap();
        let papers_ty = q.primary_node().node_type;
        let (ae, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let full = match_full(&tgdb, &q).unwrap();
        let prim = match_primary(&tgdb, &q).unwrap();
        for id in q.node_ids() {
            let mut a: Vec<_> = full.distinct_nodes(id).unwrap();
            let mut b = prim.allowed[id.0].clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "projection mismatch at {id}");
        }
    }

    #[test]
    fn related_returns_row_scoped_sets() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (ae, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(0)).unwrap();
        let m = match_primary(&tgdb, &q).unwrap();
        let usable = tgdb.node_by_pk(papers, &10.into()).unwrap();
        let related = m
            .related(&tgdb, usable, crate::pattern::PatternNodeId(1))
            .unwrap();
        let names: Vec<String> = related
            .iter()
            .map(|&a| tgdb.instances.label(&tgdb.schema, a))
            .collect();
        assert_eq!(names, vec!["H. V. Jagadish", "Arnab Nandi"]);
    }

    #[test]
    fn related_respects_downstream_filters() {
        // Papers -> Authors{Korea institutions}: for "Guided interaction"
        // only Kim remains even though Nandi also co-authored.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (ae, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let authors_ty = q.primary_node().node_type;
        let (ie, _) = tgdb
            .schema
            .outgoing_by_name(authors_ty, "Institutions")
            .unwrap();
        let q = ops::add(&tgdb, &q, ie).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::like("country", "%Korea%")).unwrap();
        let q = ops::shift(&q, crate::pattern::PatternNodeId(0)).unwrap();
        let m = match_primary(&tgdb, &q).unwrap();
        let guided = tgdb.node_by_pk(papers, &12.into()).unwrap();
        assert!(m.rows().contains(&guided));
        let authors = m
            .related(&tgdb, guided, crate::pattern::PatternNodeId(1))
            .unwrap();
        let names: Vec<String> = authors
            .iter()
            .map(|&a| tgdb.instances.label(&tgdb.schema, a))
            .collect();
        assert_eq!(names, vec!["Minsuk Kim"]);
    }

    #[test]
    fn self_relationship_directions_differ() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        // Papers that reference something.
        let q = ops::initiate(&tgdb, papers).unwrap();
        let (refd, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Papers (referenced)")
            .unwrap();
        let q1 = ops::add(&tgdb, &q, refd).unwrap();
        let q1 = ops::shift(&q1, crate::pattern::PatternNodeId(0)).unwrap();
        let m1 = match_primary(&tgdb, &q1).unwrap();
        assert_eq!(m1.rows().len(), 3); // 11, 12, 13 cite something
                                        // Papers that are referenced by something.
        let (refg, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Papers (referencing)")
            .unwrap();
        let q2 = ops::add(&tgdb, &q, refg).unwrap();
        let q2 = ops::shift(&q2, crate::pattern::PatternNodeId(0)).unwrap();
        let m2 = match_primary(&tgdb, &q2).unwrap();
        assert_eq!(m2.rows().len(), 3); // 10, 11, 12 are cited
    }

    #[test]
    fn empty_result_propagates() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 3000)).unwrap();
        let (ae, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let q = ops::add(&tgdb, &q, ae).unwrap();
        let m = match_primary(&tgdb, &q).unwrap();
        assert!(m.rows().is_empty());
        assert!(m.allowed[0].is_empty());
        let full = match_full(&tgdb, &q).unwrap();
        assert!(full.is_empty());
    }
}
