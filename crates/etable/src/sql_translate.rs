//! Bidirectional translation between ETable query patterns and SQL (§8).
//!
//! * [`to_sql`] renders the paper's general SQL pattern
//!   (`SELECT τa.*, ent-list(t1), ... GROUP BY τa`) for display;
//! * [`to_primary_sql`] emits an *executable* SQL query over the original
//!   relational database returning the distinct primary keys of the matched
//!   primary nodes — the relational equivalent of `Π_τa(m(Q))`;
//! * [`from_sql`] translates a typical FK–PK join query into an equivalent
//!   ETable query pattern, following the three steps of §8.
//!
//! Together these witness the paper's expressiveness claim: any join query
//! over FK–PK relationships on a schema meeting the Appendix A assumptions
//! has an equivalent ETable query (round-trip tested in `tests/`).

use crate::pattern::{
    FilterAtom, NodeFilter, PatternEdge, PatternNode, PatternNodeId, QueryPattern,
};
use crate::{Error, Result};
use etable_relational::database::Database;
use etable_relational::expr::CmpOp;
use etable_relational::sql::ast::{Query, SelectItem, SqlExpr, Statement};
use etable_relational::value::Value;
use etable_tgm::{EdgeProvenance, NodeTypeKind, Tgdb};
use std::collections::BTreeMap;
use std::fmt::Write;

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.as_str().replace('\'', "''")),
        other => other.to_string(),
    }
}

/// How a pattern node's attribute values are reachable in SQL.
#[derive(Debug, Clone)]
enum NodeRepr {
    /// An aliased entity table; `pk` is its primary-key column name.
    Entity { alias: String, pk: String },
    /// A value node (MVA or categorical); `expr` is the SQL expression that
    /// yields the value (e.g. `m0.keyword` or `t1.year`).
    ValueExpr { expr: String },
}

impl NodeRepr {
    fn attr_expr(&self, attr: &str) -> String {
        match self {
            NodeRepr::Entity { alias, .. } => format!("{alias}.{attr}"),
            NodeRepr::ValueExpr { expr } => expr.clone(),
        }
    }

    fn key_expr(&self) -> String {
        match self {
            NodeRepr::Entity { alias, pk } => format!("{alias}.{pk}"),
            NodeRepr::ValueExpr { expr } => expr.clone(),
        }
    }
}

struct SqlBuilder<'a> {
    tgdb: &'a Tgdb,
    db: &'a Database,
    from: Vec<String>,
    conditions: Vec<String>,
    reprs: Vec<Option<NodeRepr>>,
    next_aux: usize,
}

impl<'a> SqlBuilder<'a> {
    fn new(tgdb: &'a Tgdb, db: &'a Database, n: usize) -> Self {
        SqlBuilder {
            tgdb,
            db,
            from: Vec::new(),
            conditions: Vec::new(),
            reprs: vec![None; n],
            next_aux: 0,
        }
    }

    fn pk_of(&self, table: &str) -> Result<String> {
        let schema = self
            .db
            .table(table)
            .map_err(|e| Error::SqlTranslate(e.to_string()))?
            .schema();
        schema
            .primary_key
            .first()
            .cloned()
            .ok_or_else(|| Error::SqlTranslate(format!("table `{table}` has no primary key")))
    }

    /// Registers the base representation of an entity pattern node (value
    /// nodes are resolved when their connecting edge is processed).
    fn init_entity(&mut self, id: PatternNodeId, pattern: &QueryPattern) -> Result<()> {
        let nt = self.tgdb.schema.node_type(pattern.node(id).node_type);
        if nt.kind == NodeTypeKind::Entity {
            let alias = format!("t{}", id.0);
            let table = nt.source_table.clone();
            let pk = self.pk_of(&table)?;
            self.from.push(format!("{table} {alias}"));
            self.reprs[id.0] = Some(NodeRepr::Entity { alias, pk });
        }
        Ok(())
    }

    fn repr(&self, id: PatternNodeId) -> Result<&NodeRepr> {
        self.reprs[id.0]
            .as_ref()
            .ok_or_else(|| Error::SqlTranslate(format!("pattern node {id} not representable")))
    }

    /// Emits joins for one pattern edge, creating value-node representations
    /// as a side effect.
    fn process_edge(&mut self, e: &PatternEdge) -> Result<()> {
        let et = self.tgdb.schema.edge_type(e.edge_type);
        // Occurrences playing the forward-source and forward-target roles.
        let (fsrc, ftgt) = if et.forward {
            (e.from, e.to)
        } else {
            (e.to, e.from)
        };
        match et.provenance.clone() {
            EdgeProvenance::ForeignKey { column, .. } => {
                // forward-source is the referencing entity.
                let src = self.repr(fsrc)?.clone();
                let tgt = self.repr(ftgt)?.clone();
                self.conditions
                    .push(format!("{} = {}", src.attr_expr(&column), tgt.key_expr()));
            }
            EdgeProvenance::Relation {
                table,
                left_col,
                right_col,
            } => {
                let alias = format!("j{}", self.next_aux);
                self.next_aux += 1;
                self.from.push(format!("{table} {alias}"));
                let src = self.repr(fsrc)?.clone();
                let tgt = self.repr(ftgt)?.clone();
                self.conditions
                    .push(format!("{alias}.{left_col} = {}", src.key_expr()));
                self.conditions
                    .push(format!("{alias}.{right_col} = {}", tgt.key_expr()));
            }
            EdgeProvenance::MultiValued {
                table,
                fk_col,
                value_col,
            } => {
                // The entity plays the forward-source role; the value node
                // is the forward target.
                let alias = format!("m{}", self.next_aux);
                self.next_aux += 1;
                self.from.push(format!("{table} {alias}"));
                let owner = self.repr(fsrc)?.clone();
                self.conditions
                    .push(format!("{alias}.{fk_col} = {}", owner.key_expr()));
                let expr = format!("{alias}.{value_col}");
                match &self.reprs[ftgt.0] {
                    None => self.reprs[ftgt.0] = Some(NodeRepr::ValueExpr { expr }),
                    Some(existing) => {
                        // A second edge into the same value node: the values
                        // seen along both paths must agree.
                        let prev = existing.key_expr();
                        self.conditions.push(format!("{expr} = {prev}"));
                    }
                }
            }
            EdgeProvenance::Categorical { column, .. } => {
                let owner = self.repr(fsrc)?.clone();
                let expr = owner.attr_expr(&column);
                match &self.reprs[ftgt.0] {
                    None => self.reprs[ftgt.0] = Some(NodeRepr::ValueExpr { expr }),
                    Some(existing) => {
                        let prev = existing.key_expr();
                        self.conditions.push(format!("{expr} = {prev}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Emits WHERE conditions for one pattern node's filter.
    fn process_filter(&mut self, pattern: &QueryPattern, id: PatternNodeId) -> Result<()> {
        let node = pattern.node(id);
        for atom in node.filter.atoms.clone() {
            let cond = match &atom {
                FilterAtom::Cmp { attr, op, value } => {
                    let lhs = self.repr(id)?.attr_expr(attr);
                    format!("{lhs} {op} {}", sql_literal(value))
                }
                FilterAtom::Like { attr, pattern } => {
                    let lhs = self.repr(id)?.attr_expr(attr);
                    format!("{lhs} LIKE '{}'", pattern.replace('\'', "''"))
                }
                FilterAtom::NotLike { attr, pattern } => {
                    let lhs = self.repr(id)?.attr_expr(attr);
                    format!("{lhs} NOT LIKE '{}'", pattern.replace('\'', "''"))
                }
                FilterAtom::In { attr, values } => {
                    let lhs = self.repr(id)?.attr_expr(attr);
                    let list = values
                        .iter()
                        .map(sql_literal)
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("{lhs} IN ({list})")
                }
                FilterAtom::IsNull { attr } => {
                    let lhs = self.repr(id)?.attr_expr(attr);
                    format!("{lhs} IS NULL")
                }
                FilterAtom::NodeIs(n) => {
                    let repr = self.repr(id)?.clone();
                    match &repr {
                        NodeRepr::Entity { pk, .. } => {
                            let nt = self.tgdb.schema.node_type(node.node_type);
                            let pk_attr = nt.attr_index(pk).ok_or_else(|| {
                                Error::SqlTranslate(format!(
                                    "primary key `{pk}` is not an attribute of `{}`",
                                    nt.name
                                ))
                            })?;
                            let v = &self.tgdb.instances.node(*n).values[pk_attr];
                            format!("{} = {}", repr.key_expr(), sql_literal(v))
                        }
                        NodeRepr::ValueExpr { expr } => {
                            let v = &self.tgdb.instances.node(*n).values[0];
                            format!("{expr} = {}", sql_literal(v))
                        }
                    }
                }
                FilterAtom::NeighborLabelLike { edge, pattern: pat } => {
                    // Materialize the neighbor as an extra join: sound under
                    // SELECT DISTINCT (the paper translates these filters to
                    // subqueries; a semi-join is the equivalent here).
                    self.neighbor_label_join(id, *edge, pat)?
                }
            };
            self.conditions.push(cond);
        }
        Ok(())
    }

    /// Builds the join + LIKE condition for a neighbor-label filter and
    /// returns the LIKE condition (joins are appended directly).
    fn neighbor_label_join(
        &mut self,
        id: PatternNodeId,
        edge: etable_tgm::EdgeTypeId,
        like_pattern: &str,
    ) -> Result<String> {
        let et = self.tgdb.schema.edge_type(edge);
        let owner = self.repr(id)?.clone();
        let target_nt = self.tgdb.schema.node_type(et.target);
        let like = |expr: String| format!("{expr} LIKE '{}'", like_pattern.replace('\'', "''"));
        match et.provenance.clone() {
            EdgeProvenance::ForeignKey { table, column } => {
                let alias = format!("x{}", self.next_aux);
                self.next_aux += 1;
                let label_col = target_nt.attrs[target_nt.label_attr].name.clone();
                if et.forward {
                    // owner is the referencing side: join the referenced table.
                    let tgt_table = target_nt.source_table.clone();
                    let pk = self.pk_of(&tgt_table)?;
                    self.from.push(format!("{tgt_table} {alias}"));
                    self.conditions
                        .push(format!("{} = {alias}.{pk}", owner.attr_expr(&column)));
                } else {
                    // owner is referenced: join the referencing table.
                    self.from.push(format!("{table} {alias}"));
                    let owner_key = owner.key_expr();
                    self.conditions
                        .push(format!("{alias}.{column} = {owner_key}"));
                }
                Ok(like(format!("{alias}.{label_col}")))
            }
            EdgeProvenance::Relation {
                table,
                left_col,
                right_col,
            } => {
                let jalias = format!("x{}", self.next_aux);
                self.next_aux += 1;
                let ealias = format!("x{}", self.next_aux);
                self.next_aux += 1;
                let (own_col, other_col) = if et.forward {
                    (left_col, right_col)
                } else {
                    (right_col, left_col)
                };
                let tgt_table = target_nt.source_table.clone();
                let pk = self.pk_of(&tgt_table)?;
                let label_col = target_nt.attrs[target_nt.label_attr].name.clone();
                self.from.push(format!("{table} {jalias}"));
                self.from.push(format!("{tgt_table} {ealias}"));
                self.conditions
                    .push(format!("{jalias}.{own_col} = {}", owner.key_expr()));
                self.conditions
                    .push(format!("{jalias}.{other_col} = {ealias}.{pk}"));
                Ok(like(format!("{ealias}.{label_col}")))
            }
            EdgeProvenance::MultiValued {
                table,
                fk_col,
                value_col,
            } => {
                let alias = format!("x{}", self.next_aux);
                self.next_aux += 1;
                self.from.push(format!("{table} {alias}"));
                self.conditions
                    .push(format!("{alias}.{fk_col} = {}", owner.key_expr()));
                Ok(like(format!("{alias}.{value_col}")))
            }
            EdgeProvenance::Categorical { column, .. } => Ok(like(owner.attr_expr(&column))),
        }
    }
}

/// Walks the pattern and fills a [`SqlBuilder`].
fn build<'a>(tgdb: &'a Tgdb, db: &'a Database, pattern: &QueryPattern) -> Result<SqlBuilder<'a>> {
    pattern.validate(tgdb)?;
    let mut b = SqlBuilder::new(tgdb, db, pattern.len());
    for id in pattern.node_ids() {
        b.init_entity(id, pattern)?;
    }
    // Process edges in BFS order from the primary so value-node
    // representations exist before dependent edges/conditions.
    let mut visited = vec![false; pattern.len()];
    visited[pattern.primary.0] = true;
    let mut queue = std::collections::VecDeque::from([pattern.primary]);
    let mut edge_order: Vec<PatternEdge> = Vec::new();
    while let Some(cur) = queue.pop_front() {
        for e in &pattern.edges {
            let other = if e.from == cur {
                e.to
            } else if e.to == cur {
                e.from
            } else {
                continue;
            };
            if !visited[other.0] {
                visited[other.0] = true;
                edge_order.push(*e);
                queue.push_back(other);
            }
        }
    }
    for e in &edge_order {
        b.process_edge(e)?;
    }
    for id in pattern.node_ids() {
        b.process_filter(pattern, id)?;
    }
    Ok(b)
}

/// Renders the paper's general SQL pattern (§8) for display:
/// `SELECT τa.*, ent-list(t1), ... FROM ... WHERE ... GROUP BY τa`.
///
/// `ent_list` is the pseudo-aggregate the paper compares to PostgreSQL's
/// `json_agg`; the output is documentation, not an executable query.
pub fn to_sql(tgdb: &Tgdb, db: &Database, pattern: &QueryPattern) -> Result<String> {
    let b = build(tgdb, db, pattern)?;
    let primary = b.repr(pattern.primary)?.clone();
    let mut select_items = vec![match &primary {
        NodeRepr::Entity { alias, .. } => format!("{alias}.*"),
        NodeRepr::ValueExpr { expr } => expr.clone(),
    }];
    for id in pattern.node_ids() {
        if id == pattern.primary {
            continue;
        }
        select_items.push(format!("ent_list({})", b.repr(id)?.key_expr()));
    }
    let mut sql = String::new();
    let _ = write!(sql, "SELECT {}", select_items.join(", "));
    let _ = write!(sql, " FROM {}", b.from.join(", "));
    if !b.conditions.is_empty() {
        let _ = write!(sql, " WHERE {}", b.conditions.join(" AND "));
    }
    let _ = write!(sql, " GROUP BY {}", primary.key_expr());
    Ok(sql)
}

/// Emits an executable SQL query over the original relational database that
/// returns the distinct primary keys (or values, for MVA/categorical
/// primaries) of the matched primary nodes: `Π_τa(m(Q))` in SQL.
pub fn to_primary_sql(tgdb: &Tgdb, db: &Database, pattern: &QueryPattern) -> Result<String> {
    let b = build(tgdb, db, pattern)?;
    let primary = b.repr(pattern.primary)?.key_expr();
    let mut sql = format!("SELECT DISTINCT {primary} FROM {}", b.from.join(", "));
    if !b.conditions.is_empty() {
        let _ = write!(sql, " WHERE {}", b.conditions.join(" AND "));
    }
    Ok(sql)
}

// ---------------------------------------------------------------------------
// SQL -> ETable (§8's three translation steps)
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Slot {
    /// An entity table alias, mapping to a pattern node.
    Entity { table: String, node: usize },
    /// A relationship (junction) table alias: collects its two bindings as
    /// join conditions arrive.
    Junction {
        table: String,
        left_col: String,
        right_col: String,
        left_bind: Option<usize>,
        right_bind: Option<usize>,
    },
    /// An MVA table alias: owner binding plus the created value node.
    Mva {
        table: String,
        fk_col: String,
        value_col: String,
        owner_bind: Option<usize>,
        node: usize,
    },
}

/// Translates a FK–PK join query into an equivalent ETable query pattern.
///
/// Follows §8: (1) the FROM list and equi-join conditions become node
/// occurrences and edge types; (2) remaining selection conditions become
/// node conditions; (3) the GROUP BY attribute (or the first entity table)
/// becomes the primary node type.
///
/// Set operations, disjunctive join graphs and non-FK join conditions are
/// rejected, matching the paper's stated scope ("core relational algebra").
pub fn from_sql(tgdb: &Tgdb, db: &Database, sql: &str) -> Result<QueryPattern> {
    let stmt = etable_relational::sql::parse_statement(sql)
        .map_err(|e| Error::SqlTranslate(e.to_string()))?;
    let Statement::Select(q) = stmt else {
        return Err(Error::SqlTranslate("expected a SELECT query".into()));
    };
    from_query(tgdb, db, &q)
}

/// [`from_sql`] over a pre-parsed query.
pub fn from_query(tgdb: &Tgdb, db: &Database, q: &Query) -> Result<QueryPattern> {
    // Collect table refs and conjuncts.
    let mut refs: Vec<(String, String)> = Vec::new(); // (alias, table)
    for t in &q.from {
        refs.push((t.effective_alias().to_string(), t.table.clone()));
    }
    let mut conjuncts: Vec<SqlExpr> = Vec::new();
    for j in &q.joins {
        refs.push((j.table.effective_alias().to_string(), j.table.table.clone()));
        conjuncts.extend(j.on.conjuncts().into_iter().cloned());
    }
    if let Some(w) = &q.where_clause {
        conjuncts.extend(w.conjuncts().into_iter().cloned());
    }

    // Step 1a: classify FROM items into slots.
    let mut nodes: Vec<PatternNode> = Vec::new();
    let mut slots: BTreeMap<String, Slot> = BTreeMap::new();
    for (alias, table) in &refs {
        if slots.contains_key(alias) {
            return Err(Error::SqlTranslate(format!("duplicate alias `{alias}`")));
        }
        let cat = tgdb.categories.get(table).ok_or_else(|| {
            Error::SqlTranslate(format!("table `{table}` is unknown to the TGDB"))
        })?;
        match cat {
            etable_tgm::RelationCategory::Entity => {
                let (nt, _) = tgdb
                    .schema
                    .node_type_by_name(table)
                    .ok_or_else(|| Error::SqlTranslate(format!("no node type for `{table}`")))?;
                nodes.push(PatternNode {
                    node_type: nt,
                    filter: NodeFilter::none(),
                });
                slots.insert(
                    alias.clone(),
                    Slot::Entity {
                        table: table.clone(),
                        node: nodes.len() - 1,
                    },
                );
            }
            etable_tgm::RelationCategory::Relationship { left_fk, right_fk } => {
                slots.insert(
                    alias.clone(),
                    Slot::Junction {
                        table: table.clone(),
                        left_col: left_fk.clone(),
                        right_col: right_fk.clone(),
                        left_bind: None,
                        right_bind: None,
                    },
                );
            }
            etable_tgm::RelationCategory::MultiValuedAttr { fk_col, value_col } => {
                let nt_name = format!("{table}: {value_col}");
                let (nt, _) = tgdb.schema.node_type_by_name(&nt_name).ok_or_else(|| {
                    Error::SqlTranslate(format!("no node type for MVA `{nt_name}`"))
                })?;
                nodes.push(PatternNode {
                    node_type: nt,
                    filter: NodeFilter::none(),
                });
                slots.insert(
                    alias.clone(),
                    Slot::Mva {
                        table: table.clone(),
                        fk_col: fk_col.clone(),
                        value_col: value_col.clone(),
                        owner_bind: None,
                        node: nodes.len() - 1,
                    },
                );
            }
        }
    }

    let resolve_alias = |name: &str| -> Result<(String, String)> {
        if let Some((a, c)) = name.split_once('.') {
            Ok((a.to_string(), c.to_string()))
        } else {
            // Unqualified: unique owner among the referenced tables.
            let mut found = None;
            for (alias, table) in &refs {
                let schema = db
                    .table(table)
                    .map_err(|e| Error::SqlTranslate(e.to_string()))?
                    .schema();
                if schema.column_index(name).is_some() {
                    if found.is_some() {
                        return Err(Error::SqlTranslate(format!("ambiguous column `{name}`")));
                    }
                    found = Some((alias.clone(), name.to_string()));
                }
            }
            found.ok_or_else(|| Error::SqlTranslate(format!("unknown column `{name}`")))
        }
    };

    // Step 1b: process equi-join conjuncts; the rest become conditions.
    // Entity-entity FK joins are collected with both orientations and
    // resolved against the schema's FK edge types afterwards.
    let mut fk_joins: Vec<(String, String, String, String)> = Vec::new();
    let mut residual: Vec<(String, String, SqlExpr)> = Vec::new(); // (alias, col, expr)
    for c in &conjuncts {
        if let SqlExpr::Cmp(CmpOp::Eq, a, b) = c {
            if let (SqlExpr::Column(ca), SqlExpr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                let (aa, cola) = resolve_alias(ca)?;
                let (ab, colb) = resolve_alias(cb)?;
                if aa != ab {
                    process_join(&mut slots, &mut fk_joins, &aa, &cola, &ab, &colb)?;
                    continue;
                }
            }
        }
        // Single-alias predicate?
        let names = c.referenced_names();
        if names.is_empty() {
            return Err(Error::SqlTranslate(format!(
                "unsupported constant predicate `{c}`"
            )));
        }
        let mut aliases: Vec<String> = Vec::new();
        let mut first_col = String::new();
        for n in &names {
            let (a, col) = resolve_alias(n)?;
            if first_col.is_empty() {
                first_col = col;
            }
            aliases.push(a);
        }
        aliases.dedup();
        if aliases.len() != 1 {
            return Err(Error::SqlTranslate(format!(
                "predicate `{c}` spans multiple tables and is not an equi-join"
            )));
        }
        residual.push((aliases[0].clone(), first_col, c.clone()));
    }

    // FK joins between entity slots -> FK edges (try both orientations).
    let mut edges: Vec<PatternEdge> = Vec::new();
    for (alias_a, col_a, alias_b, col_b) in &fk_joins {
        let (
            Some(Slot::Entity {
                table: ta,
                node: na,
            }),
            Some(Slot::Entity {
                table: tb,
                node: nb,
            }),
        ) = (slots.get(alias_a), slots.get(alias_b))
        else {
            return Err(Error::SqlTranslate(format!(
                "FK join on non-entity aliases `{alias_a}`/`{alias_b}`"
            )));
        };
        let (ta, na, tb, nb) = (ta.clone(), *na, tb.clone(), *nb);
        let candidates = [
            (ta.clone(), col_a.clone(), na, nb),
            (tb.clone(), col_b.clone(), nb, na),
        ];
        let mut resolved = None;
        for (table, col, src, tgt) in candidates {
            let src_ty = nodes[src].node_type;
            if let Some((id, _)) = tgdb.schema.edge_types().find(|(_, e)| {
                e.forward
                    && e.source == src_ty
                    && matches!(&e.provenance, EdgeProvenance::ForeignKey { table: t, column: c }
                        if *t == table && *c == col)
            }) {
                resolved = Some(PatternEdge {
                    edge_type: id,
                    from: PatternNodeId(src),
                    to: PatternNodeId(tgt),
                });
                break;
            }
        }
        edges.push(resolved.ok_or_else(|| {
            Error::SqlTranslate(format!(
                "join `{alias_a}.{col_a} = {alias_b}.{col_b}` does not follow a \
                 foreign key"
            ))
        })?);
    }

    // Junction and MVA slots -> M:N / MVA edges.
    for (alias, slot) in &slots {
        match slot {
            Slot::Entity { .. } => {}
            Slot::Junction {
                table,
                left_bind,
                right_bind,
                ..
            } => {
                let (Some(l), Some(r)) = (left_bind, right_bind) else {
                    return Err(Error::SqlTranslate(format!(
                        "junction `{alias}` is not joined on both foreign keys"
                    )));
                };
                let src_ty = nodes[*l].node_type;
                let et = tgdb
                    .schema
                    .edge_types()
                    .find(|(_, e)| {
                        e.forward
                            && e.source == src_ty
                            && matches!(&e.provenance, EdgeProvenance::Relation { table: t, .. }
                                if t == table)
                    })
                    .map(|(id, _)| id)
                    .ok_or_else(|| {
                        Error::SqlTranslate(format!("no M:N edge type for `{table}`"))
                    })?;
                edges.push(PatternEdge {
                    edge_type: et,
                    from: PatternNodeId(*l),
                    to: PatternNodeId(*r),
                });
            }
            Slot::Mva {
                table,
                owner_bind,
                node,
                ..
            } => {
                let Some(owner) = owner_bind else {
                    return Err(Error::SqlTranslate(format!(
                        "MVA table `{alias}` is not joined to its owner"
                    )));
                };
                let src_ty = nodes[*owner].node_type;
                let et = tgdb
                    .schema
                    .edge_types()
                    .find(|(_, e)| {
                        e.forward
                            && e.source == src_ty
                            && matches!(&e.provenance, EdgeProvenance::MultiValued { table: t, .. }
                                if t == table)
                    })
                    .map(|(id, _)| id)
                    .ok_or_else(|| {
                        Error::SqlTranslate(format!("no MVA edge type for `{table}`"))
                    })?;
                edges.push(PatternEdge {
                    edge_type: et,
                    from: PatternNodeId(*owner),
                    to: PatternNodeId(*node),
                });
            }
        }
    }

    // Step 2: selection conditions onto node filters.
    for (alias, col, expr) in &residual {
        let (node_idx, attr) = match slots.get(alias) {
            Some(Slot::Entity { node, .. }) => (*node, col.clone()),
            Some(Slot::Mva {
                node, value_col, ..
            }) => {
                if col != value_col {
                    return Err(Error::SqlTranslate(format!(
                        "condition on MVA key column `{alias}.{col}` is unsupported"
                    )));
                }
                (*node, value_col.clone())
            }
            Some(Slot::Junction { .. }) => {
                return Err(Error::SqlTranslate(format!(
                    "condition on junction table `{alias}` is unsupported (the \
                     translation ignores relationship attributes)"
                )))
            }
            None => {
                return Err(Error::SqlTranslate(format!("unknown alias `{alias}`")));
            }
        };
        let atom = sql_condition_to_atom(expr, &attr)?;
        nodes[node_idx].filter.atoms.push(atom);
    }

    // Step 3: primary from GROUP BY, else the first entity in FROM ("if no
    // group by attribute exists, arbitrarily set a primary node type").
    let primary = if let Some(SqlExpr::Column(name)) = q.group_by.first() {
        let (alias, _) = resolve_alias(name)?;
        match slots.get(&alias) {
            Some(Slot::Entity { node, .. }) => PatternNodeId(*node),
            Some(Slot::Mva { node, .. }) => PatternNodeId(*node),
            _ => {
                return Err(Error::SqlTranslate(format!(
                    "GROUP BY alias `{alias}` is not an entity or value node"
                )))
            }
        }
    } else {
        refs.iter()
            .find_map(|(a, _)| match slots.get(a) {
                Some(Slot::Entity { node, .. }) => Some(PatternNodeId(*node)),
                Some(Slot::Mva { node, .. }) => Some(PatternNodeId(*node)),
                _ => None,
            })
            .ok_or_else(|| Error::SqlTranslate("no entity table in FROM".into()))?
    };

    // Global aggregates without grouping have no primary entity to pivot on.
    if q.items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        && q.group_by.is_empty()
    {
        return Err(Error::SqlTranslate(
            "global aggregates have no ETable equivalent (no primary entity)".into(),
        ));
    }

    let pattern = QueryPattern {
        nodes,
        edges,
        primary,
    };
    pattern.validate(tgdb).map_err(|e| {
        Error::SqlTranslate(format!(
            "join graph is not a connected tree over entities: {e}"
        ))
    })?;
    Ok(pattern)
}

/// Registers one cross-alias equi-join into the slot bindings.
fn process_join(
    slots: &mut BTreeMap<String, Slot>,
    fk_joins: &mut Vec<(String, String, String, String)>,
    alias_a: &str,
    col_a: &str,
    alias_b: &str,
    col_b: &str,
) -> Result<()> {
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum JoinSide {
        Entity,
        JunctionLeft,
        JunctionRight,
        MvaFk,
        Other,
    }
    let classify = |alias: &str, col: &str, slots: &BTreeMap<String, Slot>| -> JoinSide {
        match slots.get(alias) {
            Some(Slot::Junction {
                left_col,
                right_col,
                ..
            }) => {
                if col == left_col {
                    JoinSide::JunctionLeft
                } else if col == right_col {
                    JoinSide::JunctionRight
                } else {
                    JoinSide::Other
                }
            }
            Some(Slot::Mva { fk_col, .. }) => {
                if col == fk_col {
                    JoinSide::MvaFk
                } else {
                    JoinSide::Other
                }
            }
            Some(Slot::Entity { .. }) => JoinSide::Entity,
            None => JoinSide::Other,
        }
    };
    let side_a = classify(alias_a, col_a, slots);
    let side_b = classify(alias_b, col_b, slots);
    let entity_index = |alias: &str, slots: &BTreeMap<String, Slot>| -> Result<usize> {
        match slots.get(alias) {
            Some(Slot::Entity { node, .. }) => Ok(*node),
            _ => Err(Error::SqlTranslate(format!(
                "expected entity alias, got `{alias}`"
            ))),
        }
    };
    match (side_a, side_b) {
        (JoinSide::Entity, JoinSide::Entity) => {
            fk_joins.push((
                alias_a.to_string(),
                col_a.to_string(),
                alias_b.to_string(),
                col_b.to_string(),
            ));
            Ok(())
        }
        (JoinSide::JunctionLeft, JoinSide::Entity) => {
            bind_junction(slots, alias_a, true, entity_index(alias_b, slots)?)
        }
        (JoinSide::Entity, JoinSide::JunctionLeft) => {
            bind_junction(slots, alias_b, true, entity_index(alias_a, slots)?)
        }
        (JoinSide::JunctionRight, JoinSide::Entity) => {
            bind_junction(slots, alias_a, false, entity_index(alias_b, slots)?)
        }
        (JoinSide::Entity, JoinSide::JunctionRight) => {
            bind_junction(slots, alias_b, false, entity_index(alias_a, slots)?)
        }
        (JoinSide::MvaFk, JoinSide::Entity) => {
            bind_mva(slots, alias_a, entity_index(alias_b, slots)?)
        }
        (JoinSide::Entity, JoinSide::MvaFk) => {
            bind_mva(slots, alias_b, entity_index(alias_a, slots)?)
        }
        _ => Err(Error::SqlTranslate(format!(
            "unsupported join condition `{alias_a}.{col_a} = {alias_b}.{col_b}`"
        ))),
    }
}

fn bind_junction(
    slots: &mut BTreeMap<String, Slot>,
    alias: &str,
    left: bool,
    entity: usize,
) -> Result<()> {
    match slots.get_mut(alias) {
        Some(Slot::Junction {
            left_bind,
            right_bind,
            ..
        }) => {
            let slot = if left { left_bind } else { right_bind };
            if slot.is_some() {
                return Err(Error::SqlTranslate(format!(
                    "junction `{alias}` joined twice on the same key"
                )));
            }
            *slot = Some(entity);
            Ok(())
        }
        _ => Err(Error::SqlTranslate(format!("`{alias}` is not a junction"))),
    }
}

fn bind_mva(slots: &mut BTreeMap<String, Slot>, alias: &str, entity: usize) -> Result<()> {
    match slots.get_mut(alias) {
        Some(Slot::Mva { owner_bind, .. }) => {
            if owner_bind.is_some() {
                return Err(Error::SqlTranslate(format!(
                    "MVA `{alias}` joined twice on its foreign key"
                )));
            }
            *owner_bind = Some(entity);
            Ok(())
        }
        _ => Err(Error::SqlTranslate(format!(
            "`{alias}` is not an MVA table"
        ))),
    }
}

/// Converts a single-table SQL predicate into a filter atom on `attr`.
fn sql_condition_to_atom(expr: &SqlExpr, attr: &str) -> Result<FilterAtom> {
    match expr {
        SqlExpr::Cmp(op, a, b) => {
            let (lit, op) = match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(_), SqlExpr::Literal(v)) => (v, *op),
                (SqlExpr::Literal(v), SqlExpr::Column(_)) => (v, flip(*op)),
                _ => {
                    return Err(Error::SqlTranslate(format!(
                        "unsupported predicate `{expr}`"
                    )))
                }
            };
            Ok(FilterAtom::Cmp {
                attr: attr.to_string(),
                op,
                value: *lit,
            })
        }
        SqlExpr::Like(_, p) => Ok(FilterAtom::Like {
            attr: attr.to_string(),
            pattern: p.clone(),
        }),
        SqlExpr::NotLike(_, p) => Ok(FilterAtom::NotLike {
            attr: attr.to_string(),
            pattern: p.clone(),
        }),
        SqlExpr::InList(_, vs) => Ok(FilterAtom::In {
            attr: attr.to_string(),
            values: vs.clone(),
        }),
        SqlExpr::IsNull(_) => Ok(FilterAtom::IsNull {
            attr: attr.to_string(),
        }),
        other => Err(Error::SqlTranslate(format!(
            "unsupported predicate `{other}` (the ETable interface builds \
             conjunctions of simple predicates)"
        ))),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::match_primary;
    use crate::ops;
    use crate::testutil::{academic_db, academic_tgdb};
    use std::collections::BTreeSet;

    /// Executes a pattern and returns the primary nodes' key values (pk for
    /// entities, value for value nodes) as strings.
    fn pattern_keys(tgdb: &Tgdb, pattern: &QueryPattern) -> BTreeSet<String> {
        let m = match_primary(tgdb, pattern).unwrap();
        let nt = tgdb.schema.node_type(pattern.primary_node().node_type);
        m.rows()
            .iter()
            .map(|&n| {
                let node = tgdb.instances.node(n);
                if nt.kind == NodeTypeKind::Entity {
                    // First attribute is the pk for our schemas ("id").
                    node.values[nt.attr_index("id").unwrap_or(0)].to_string()
                } else {
                    node.values[0].to_string()
                }
            })
            .collect()
    }

    /// Executes SQL on the relational DB and returns column 0 as strings.
    fn sql_keys(db: &Database, sql: &str) -> BTreeSet<String> {
        let mut db = db.clone();
        let r = etable_relational::sql::execute(&mut db, sql).unwrap();
        r.rows.iter().map(|row| row[0].to_string()).collect()
    }

    fn korea_pattern(tgdb: &Tgdb) -> QueryPattern {
        use crate::pattern::NodeFilter;
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = ops::initiate(tgdb, confs).unwrap();
        let q = ops::select(tgdb, &q, NodeFilter::cmp("acronym", CmpOp::Eq, "KDD")).unwrap();
        let (pe, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        let q = ops::add(tgdb, &q, pe).unwrap();
        let papers_ty = q.primary_node().node_type;
        let (ae, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = ops::add(tgdb, &q, ae).unwrap();
        let authors_ty = q.primary_node().node_type;
        let (ie, _) = tgdb
            .schema
            .outgoing_by_name(authors_ty, "Institutions")
            .unwrap();
        let q = ops::add(tgdb, &q, ie).unwrap();
        let q = ops::select(tgdb, &q, NodeFilter::like("country", "%Korea%")).unwrap();
        ops::shift(&q, PatternNodeId(2)).unwrap()
    }

    #[test]
    fn to_sql_shows_paper_pattern() {
        let tgdb = academic_tgdb();
        let db = academic_db();
        let q = korea_pattern(&tgdb);
        let sql = to_sql(&tgdb, &db, &q).unwrap();
        assert!(sql.starts_with("SELECT t2.*"), "{sql}");
        assert!(sql.contains("ent_list("), "{sql}");
        assert!(sql.contains("GROUP BY t2.id"), "{sql}");
        assert!(sql.contains("Paper_Authors"), "{sql}");
    }

    #[test]
    fn primary_sql_matches_pattern_execution() {
        let tgdb = academic_tgdb();
        let db = academic_db();
        let q = korea_pattern(&tgdb);
        let sql = to_primary_sql(&tgdb, &db, &q).unwrap();
        assert_eq!(pattern_keys(&tgdb, &q), sql_keys(&db, &sql), "{sql}");
    }

    #[test]
    fn primary_sql_with_mva_primary() {
        // Keywords of papers published after 2011.
        let tgdb = academic_tgdb();
        let db = academic_db();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(
            &tgdb,
            &q,
            crate::pattern::NodeFilter::cmp("year", CmpOp::Gt, 2011),
        )
        .unwrap();
        let (ke, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Paper_Keywords: keyword")
            .unwrap();
        let q = ops::add(&tgdb, &q, ke).unwrap();
        let sql = to_primary_sql(&tgdb, &db, &q).unwrap();
        assert_eq!(pattern_keys(&tgdb, &q), sql_keys(&db, &sql), "{sql}");
    }

    #[test]
    fn from_sql_builds_equivalent_pattern() {
        let tgdb = academic_tgdb();
        let db = academic_db();
        let sql = "SELECT p.id FROM Papers p, Paper_Authors pa, Authors a, Conferences c \
                   WHERE p.id = pa.paper_id AND pa.author_id = a.id \
                   AND p.conference_id = c.id AND c.acronym = 'SIGMOD' \
                   GROUP BY p.id";
        let pattern = from_sql(&tgdb, &db, sql).unwrap();
        assert_eq!(pattern.len(), 3); // Papers, Authors, Conferences
        assert_eq!(
            tgdb.schema.node_type(pattern.primary_node().node_type).name,
            "Papers"
        );
        // SIGMOD papers with authors: 10 and 11.
        let keys = pattern_keys(&tgdb, &pattern);
        assert_eq!(keys, ["10", "11"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn from_sql_handles_mva_tables() {
        let tgdb = academic_tgdb();
        let db = academic_db();
        let sql = "SELECT p.id FROM Papers p, Paper_Keywords pk \
                   WHERE pk.paper_id = p.id AND pk.keyword LIKE '%user%' \
                   GROUP BY p.id";
        let pattern = from_sql(&tgdb, &db, sql).unwrap();
        let keys = pattern_keys(&tgdb, &pattern);
        assert_eq!(keys, ["10", "12"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn round_trip_preserves_result() {
        // pattern -> SQL -> pattern yields the same primary set.
        let tgdb = academic_tgdb();
        let db = academic_db();
        let q = korea_pattern(&tgdb);
        let sql = to_primary_sql(&tgdb, &db, &q).unwrap();
        // Re-shape the DISTINCT query into the §8 GROUP BY form so from_sql
        // can pick the primary.
        let grouped = sql.replacen("SELECT DISTINCT ", "SELECT ", 1) + " GROUP BY t2.id";
        let back = from_sql(&tgdb, &db, &grouped).unwrap();
        assert_eq!(pattern_keys(&tgdb, &q), pattern_keys(&tgdb, &back));
    }

    #[test]
    fn neighbor_label_filter_translates_to_semijoin() {
        // Papers whose Authors neighbor labels match '%Nandi%'.
        let tgdb = academic_tgdb();
        let db = academic_db();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (ae, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(
            &tgdb,
            &q,
            NodeFilter::atom(FilterAtom::NeighborLabelLike {
                edge: ae,
                pattern: "%Nandi%".into(),
            }),
        )
        .unwrap();
        let sql = to_primary_sql(&tgdb, &db, &q).unwrap();
        assert_eq!(pattern_keys(&tgdb, &q), sql_keys(&db, &sql), "{sql}");
    }

    #[test]
    fn self_join_via_citations_round_trips() {
        // "Papers citing a paper from before 2010": the Papers type occurs
        // twice, joined through the self-relationship table.
        let tgdb = academic_tgdb();
        let db = academic_db();
        let sql = "SELECT p1.id FROM Papers p1, Paper_References r, Papers p2 \
                   WHERE r.paper_id = p1.id AND r.ref_paper_id = p2.id \
                   AND p2.year < 2010 GROUP BY p1.id";
        let pattern = from_sql(&tgdb, &db, sql).unwrap();
        assert_eq!(pattern.len(), 2);
        assert_eq!(pattern.nodes[0].node_type, pattern.nodes[1].node_type);
        // Papers citing the 2007 paper: 11 and 12.
        let keys = pattern_keys(&tgdb, &pattern);
        assert_eq!(keys, ["11", "12"].iter().map(|s| s.to_string()).collect());
        // And back to SQL.
        let back = to_primary_sql(&tgdb, &db, &pattern).unwrap();
        assert_eq!(keys, sql_keys(&db, &back), "{back}");
    }

    #[test]
    fn from_sql_rejects_out_of_scope_queries() {
        let tgdb = academic_tgdb();
        let db = academic_db();
        // Global aggregate: no primary entity.
        assert!(from_sql(&tgdb, &db, "SELECT COUNT(*) FROM Papers").is_err());
        // Non-FK join condition.
        assert!(from_sql(
            &tgdb,
            &db,
            "SELECT p.id FROM Papers p, Authors a WHERE p.year = a.id"
        )
        .is_err());
        // Disconnected join graph.
        assert!(from_sql(&tgdb, &db, "SELECT p.id FROM Papers p, Authors a").is_err());
    }

    #[test]
    fn node_is_filter_translates_to_pk_equality() {
        let tgdb = academic_tgdb();
        let db = academic_db();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let node = tgdb.node_by_pk(papers, &11.into()).unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q = ops::select(&tgdb, &q, NodeFilter::node_is(node)).unwrap();
        let sql = to_primary_sql(&tgdb, &db, &q).unwrap();
        assert!(sql.contains("t0.id = 11"), "{sql}");
        assert_eq!(pattern_keys(&tgdb, &q), sql_keys(&db, &sql));
    }
}
