//! # etable-core
//!
//! The ETable presentation data model — the primary contribution of
//! *"Interactive Browsing and Navigation in Relational Databases"* (VLDB
//! 2016): query patterns over a typed graph database, the four primitive
//! operators (`Initiate`/`Select`/`Add`/`Shift`), a graph relation algebra
//! with instance matching, format transformation into enriched tables whose
//! cells hold sets of entity references, user-level actions, an interactive
//! session with history, and a bidirectional SQL translation (§8).
//!
//! ```
//! use etable_core::{ops, transform, pattern::NodeFilter};
//! use etable_core::testutil::academic_tgdb;
//! use etable_relational::expr::CmpOp;
//!
//! let tgdb = academic_tgdb();
//! let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
//! let q = ops::initiate(&tgdb, papers).unwrap();
//! let q = ops::select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2010)).unwrap();
//! let table = transform::execute(&tgdb, &q).unwrap();
//! assert_eq!(table.primary_type_name, "Papers");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod actions;
pub mod cache;
pub mod column_rank;
pub mod connection;
pub mod etable;
pub mod export;
pub mod graph_relation;
pub mod matching;
pub mod ops;
pub mod pattern;
pub mod render;
pub mod session;
pub mod setops;
pub mod sql_translate;
pub mod transform;

#[doc(hidden)]
pub mod testutil;

use std::fmt;

/// Errors produced by the ETable layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A pattern with no nodes.
    EmptyPattern,
    /// A pattern node reference is invalid.
    InvalidNode(String),
    /// A pattern edge is inconsistent with the schema graph.
    InvalidEdge(String),
    /// The pattern graph is not a tree.
    NotATree(String),
    /// The pattern graph is disconnected.
    Disconnected,
    /// A filter references an attribute the node type does not have.
    UnknownAttribute {
        /// Node type name.
        node_type: String,
        /// The missing attribute.
        attr: String,
    },
    /// A user action referenced a column that does not exist.
    UnknownColumn(String),
    /// A user action was invalid in the current state.
    InvalidAction(String),
    /// SQL translation failed.
    SqlTranslate(String),
    /// Underlying relational engine error.
    Relational(etable_relational::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyPattern => write!(f, "query pattern has no nodes"),
            Error::InvalidNode(m) => write!(f, "invalid pattern node: {m}"),
            Error::InvalidEdge(m) => write!(f, "invalid pattern edge: {m}"),
            Error::NotATree(m) => write!(f, "pattern is not a tree: {m}"),
            Error::Disconnected => write!(f, "pattern is disconnected"),
            Error::UnknownAttribute { node_type, attr } => {
                write!(f, "node type `{node_type}` has no attribute `{attr}`")
            }
            Error::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Error::InvalidAction(m) => write!(f, "invalid action: {m}"),
            Error::SqlTranslate(m) => write!(f, "SQL translation error: {m}"),
            Error::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<etable_relational::Error> for Error {
    fn from(e: etable_relational::Error) -> Self {
        Error::Relational(e)
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, Error>;
