//! The graph relation algebra of §5.4.1.
//!
//! A graph relation `RG` is a set of tuples whose attributes are *pattern
//! node occurrences*; each tuple holds one instance node per attribute. The
//! three operators — Selection `σ`, Join `∗`, Projection `Π` — are exactly
//! the primitives that Definition 4's instance matching composes.

use crate::pattern::{NodeFilter, PatternNodeId};
use crate::{Error, Result};
use etable_tgm::{EdgeTypeId, NodeId, Tgdb};
use std::collections::HashMap;

/// A graph relation: tuples of instance nodes over pattern-node attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphRelation {
    /// The attributes; each corresponds to a pattern node occurrence.
    pub attrs: Vec<PatternNodeId>,
    /// The tuples; `tuples[i][j]` is the node bound to `attrs[j]`.
    pub tuples: Vec<Vec<NodeId>>,
}

impl GraphRelation {
    /// A base graph relation: one attribute listing all (optionally
    /// filtered) nodes of a type.
    pub fn base(
        tgdb: &Tgdb,
        attr: PatternNodeId,
        node_type: etable_tgm::NodeTypeId,
        filter: &NodeFilter,
    ) -> Result<GraphRelation> {
        let mut tuples = Vec::new();
        for &n in tgdb.instances.nodes_of_type(node_type) {
            if filter.eval(tgdb, n)? {
                tuples.push(vec![n]);
            }
        }
        Ok(GraphRelation {
            attrs: vec![attr],
            tuples,
        })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Position of a pattern-node attribute.
    pub fn attr_pos(&self, attr: PatternNodeId) -> Result<usize> {
        self.attrs
            .iter()
            .position(|&a| a == attr)
            .ok_or_else(|| Error::InvalidNode(format!("attribute {attr} not in graph relation")))
    }

    /// Selection `σ_Ci(RG)`: keeps tuples whose node bound to `attr`
    /// satisfies the filter.
    pub fn selection(
        &self,
        tgdb: &Tgdb,
        attr: PatternNodeId,
        filter: &NodeFilter,
    ) -> Result<GraphRelation> {
        let pos = self.attr_pos(attr)?;
        let mut tuples = Vec::new();
        for t in &self.tuples {
            if filter.eval(tgdb, t[pos])? {
                tuples.push(t.clone());
            }
        }
        Ok(GraphRelation {
            attrs: self.attrs.clone(),
            tuples,
        })
    }

    /// Join `RG1 ∗ρ RG2`: pairs tuples whose bound nodes are connected by an
    /// instance edge of type `ρ` running from `self[left_attr]` to
    /// `other[right_attr]`. Output attributes are the concatenation.
    pub fn join(
        &self,
        tgdb: &Tgdb,
        other: &GraphRelation,
        edge_type: EdgeTypeId,
        left_attr: PatternNodeId,
        right_attr: PatternNodeId,
    ) -> Result<GraphRelation> {
        let lpos = self.attr_pos(left_attr)?;
        let rpos = other.attr_pos(right_attr)?;
        // Hash the right side by its bound node so each neighbor lookup is
        // O(1) — the "quick neighbor-lookup" executed tuple-by-tuple.
        let mut right_index: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, t) in other.tuples.iter().enumerate() {
            right_index.entry(t[rpos]).or_default().push(i);
        }
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().copied());
        let mut tuples = Vec::new();
        for lt in &self.tuples {
            for &nb in tgdb.instances.neighbors(edge_type, lt[lpos]) {
                if let Some(hits) = right_index.get(&nb) {
                    for &ri in hits {
                        let mut t = Vec::with_capacity(attrs.len());
                        t.extend(lt.iter().copied());
                        t.extend(other.tuples[ri].iter().copied());
                        tuples.push(t);
                    }
                }
            }
        }
        Ok(GraphRelation { attrs, tuples })
    }

    /// Expansion join against an implicit base relation: extends each tuple
    /// with the neighbors of its `left_attr` binding along `edge_type`,
    /// keeping only neighbors that satisfy `filter`. Equivalent to
    /// `self ∗ρ σ_C(base(target))` but without materializing the base.
    pub fn expand(
        &self,
        tgdb: &Tgdb,
        edge_type: EdgeTypeId,
        left_attr: PatternNodeId,
        new_attr: PatternNodeId,
        filter: &NodeFilter,
    ) -> Result<GraphRelation> {
        let lpos = self.attr_pos(left_attr)?;
        let mut attrs = self.attrs.clone();
        attrs.push(new_attr);
        let mut tuples = Vec::new();
        for lt in &self.tuples {
            for &nb in tgdb.instances.neighbors(edge_type, lt[lpos]) {
                if filter.eval(tgdb, nb)? {
                    let mut t = Vec::with_capacity(attrs.len());
                    t.extend(lt.iter().copied());
                    t.push(nb);
                    tuples.push(t);
                }
            }
        }
        Ok(GraphRelation { attrs, tuples })
    }

    /// Projection `Π_Ai(RG)`: keeps one attribute, eliminating duplicates
    /// (first-occurrence order).
    pub fn projection(&self, attr: PatternNodeId) -> Result<GraphRelation> {
        let pos = self.attr_pos(attr)?;
        let mut seen = std::collections::HashSet::new();
        let mut tuples = Vec::new();
        for t in &self.tuples {
            if seen.insert(t[pos]) {
                tuples.push(vec![t[pos]]);
            }
        }
        Ok(GraphRelation {
            attrs: vec![attr],
            tuples,
        })
    }

    /// The distinct nodes bound to `attr`, in first-occurrence order.
    pub fn distinct_nodes(&self, attr: PatternNodeId) -> Result<Vec<NodeId>> {
        Ok(self
            .projection(attr)?
            .tuples
            .into_iter()
            .map(|t| t[0])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    #[test]
    fn base_relation_lists_filtered_nodes() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let all =
            GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        assert_eq!(all.len(), 4);
        let filtered = GraphRelation::base(
            &tgdb,
            PatternNodeId(0),
            papers,
            &NodeFilter::cmp("year", CmpOp::Gt, 2010),
        )
        .unwrap();
        assert_eq!(filtered.len(), 3);
    }

    #[test]
    fn join_follows_instance_edges() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (authors, _) = tgdb.schema.node_type_by_name("Authors").unwrap();
        let (et, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let p = GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        let a = GraphRelation::base(&tgdb, PatternNodeId(1), authors, &NodeFilter::none()).unwrap();
        let j = p
            .join(&tgdb, &a, et, PatternNodeId(0), PatternNodeId(1))
            .unwrap();
        // One tuple per Paper_Authors row.
        assert_eq!(j.len(), 6);
        assert_eq!(j.attrs, vec![PatternNodeId(0), PatternNodeId(1)]);
    }

    #[test]
    fn expand_equals_join_with_base() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (authors, _) = tgdb.schema.node_type_by_name("Authors").unwrap();
        let (et, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let p = GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        let filter = NodeFilter::like("name", "%Nandi%");
        let a = GraphRelation::base(&tgdb, PatternNodeId(1), authors, &filter).unwrap();
        let joined = p
            .join(&tgdb, &a, et, PatternNodeId(0), PatternNodeId(1))
            .unwrap();
        let expanded = p
            .expand(&tgdb, et, PatternNodeId(0), PatternNodeId(1), &filter)
            .unwrap();
        let mut jt = joined.tuples.clone();
        let mut et2 = expanded.tuples.clone();
        jt.sort();
        et2.sort();
        assert_eq!(jt, et2);
    }

    #[test]
    fn selection_filters_by_attribute() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let p = GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        let sel = p
            .selection(
                &tgdb,
                PatternNodeId(0),
                &NodeFilter::like("title", "%usable%"),
            )
            .unwrap();
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn projection_dedups() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (authors, _) = tgdb.schema.node_type_by_name("Authors").unwrap();
        let (et, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let p = GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        let a = GraphRelation::base(&tgdb, PatternNodeId(1), authors, &NodeFilter::none()).unwrap();
        let j = p
            .join(&tgdb, &a, et, PatternNodeId(0), PatternNodeId(1))
            .unwrap();
        // 6 (paper, author) pairs project to 4 distinct papers.
        assert_eq!(j.projection(PatternNodeId(0)).unwrap().len(), 4);
        assert_eq!(j.projection(PatternNodeId(1)).unwrap().len(), 4);
    }

    #[test]
    fn selection_pushdown_commutes_with_join() {
        // σ before the join equals σ after the join (DESIGN.md invariant).
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (authors, _) = tgdb.schema.node_type_by_name("Authors").unwrap();
        let (et, _) = tgdb.schema.outgoing_by_name(papers, "Authors").unwrap();
        let filter = NodeFilter::cmp("year", CmpOp::Ge, 2012);
        let p_all =
            GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        let p_filtered = GraphRelation::base(&tgdb, PatternNodeId(0), papers, &filter).unwrap();
        let a = GraphRelation::base(&tgdb, PatternNodeId(1), authors, &NodeFilter::none()).unwrap();
        let pushed = p_filtered
            .join(&tgdb, &a, et, PatternNodeId(0), PatternNodeId(1))
            .unwrap();
        let late = p_all
            .join(&tgdb, &a, et, PatternNodeId(0), PatternNodeId(1))
            .unwrap()
            .selection(&tgdb, PatternNodeId(0), &filter)
            .unwrap();
        let mut a1 = pushed.tuples.clone();
        let mut a2 = late.tuples.clone();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
    }

    #[test]
    fn attr_pos_unknown_errors() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let p = GraphRelation::base(&tgdb, PatternNodeId(0), papers, &NodeFilter::none()).unwrap();
        assert!(p.attr_pos(PatternNodeId(9)).is_err());
    }
}
