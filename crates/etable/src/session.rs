//! An interactive session: the stateful layer behind the four interface
//! components of Figure 9 — default table list, main view, schema view,
//! and history view.
//!
//! The original system implements this as a Python application server; here
//! it is a library type that examples, tests and the simulated user study
//! drive programmatically.

use crate::actions::{apply, UserAction};
use crate::cache::QueryCache;
use crate::etable::EnrichedTable;
use crate::pattern::{NodeFilter, QueryPattern};
use crate::transform;
use crate::{Error, Result};
use etable_tgm::{NodeId, NodeTypeId, Tgdb};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One step in the history view.
#[derive(Debug, Clone)]
pub struct HistoryStep {
    /// Human-readable action description ("Filter 'Papers' table by ...").
    pub description: String,
    /// The pattern after the action.
    pub pattern: QueryPattern,
}

/// An interactive browsing session over one typed graph database.
///
/// Sessions are **owned, `Send` values**: they share the graph database
/// through an `Arc` instead of borrowing it, so a server can park one per
/// connection and move it across worker threads. (This is the API
/// redesign behind the serving layer; the old `Session<'a>` borrow made
/// handing a session to a second thread impossible.)
pub struct Session {
    tgdb: Arc<Tgdb>,
    history: Vec<HistoryStep>,
    /// Index into `history` of the step currently shown.
    cursor: Option<usize>,
    hidden: BTreeSet<String>,
    sort: Option<(String, bool)>,
    cache: QueryCache,
}

impl Session {
    /// Starts a session with nothing open.
    pub fn new(tgdb: Arc<Tgdb>) -> Self {
        Session {
            tgdb,
            history: Vec::new(),
            cursor: None,
            hidden: BTreeSet::new(),
            sort: None,
            cache: QueryCache::new(),
        }
    }

    /// The typed graph database this session browses.
    pub fn tgdb(&self) -> &Tgdb {
        &self.tgdb
    }

    /// The shared handle itself (cheap to clone into another session).
    pub fn tgdb_arc(&self) -> &Arc<Tgdb> {
        &self.tgdb
    }

    /// The default table list (Figure 9 component 1): entity types only.
    pub fn default_table_list(&self) -> Vec<(NodeTypeId, String)> {
        self.tgdb
            .schema
            .entity_types()
            .into_iter()
            .map(|(id, t)| (id, t.name.clone()))
            .collect()
    }

    /// The current query pattern, if a table is open.
    pub fn current_pattern(&self) -> Option<&QueryPattern> {
        self.cursor.map(|i| &self.history[i].pattern)
    }

    /// The history steps, oldest first.
    pub fn history(&self) -> &[HistoryStep] {
        &self.history
    }

    /// Executes the current pattern into an enriched table, applying the
    /// session's sort and column visibility.
    pub fn etable(&mut self) -> Result<EnrichedTable> {
        let pattern = self
            .current_pattern()
            .ok_or_else(|| Error::InvalidAction("no table is open".into()))?
            .clone();
        let m = self.cache.get_or_compute(&self.tgdb, &pattern)?;
        let mut t = transform::transform(&self.tgdb, &m)?;
        if let Some((col, desc)) = &self.sort {
            if let Some(idx) = t.column_index(col) {
                t.sort_by_column(idx, *desc);
            }
        }
        if !self.hidden.is_empty() {
            let keep: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| !self.hidden.contains(&c.name))
                .map(|(i, _)| i)
                .collect();
            t.columns = keep.iter().map(|&i| t.columns[i].clone()).collect();
            for row in &mut t.rows {
                row.cells = keep.iter().map(|&i| row.cells[i].clone()).collect();
            }
        }
        Ok(t)
    }

    fn raw_etable(&mut self) -> Result<Option<EnrichedTable>> {
        match self.current_pattern() {
            None => Ok(None),
            Some(pattern) => {
                let pattern = pattern.clone();
                let m = self.cache.get_or_compute(&self.tgdb, &pattern)?;
                Ok(Some(transform::transform(&self.tgdb, &m)?))
            }
        }
    }

    fn push(&mut self, action: &UserAction) -> Result<()> {
        let etable = self.raw_etable()?;
        let outcome = apply(&self.tgdb, self.current_pattern(), etable.as_ref(), action)?;
        self.history.push(HistoryStep {
            description: outcome.description,
            pattern: outcome.pattern,
        });
        self.cursor = Some(self.history.len() - 1);
        // A new query invalidates per-table presentation state.
        self.sort = None;
        self.hidden.clear();
        Ok(())
    }

    /// Opens a table from the default table list.
    pub fn open(&mut self, node_type: NodeTypeId) -> Result<()> {
        self.push(&UserAction::Open { node_type })
    }

    /// Opens a table by entity type name.
    pub fn open_by_name(&mut self, name: &str) -> Result<()> {
        let (id, _) = self
            .tgdb
            .schema
            .node_type_by_name(name)
            .ok_or_else(|| Error::InvalidAction(format!("unknown table `{name}`")))?;
        self.open(id)
    }

    /// Filters the current table.
    pub fn filter(&mut self, filter: NodeFilter) -> Result<()> {
        self.push(&UserAction::Filter { filter })
    }

    /// Pivots on a column (by display name).
    pub fn pivot(&mut self, column: &str) -> Result<()> {
        self.push(&UserAction::Pivot {
            column: column.to_string(),
        })
    }

    /// Clicks a single entity reference.
    pub fn single(&mut self, node: NodeId) -> Result<()> {
        self.push(&UserAction::Single { node })
    }

    /// Clicks a cell's reference count.
    pub fn seeall(&mut self, row: NodeId, column: &str) -> Result<()> {
        self.push(&UserAction::Seeall {
            row,
            column: column.to_string(),
        })
    }

    /// Sorts the main view by a column.
    pub fn sort(&mut self, column: &str, descending: bool) {
        self.sort = Some((column.to_string(), descending));
    }

    /// Hides a column in the main view.
    pub fn hide(&mut self, column: &str) {
        self.hidden.insert(column.to_string());
    }

    /// Shows a previously hidden column.
    pub fn show(&mut self, column: &str) {
        self.hidden.remove(column);
    }

    /// Reverts to history step `step` (0-based). The revert itself becomes a
    /// new history step, so the full trail is preserved.
    pub fn revert(&mut self, step: usize) -> Result<()> {
        if step >= self.history.len() {
            return Err(Error::InvalidAction(format!(
                "history step {step} does not exist"
            )));
        }
        let pattern = self.history[step].pattern.clone();
        self.history.push(HistoryStep {
            description: format!("Revert to step {}", step + 1),
            pattern,
        });
        self.cursor = Some(self.history.len() - 1);
        self.sort = None;
        self.hidden.clear();
        Ok(())
    }

    /// Hides all but the `k` most informative columns of the current
    /// result, using the column ranker (§9 future-work item 3; see
    /// [`crate::column_rank`]). Returns the kept column names.
    pub fn focus_top_columns(&mut self, k: usize) -> Result<Vec<String>> {
        // Rank on the unhidden table.
        let hidden_before = std::mem::take(&mut self.hidden);
        let table = match self.etable() {
            Ok(t) => t,
            Err(e) => {
                self.hidden = hidden_before;
                return Err(e);
            }
        };
        let keep = crate::column_rank::top_k_columns(&table, k);
        for name in crate::column_rank::columns_to_hide(&table, k) {
            self.hidden.insert(name);
        }
        Ok(keep)
    }

    /// Cache statistics `(hits, misses)` — exercised by the reuse bench.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    #[test]
    fn open_filter_pivot_flow() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        s.open_by_name("Conferences").unwrap();
        assert_eq!(s.etable().unwrap().len(), 2);
        s.filter(NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD"))
            .unwrap();
        assert_eq!(s.etable().unwrap().len(), 1);
        s.pivot("Papers").unwrap();
        let t = s.etable().unwrap();
        assert_eq!(t.primary_type_name, "Papers");
        assert_eq!(t.len(), 2);
        assert_eq!(s.history().len(), 3);
    }

    #[test]
    fn default_table_list_is_entities_only() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let s = Session::new(tgdb.clone());
        let names: Vec<String> = s.default_table_list().into_iter().map(|(_, n)| n).collect();
        assert!(names.contains(&"Papers".to_string()));
        assert!(names.contains(&"Authors".to_string()));
        assert!(!names.iter().any(|n| n.contains(':')), "{names:?}");
    }

    #[test]
    fn revert_restores_earlier_result() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        s.open_by_name("Papers").unwrap();
        let before = s.etable().unwrap();
        s.filter(NodeFilter::cmp("year", CmpOp::Gt, 2012)).unwrap();
        assert_eq!(s.etable().unwrap().len(), 1);
        s.revert(0).unwrap();
        let after = s.etable().unwrap();
        assert_eq!(before.len(), after.len());
        assert_eq!(s.history().len(), 3); // open, filter, revert
                                          // Revert re-used the cached matching of step 0.
        let (hits, _) = s.cache_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn sort_and_hide_affect_presentation_only() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        s.open_by_name("Papers").unwrap();
        s.sort("year", true);
        let t = s.etable().unwrap();
        let years: Vec<i64> = t
            .rows
            .iter()
            .map(|r| {
                r.cells[t.column_index("year").unwrap()]
                    .value()
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert_eq!(years, vec![2014, 2012, 2011, 2007]);
        s.hide("Authors");
        let t = s.etable().unwrap();
        assert!(t.column("Authors").is_none());
        s.show("Authors");
        let t = s.etable().unwrap();
        assert!(t.column("Authors").is_some());
    }

    #[test]
    fn sort_by_ref_count_mirrors_figure1_history() {
        // "Sort table by # of Papers (referenced)".
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        s.open_by_name("Papers").unwrap();
        s.sort("Papers (referenced)", true);
        let t = s.etable().unwrap();
        let col = t.column_index("Papers (referenced)").unwrap();
        let counts: Vec<usize> = t.rows.iter().map(|r| r.cells[col].ref_count()).collect();
        assert_eq!(counts, vec![2, 1, 1, 0]);
    }

    #[test]
    fn seeall_selects_row_then_pivots() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        s.open_by_name("Papers").unwrap();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let usable = tgdb.node_by_pk(papers, &10.into()).unwrap();
        s.seeall(usable, "Paper_Keywords: keyword").unwrap();
        let t = s.etable().unwrap();
        assert_eq!(t.len(), 2); // usability, user interface
        let labels: Vec<&str> = t
            .rows
            .iter()
            .map(|r| r.cells[0].value().unwrap().as_text().unwrap())
            .collect();
        assert!(labels.contains(&"usability"));
    }

    #[test]
    fn focus_top_columns_hides_the_rest() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        s.open_by_name("Papers").unwrap();
        let total = s.etable().unwrap().columns.len();
        let kept = s.focus_top_columns(3).unwrap();
        assert_eq!(kept.len(), 3);
        let t = s.etable().unwrap();
        assert_eq!(t.columns.len(), 3);
        assert!(total > 3);
        for name in &kept {
            assert!(t.column(name).is_some());
        }
    }

    #[test]
    fn errors_without_open_table() {
        let tgdb = std::sync::Arc::new(academic_tgdb());
        let mut s = Session::new(tgdb.clone());
        assert!(s.etable().is_err());
        assert!(s.filter(NodeFilter::cmp("year", CmpOp::Gt, 2000)).is_err());
        assert!(s.revert(0).is_err());
    }
}
