//! Set operations over ETable results — the paper's future-work item (1):
//! "incorporating more operations to further improve expressive power
//! (e.g., set operations)" (§9).
//!
//! Two query patterns with the *same primary node type* can be combined
//! with union / intersection / difference: the combined enriched table's
//! rows are the set-combined primary nodes, and its columns are the base
//! attributes plus the neighbor columns (participating columns are
//! pattern-specific and do not survive combination).

use crate::etable::{Cell, ColumnKind, ColumnSpec, ETableRow, EnrichedTable, EntityRef};
use crate::matching::match_primary;
use crate::pattern::QueryPattern;
use crate::{Error, Result};
use etable_tgm::{NodeId, Tgdb};
use std::collections::HashSet;

/// Which set operation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Rows matching either query.
    Union,
    /// Rows matching both queries.
    Intersect,
    /// Rows matching the first but not the second query.
    Difference,
}

impl std::fmt::Display for SetOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetOp::Union => write!(f, "UNION"),
            SetOp::Intersect => write!(f, "INTERSECT"),
            SetOp::Difference => write!(f, "EXCEPT"),
        }
    }
}

/// Combines the primary row sets of two patterns.
///
/// Errors unless both patterns share the same primary node type (as SQL
/// requires union-compatible schemas).
///
/// ```
/// use etable_core::{ops, pattern::NodeFilter, setops::{combine, SetOp}};
/// use etable_core::testutil::academic_tgdb;
/// use etable_relational::expr::CmpOp;
///
/// let tgdb = academic_tgdb();
/// let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
/// let base = ops::initiate(&tgdb, papers).unwrap();
/// let old = ops::select(&tgdb, &base, NodeFilter::cmp("year", CmpOp::Lt, 2012)).unwrap();
/// let new = ops::select(&tgdb, &base, NodeFilter::cmp("year", CmpOp::Ge, 2012)).unwrap();
/// let union = combine(&tgdb, &old, &new, SetOp::Union).unwrap();
/// assert_eq!(union.len(), 4); // the whole Papers table
/// ```
pub fn combine(
    tgdb: &Tgdb,
    left: &QueryPattern,
    right: &QueryPattern,
    op: SetOp,
) -> Result<EnrichedTable> {
    let lt = left.primary_node().node_type;
    let rt = right.primary_node().node_type;
    if lt != rt {
        return Err(Error::InvalidAction(format!(
            "set operation on different primary types `{}` vs `{}`",
            tgdb.schema.node_type(lt).name,
            tgdb.schema.node_type(rt).name
        )));
    }
    let lm = match_primary(tgdb, left)?;
    let rm = match_primary(tgdb, right)?;
    let rset: HashSet<NodeId> = rm.rows().iter().copied().collect();
    let lset: HashSet<NodeId> = lm.rows().iter().copied().collect();

    // Keep instance order for determinism.
    let rows: Vec<NodeId> = match op {
        SetOp::Union => {
            let mut out: Vec<NodeId> = lm.rows().to_vec();
            out.extend(rm.rows().iter().filter(|n| !lset.contains(n)));
            // Restore instance order across both sides.
            let all: HashSet<NodeId> = out.iter().copied().collect();
            tgdb.instances
                .nodes_of_type(lt)
                .iter()
                .copied()
                .filter(|n| all.contains(n))
                .collect()
        }
        SetOp::Intersect => lm
            .rows()
            .iter()
            .copied()
            .filter(|n| rset.contains(n))
            .collect(),
        SetOp::Difference => lm
            .rows()
            .iter()
            .copied()
            .filter(|n| !rset.contains(n))
            .collect(),
    };

    // Columns: base attributes + all neighbor columns of the shared type.
    let nt = tgdb.schema.node_type(lt);
    let mut columns: Vec<ColumnSpec> = nt
        .attrs
        .iter()
        .enumerate()
        .map(|(i, a)| ColumnSpec {
            name: a.name.clone(),
            kind: ColumnKind::Base { attr: i },
        })
        .collect();
    for (et_id, et) in tgdb.schema.outgoing(lt) {
        columns.push(ColumnSpec {
            name: et.name.clone(),
            kind: ColumnKind::Neighbor { edge: et_id },
        });
    }

    let table_rows = rows
        .into_iter()
        .map(|node| {
            let cells = columns
                .iter()
                .map(|col| match &col.kind {
                    ColumnKind::Base { attr } => {
                        Cell::Atomic(tgdb.instances.node(node).values[*attr])
                    }
                    ColumnKind::Neighbor { edge } => Cell::Refs(
                        tgdb.instances
                            .neighbors(*edge, node)
                            .iter()
                            .map(|&n| EntityRef {
                                node: n,
                                label: tgdb.instances.label(&tgdb.schema, n),
                            })
                            .collect(),
                    ),
                    ColumnKind::Participating { .. } => unreachable!("not built here"),
                })
                .collect();
            ETableRow { node, cells }
        })
        .collect();

    Ok(EnrichedTable {
        primary_type_name: nt.name.clone(),
        filter_desc: format!(
            "{op} of ({}) and ({})",
            describe(tgdb, left),
            describe(tgdb, right)
        ),
        columns,
        rows: table_rows,
    })
}

fn describe(tgdb: &Tgdb, q: &QueryPattern) -> String {
    let mut parts = Vec::new();
    for id in q.node_ids() {
        let n = q.node(id);
        if !n.filter.is_empty() {
            parts.push(format!(
                "{}.{}",
                tgdb.schema.node_type(n.node_type).name,
                n.filter.display_with(tgdb)
            ));
        }
    }
    if parts.is_empty() {
        format!(
            "all {}",
            tgdb.schema.node_type(q.primary_node().node_type).name
        )
    } else {
        parts.join(" AND ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::pattern::NodeFilter;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    fn year_pattern(tgdb: &Tgdb, op: CmpOp, year: i64) -> QueryPattern {
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(tgdb, papers).unwrap();
        ops::select(tgdb, &q, NodeFilter::cmp("year", op, year)).unwrap()
    }

    #[test]
    fn union_covers_both_sides() {
        let tgdb = academic_tgdb();
        let old = year_pattern(&tgdb, CmpOp::Lt, 2012); // papers 10, 12
        let new = year_pattern(&tgdb, CmpOp::Ge, 2012); // papers 11, 13
        let u = combine(&tgdb, &old, &new, SetOp::Union).unwrap();
        assert_eq!(u.len(), 4);
        let i = combine(&tgdb, &old, &new, SetOp::Intersect).unwrap();
        assert!(i.is_empty());
    }

    #[test]
    fn intersect_and_difference_partition_left() {
        let tgdb = academic_tgdb();
        let all = year_pattern(&tgdb, CmpOp::Gt, 0);
        let recent = year_pattern(&tgdb, CmpOp::Ge, 2012);
        let inter = combine(&tgdb, &all, &recent, SetOp::Intersect).unwrap();
        let diff = combine(&tgdb, &all, &recent, SetOp::Difference).unwrap();
        assert_eq!(inter.len() + diff.len(), 4);
        // Disjoint.
        let inter_nodes: HashSet<_> = inter.rows.iter().map(|r| r.node).collect();
        assert!(diff.rows.iter().all(|r| !inter_nodes.contains(&r.node)));
    }

    #[test]
    fn union_with_overlap_dedups() {
        let tgdb = academic_tgdb();
        let a = year_pattern(&tgdb, CmpOp::Ge, 2007); // all 4
        let b = year_pattern(&tgdb, CmpOp::Ge, 2012); // 2 of them
        let u = combine(&tgdb, &a, &b, SetOp::Union).unwrap();
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn different_join_shapes_can_combine() {
        // SIGMOD papers UNION papers with keyword 'deep learning': different
        // patterns, same primary type.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q1 = ops::initiate(&tgdb, papers).unwrap();
        let (ce, _) = tgdb.schema.outgoing_by_name(papers, "Conferences").unwrap();
        let q1 = ops::add(&tgdb, &q1, ce).unwrap();
        let q1 = ops::select(&tgdb, &q1, NodeFilter::cmp("acronym", CmpOp::Eq, "SIGMOD")).unwrap();
        let q1 = ops::shift(&q1, crate::pattern::PatternNodeId(0)).unwrap();

        let q2 = ops::initiate(&tgdb, papers).unwrap();
        let (ke, _) = tgdb
            .schema
            .outgoing_by_name(papers, "Paper_Keywords: keyword")
            .unwrap();
        let q2 = ops::add(&tgdb, &q2, ke).unwrap();
        let q2 = ops::select(
            &tgdb,
            &q2,
            NodeFilter::cmp("keyword", CmpOp::Eq, "deep learning"),
        )
        .unwrap();
        let q2 = ops::shift(&q2, crate::pattern::PatternNodeId(0)).unwrap();

        let u = combine(&tgdb, &q1, &q2, SetOp::Union).unwrap();
        // SIGMOD: papers 10, 11; deep learning: paper 13.
        assert_eq!(u.len(), 3);
        assert!(u.filter_desc.contains("UNION"));
    }

    #[test]
    fn mismatched_primary_types_rejected() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let (authors, _) = tgdb.schema.node_type_by_name("Authors").unwrap();
        let p = ops::initiate(&tgdb, papers).unwrap();
        let a = ops::initiate(&tgdb, authors).unwrap();
        assert!(combine(&tgdb, &p, &a, SetOp::Union).is_err());
    }

    #[test]
    fn combined_table_keeps_neighbor_columns() {
        let tgdb = academic_tgdb();
        let a = year_pattern(&tgdb, CmpOp::Lt, 2012);
        let b = year_pattern(&tgdb, CmpOp::Ge, 2012);
        let u = combine(&tgdb, &a, &b, SetOp::Union).unwrap();
        assert!(u.column("Authors").is_some());
        let col = u.column_index("Authors").unwrap();
        assert!(u.rows.iter().any(|r| r.cells[col].ref_count() > 0));
    }
}
