//! User-level actions (§6.1): what a user does in the interface, and how
//! each action expands into the primitive operators of §5.3.
//!
//! | action   | operators (paper)                                     |
//! |----------|-------------------------------------------------------|
//! | Open     | `Initiate(τk)`                                        |
//! | Filter   | `Select(C, R)`                                        |
//! | Pivot    | `Add(ρl, R)` (neighbor col) / `Shift(τk, R)` (part.)  |
//! | Single   | `Select(C, Initiate(type(vk)))`, `C = {u | u = vk}`   |
//! | Seeall   | `Add(ρl, Select(C, R))` / `Shift(tl, Select(C, R))`   |
//!
//! Presentation-only actions (Sort, Hide/Show, Revert) do not change the
//! query pattern and are handled by [`crate::session::Session`].

use crate::etable::{ColumnKind, EnrichedTable};
use crate::ops;
use crate::pattern::{NodeFilter, QueryPattern};
use crate::{Error, Result};
use etable_tgm::{NodeId, NodeTypeId, Tgdb};

/// A pattern-changing user action.
#[derive(Debug, Clone, PartialEq)]
pub enum UserAction {
    /// Click a node type in the default table list.
    Open {
        /// The chosen node type.
        node_type: NodeTypeId,
    },
    /// Specify a filter condition on the current primary node type via the
    /// column-header popup.
    Filter {
        /// The condition (conjunction of predicates).
        filter: NodeFilter,
    },
    /// Click the pivot button on a column's context menu.
    Pivot {
        /// Display name of the column in the current ETable.
        column: String,
    },
    /// Click one entity reference.
    Single {
        /// The clicked node.
        node: NodeId,
    },
    /// Click the reference count in a cell: list all entities related to
    /// that row through that column.
    Seeall {
        /// The row's primary node.
        row: NodeId,
        /// Display name of the column.
        column: String,
    },
}

/// The outcome of applying an action: the new pattern plus a history label.
#[derive(Debug, Clone)]
pub struct ActionOutcome {
    /// The resulting query pattern.
    pub pattern: QueryPattern,
    /// Human-readable description for the history view (Figure 9).
    pub description: String,
}

/// Applies a user action.
///
/// `current`/`etable` are the pattern and result the user is looking at;
/// they are `None` only before the first `Open`/`Single`.
pub fn apply(
    tgdb: &Tgdb,
    current: Option<&QueryPattern>,
    etable: Option<&EnrichedTable>,
    action: &UserAction,
) -> Result<ActionOutcome> {
    match action {
        UserAction::Open { node_type } => {
            let pattern = ops::initiate(tgdb, *node_type)?;
            let name = &tgdb.schema.node_type(*node_type).name;
            Ok(ActionOutcome {
                pattern,
                description: format!("Open '{name}' table"),
            })
        }
        UserAction::Filter { filter } => {
            let q = require_pattern(current)?;
            let pattern = ops::select(tgdb, q, filter.clone())?;
            let name = &tgdb.schema.node_type(q.primary_node().node_type).name;
            Ok(ActionOutcome {
                pattern,
                description: format!("Filter '{name}' table by ({})", filter.display_with(tgdb)),
            })
        }
        UserAction::Pivot { column } => {
            let q = require_pattern(current)?;
            let t = require_etable(etable)?;
            let spec = t
                .column(column)
                .ok_or_else(|| Error::UnknownColumn(column.clone()))?;
            match &spec.kind {
                ColumnKind::Neighbor { edge } => {
                    let pattern = ops::add(tgdb, q, *edge)?;
                    Ok(ActionOutcome {
                        pattern,
                        description: format!("Pivot to '{column}' (add)"),
                    })
                }
                ColumnKind::Participating { node } => {
                    let pattern = ops::shift(q, *node)?;
                    Ok(ActionOutcome {
                        pattern,
                        description: format!("Pivot to '{column}' (shift)"),
                    })
                }
                ColumnKind::Base { .. } => Err(Error::InvalidAction(format!(
                    "cannot pivot on base attribute column `{column}`"
                ))),
            }
        }
        UserAction::Single { node } => {
            let ty = tgdb.instances.type_of(*node);
            let q = ops::initiate(tgdb, ty)?;
            let pattern = ops::select(tgdb, &q, NodeFilter::node_is(*node))?;
            let label = tgdb.instances.label(&tgdb.schema, *node);
            Ok(ActionOutcome {
                pattern,
                description: format!("See '{label}'"),
            })
        }
        UserAction::Seeall { row, column } => {
            let q = require_pattern(current)?;
            let t = require_etable(etable)?;
            let spec = t
                .column(column)
                .ok_or_else(|| Error::UnknownColumn(column.clone()))?;
            // Select the clicked row first (C = {u | u = vk}).
            let selected = ops::select(tgdb, q, NodeFilter::node_is(*row))?;
            let label = tgdb.instances.label(&tgdb.schema, *row);
            match &spec.kind {
                ColumnKind::Neighbor { edge } => {
                    let pattern = ops::add(tgdb, &selected, *edge)?;
                    Ok(ActionOutcome {
                        pattern,
                        description: format!("See all '{column}' of '{label}'"),
                    })
                }
                ColumnKind::Participating { node } => {
                    let pattern = ops::shift(&selected, *node)?;
                    Ok(ActionOutcome {
                        pattern,
                        description: format!("See all '{column}' of '{label}'"),
                    })
                }
                ColumnKind::Base { .. } => Err(Error::InvalidAction(format!(
                    "cannot expand base attribute column `{column}`"
                ))),
            }
        }
    }
}

fn require_pattern(p: Option<&QueryPattern>) -> Result<&QueryPattern> {
    p.ok_or_else(|| Error::InvalidAction("no table is open yet".into()))
}

fn require_etable(t: Option<&EnrichedTable>) -> Result<&EnrichedTable> {
    t.ok_or_else(|| Error::InvalidAction("no result to interact with".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::academic_tgdb;
    use crate::transform;
    use etable_relational::expr::CmpOp;

    #[test]
    fn open_then_filter() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let o = apply(&tgdb, None, None, &UserAction::Open { node_type: papers }).unwrap();
        assert_eq!(o.description, "Open 'Papers' table");
        let t = transform::execute(&tgdb, &o.pattern).unwrap();
        let f = apply(
            &tgdb,
            Some(&o.pattern),
            Some(&t),
            &UserAction::Filter {
                filter: NodeFilter::cmp("year", CmpOp::Gt, 2010),
            },
        )
        .unwrap();
        let t2 = transform::execute(&tgdb, &f.pattern).unwrap();
        assert_eq!(t2.len(), 3);
        assert!(f.description.contains("year > 2010"));
    }

    #[test]
    fn figure2_three_routes_to_authors() {
        // The three interactions of Figure 2 starting from a Papers table.
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let open = apply(&tgdb, None, None, &UserAction::Open { node_type: papers }).unwrap();
        let t = transform::execute(&tgdb, &open.pattern).unwrap();
        let usable = tgdb.node_by_pk(papers, &10.into()).unwrap();

        // (a) click an author's name -> single-row Authors table.
        let (authors, _) = tgdb.schema.node_type_by_name("Authors").unwrap();
        let nandi = tgdb.node_by_label(authors, "Arnab Nandi").unwrap();
        let a = apply(
            &tgdb,
            Some(&open.pattern),
            Some(&t),
            &UserAction::Single { node: nandi },
        )
        .unwrap();
        let ta = transform::execute(&tgdb, &a.pattern).unwrap();
        assert_eq!(ta.len(), 1);
        assert_eq!(ta.primary_type_name, "Authors");

        // (b) click the author count -> all authors of that paper.
        let b = apply(
            &tgdb,
            Some(&open.pattern),
            Some(&t),
            &UserAction::Seeall {
                row: usable,
                column: "Authors".into(),
            },
        )
        .unwrap();
        let tb = transform::execute(&tgdb, &b.pattern).unwrap();
        assert_eq!(tb.primary_type_name, "Authors");
        assert_eq!(tb.len(), 2); // Jagadish + Nandi

        // (c) click the pivot button -> all authors of all rows.
        let c = apply(
            &tgdb,
            Some(&open.pattern),
            Some(&t),
            &UserAction::Pivot {
                column: "Authors".into(),
            },
        )
        .unwrap();
        let tc = transform::execute(&tgdb, &c.pattern).unwrap();
        assert_eq!(tc.primary_type_name, "Authors");
        assert_eq!(tc.len(), 4); // every author wrote some paper
    }

    #[test]
    fn pivot_on_participating_column_shifts() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let open = apply(&tgdb, None, None, &UserAction::Open { node_type: papers }).unwrap();
        let t = transform::execute(&tgdb, &open.pattern).unwrap();
        let piv = apply(
            &tgdb,
            Some(&open.pattern),
            Some(&t),
            &UserAction::Pivot {
                column: "Authors".into(),
            },
        )
        .unwrap();
        let t2 = transform::execute(&tgdb, &piv.pattern).unwrap();
        // Now pivot back on the participating Papers column -> shift.
        let back = apply(
            &tgdb,
            Some(&piv.pattern),
            Some(&t2),
            &UserAction::Pivot {
                column: "Papers".into(),
            },
        )
        .unwrap();
        assert!(back.description.contains("shift"));
        assert_eq!(back.pattern.len(), piv.pattern.len()); // no new node
        let t3 = transform::execute(&tgdb, &back.pattern).unwrap();
        assert_eq!(t3.primary_type_name, "Papers");
    }

    #[test]
    fn pivot_on_base_column_rejected() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let open = apply(&tgdb, None, None, &UserAction::Open { node_type: papers }).unwrap();
        let t = transform::execute(&tgdb, &open.pattern).unwrap();
        let err = apply(
            &tgdb,
            Some(&open.pattern),
            Some(&t),
            &UserAction::Pivot {
                column: "year".into(),
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn actions_require_open_table() {
        let tgdb = academic_tgdb();
        assert!(apply(
            &tgdb,
            None,
            None,
            &UserAction::Filter {
                filter: NodeFilter::cmp("year", CmpOp::Gt, 2000)
            }
        )
        .is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let open = apply(&tgdb, None, None, &UserAction::Open { node_type: papers }).unwrap();
        let t = transform::execute(&tgdb, &open.pattern).unwrap();
        assert!(apply(
            &tgdb,
            Some(&open.pattern),
            Some(&t),
            &UserAction::Pivot {
                column: "Nope".into()
            }
        )
        .is_err());
    }
}
