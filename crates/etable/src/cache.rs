//! Caching of instance-matching results across query revisions.
//!
//! The paper lists "accelerating the execution speed of updated queries
//! (e.g., by reusing intermediate results)" as future work (§9). Because
//! query building is incremental — every action produces a pattern close to
//! the previous one, and `Revert` re-executes an earlier pattern verbatim —
//! a cache keyed on the canonical pattern text captures most re-executions.
//! The `bench/reuse` benchmark quantifies the effect.

use crate::matching::{match_primary, MatchResult};
use crate::pattern::QueryPattern;
use crate::Result;
use etable_tgm::Tgdb;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded FIFO cache of matching results.
#[derive(Debug, Default)]
pub struct QueryCache {
    map: HashMap<String, Arc<MatchResult>>,
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Default number of cached results (a session's history rarely exceeds
    /// a few dozen steps).
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates a cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a cache bounded to `capacity` entries (0 disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        QueryCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the matching result for `pattern`, computing and caching it
    /// on a miss.
    pub fn get_or_compute(
        &mut self,
        tgdb: &Tgdb,
        pattern: &QueryPattern,
    ) -> Result<Arc<MatchResult>> {
        let key = pattern.canonical_key(tgdb);
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.misses += 1;
        let result = Arc::new(match_primary(tgdb, pattern)?);
        if self.capacity > 0 {
            if self.map.len() >= self.capacity {
                if let Some(evict) = self.order.pop_front() {
                    self.map.remove(&evict);
                }
            }
            self.map.insert(key.clone(), Arc::clone(&result));
            self.order.push_back(key);
        }
        Ok(result)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached entries (e.g. after the underlying data changes).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::pattern::NodeFilter;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    #[test]
    fn repeated_patterns_hit() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let mut cache = QueryCache::new();
        let a = cache.get_or_compute(&tgdb, &q).unwrap();
        let b = cache.get_or_compute(&tgdb, &q).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_filters_do_not_collide() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let q1 = ops::select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2010)).unwrap();
        let q2 = ops::select(&tgdb, &q, NodeFilter::cmp("year", CmpOp::Gt, 2012)).unwrap();
        let mut cache = QueryCache::new();
        let a = cache.get_or_compute(&tgdb, &q1).unwrap();
        let b = cache.get_or_compute(&tgdb, &q2).unwrap();
        assert_ne!(a.rows().len(), b.rows().len());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let base = ops::initiate(&tgdb, papers).unwrap();
        let mut cache = QueryCache::with_capacity(2);
        for year in [2000, 2001, 2002] {
            let q = ops::select(&tgdb, &base, NodeFilter::cmp("year", CmpOp::Gt, year)).unwrap();
            cache.get_or_compute(&tgdb, &q).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // The first pattern was evicted: re-requesting it is a miss.
        let q = ops::select(&tgdb, &base, NodeFilter::cmp("year", CmpOp::Gt, 2000)).unwrap();
        cache.get_or_compute(&tgdb, &q).unwrap();
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let tgdb = academic_tgdb();
        let (papers, _) = tgdb.schema.node_type_by_name("Papers").unwrap();
        let q = ops::initiate(&tgdb, papers).unwrap();
        let mut cache = QueryCache::with_capacity(0);
        cache.get_or_compute(&tgdb, &q).unwrap();
        cache.get_or_compute(&tgdb, &q).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 2);
    }
}
