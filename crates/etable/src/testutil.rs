//! Shared test fixture: a miniature version of the paper's academic
//! database (Figure 3 schema) with hand-picked instances, small enough to
//! verify results by eye but covering every relationship category.

#![allow(missing_docs)]

use etable_relational::database::Database;
use etable_relational::schema::{Column, ForeignKey, TableSchema};
use etable_relational::value::{DataType, Value};
use etable_tgm::{translate, Tgdb, TranslateOptions};

/// Builds the relational form of the mini academic database.
///
/// Contents:
/// * Conferences: SIGMOD(1), KDD(2)
/// * Institutions: Univ. of Michigan (USA), Seoul National Univ. (South
///   Korea), Univ. of Washington (USA)
/// * Authors: Jagadish(MI), Nandi(MI), Kim(SNU), Kwon(UW)
/// * Papers: 10 "Making database systems usable" (SIGMOD 2007, authors
///   Jagadish+Nandi, keywords usability+user interface),
///   11 "SkewTune" (SIGMOD 2012, authors Kwon, keyword skew, cites 10),
///   12 "Guided interaction" (KDD 2011, authors Nandi+Kim, keyword user
///   interface, cites 10),
///   13 "Deep stuff" (KDD 2014, author Kim, keyword deep learning, cites 11
///   and 12)
pub fn academic_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "Conferences",
            vec![
                Column::new("id", DataType::Int),
                Column::new("acronym", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Institutions",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("country", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Authors",
            vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::nullable("institution_id", DataType::Int),
            ],
        )
        .with_primary_key(&["id"])
        .with_foreign_key(ForeignKey::single("institution_id", "Institutions", "id")),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Papers",
            vec![
                Column::new("id", DataType::Int),
                Column::new("conference_id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["id"])
        .with_foreign_key(ForeignKey::single("conference_id", "Conferences", "id")),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Paper_Authors",
            vec![
                Column::new("paper_id", DataType::Int),
                Column::new("author_id", DataType::Int),
                Column::new("ord", DataType::Int),
            ],
        )
        .with_primary_key(&["paper_id", "author_id"])
        .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id"))
        .with_foreign_key(ForeignKey::single("author_id", "Authors", "id")),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Paper_Keywords",
            vec![
                Column::new("paper_id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ],
        )
        .with_primary_key(&["paper_id", "keyword"])
        .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id")),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Paper_References",
            vec![
                Column::new("paper_id", DataType::Int),
                Column::new("ref_paper_id", DataType::Int),
            ],
        )
        .with_primary_key(&["paper_id", "ref_paper_id"])
        .with_foreign_key(ForeignKey::single("paper_id", "Papers", "id"))
        .with_foreign_key(ForeignKey::single("ref_paper_id", "Papers", "id")),
    )
    .unwrap();

    let rows: &[(&str, Vec<Vec<Value>>)] = &[
        (
            "Conferences",
            vec![
                vec![1.into(), "SIGMOD".into()],
                vec![2.into(), "KDD".into()],
            ],
        ),
        (
            "Institutions",
            vec![
                vec![1.into(), "Univ. of Michigan".into(), "USA".into()],
                vec![
                    2.into(),
                    "Seoul National Univ.".into(),
                    "South Korea".into(),
                ],
                vec![3.into(), "Univ. of Washington".into(), "USA".into()],
            ],
        ),
        (
            "Authors",
            vec![
                vec![100.into(), "H. V. Jagadish".into(), 1.into()],
                vec![101.into(), "Arnab Nandi".into(), 1.into()],
                vec![102.into(), "Minsuk Kim".into(), 2.into()],
                vec![103.into(), "YongChul Kwon".into(), 3.into()],
            ],
        ),
        (
            "Papers",
            vec![
                vec![
                    10.into(),
                    1.into(),
                    "Making database systems usable".into(),
                    2007.into(),
                ],
                vec![11.into(), 1.into(), "SkewTune".into(), 2012.into()],
                vec![
                    12.into(),
                    2.into(),
                    "Guided interaction".into(),
                    2011.into(),
                ],
                vec![13.into(), 2.into(), "Deep stuff".into(), 2014.into()],
            ],
        ),
        (
            "Paper_Authors",
            vec![
                vec![10.into(), 100.into(), 1.into()],
                vec![10.into(), 101.into(), 2.into()],
                vec![11.into(), 103.into(), 1.into()],
                vec![12.into(), 101.into(), 1.into()],
                vec![12.into(), 102.into(), 2.into()],
                vec![13.into(), 102.into(), 1.into()],
            ],
        ),
        (
            "Paper_Keywords",
            vec![
                vec![10.into(), "usability".into()],
                vec![10.into(), "user interface".into()],
                vec![11.into(), "skew".into()],
                vec![12.into(), "user interface".into()],
                vec![13.into(), "deep learning".into()],
            ],
        ),
        (
            "Paper_References",
            vec![
                vec![11.into(), 10.into()],
                vec![12.into(), 10.into()],
                vec![13.into(), 11.into()],
                vec![13.into(), 12.into()],
            ],
        ),
    ];
    for (table, trows) in rows {
        for row in trows {
            db.insert(table, row.clone()).unwrap();
        }
    }
    db.check_integrity().unwrap();
    db
}

/// The mini academic database translated into a TGDB with default options.
pub fn academic_tgdb() -> Tgdb {
    translate(&academic_db(), &TranslateOptions::default()).unwrap()
}
