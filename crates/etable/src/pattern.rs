//! ETable query patterns (paper Definition 3) and node filters.
//!
//! A query pattern `Q = (τa, T, P, C)` is an acyclic, connected graph of
//! *pattern nodes* (occurrences of schema node types — the same type may
//! occur several times, like a relation can appear twice in a relational
//! algebra expression), *pattern edges* (occurrences of schema edge types),
//! per-node selection conditions, and one node marked primary.

use crate::{Error, Result};
use etable_relational::expr::CmpOp;
use etable_relational::value::Value;
use etable_tgm::{EdgeTypeId, NodeId, NodeTypeId, Tgdb};
use std::fmt;

/// Identifies a pattern node (an occurrence of a node type) within one
/// [`QueryPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternNodeId(pub usize);

impl fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A single predicate over one node (one clause of a conjunction).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterAtom {
    /// Compare an attribute with a literal.
    Cmp {
        /// Attribute name of the node type.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `attr LIKE pattern` (case-insensitive, `%`/`_` wildcards).
    Like {
        /// Attribute name.
        attr: String,
        /// LIKE pattern.
        pattern: String,
    },
    /// `attr NOT LIKE pattern`.
    NotLike {
        /// Attribute name.
        attr: String,
        /// LIKE pattern.
        pattern: String,
    },
    /// `attr IN (v1, ..., vn)`.
    In {
        /// Attribute name.
        attr: String,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// `attr IS NULL`.
    IsNull {
        /// Attribute name.
        attr: String,
    },
    /// Identity: the node is exactly this instance node. Produced by the
    /// `Single` and `Seeall` user actions ("C = {u | u = vk}" in §6.1).
    NodeIs(NodeId),
    /// The label of at least one neighbor along `edge` matches a LIKE
    /// pattern. This is the paper's "filter rows by the labels of the
    /// neighbor node columns (e.g., authors' names), which is translated
    /// into subqueries" (§6.1, Filter).
    NeighborLabelLike {
        /// Edge type leaving this node's type.
        edge: EdgeTypeId,
        /// LIKE pattern applied to neighbor labels.
        pattern: String,
    },
}

/// A conjunction of [`FilterAtom`]s applied to one pattern node.
///
/// The paper's interface builds conjunctions only ("We currently provide
/// only a conjunction of predicates"); disjunctions within an attribute can
/// be expressed through `In`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeFilter {
    /// The conjoined atoms; empty means "no condition".
    pub atoms: Vec<FilterAtom>,
}

impl NodeFilter {
    /// The empty (always-true) filter.
    pub fn none() -> Self {
        NodeFilter::default()
    }

    /// A filter with a single atom.
    pub fn atom(atom: FilterAtom) -> Self {
        NodeFilter { atoms: vec![atom] }
    }

    /// `attr op value`.
    pub fn cmp(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Self::atom(FilterAtom::Cmp {
            attr: attr.into(),
            op,
            value: value.into(),
        })
    }

    /// `attr LIKE pattern`.
    pub fn like(attr: impl Into<String>, pattern: impl Into<String>) -> Self {
        Self::atom(FilterAtom::Like {
            attr: attr.into(),
            pattern: pattern.into(),
        })
    }

    /// Exactly this node.
    pub fn node_is(node: NodeId) -> Self {
        Self::atom(FilterAtom::NodeIs(node))
    }

    /// True when no atoms are present.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjoins another filter into this one.
    pub fn and(mut self, other: NodeFilter) -> Self {
        self.atoms.extend(other.atoms);
        self
    }

    /// Evaluates the filter against an instance node.
    pub fn eval(&self, tgdb: &Tgdb, node: NodeId) -> Result<bool> {
        for atom in &self.atoms {
            if !eval_atom(atom, tgdb, node)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Renders the filter for the schema view, e.g. `year > 2005`.
    ///
    /// Edge references appear as raw ids; prefer
    /// [`NodeFilter::display_with`] when a schema is at hand.
    pub fn display(&self) -> String {
        self.atoms
            .iter()
            .map(|a| atom_display(a, None))
            .collect::<Vec<_>>()
            .join(" AND ")
    }

    /// Renders the filter with schema context, resolving edge names (e.g.
    /// `Paper_Keywords: keyword like '%user%'` instead of `et8 label ...`).
    pub fn display_with(&self, tgdb: &Tgdb) -> String {
        self.atoms
            .iter()
            .map(|a| atom_display(a, Some(tgdb)))
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

fn atom_display(atom: &FilterAtom, tgdb: Option<&Tgdb>) -> String {
    match atom {
        FilterAtom::Cmp { attr, op, value } => match value {
            Value::Text(s) => format!("{attr} {op} '{s}'"),
            other => format!("{attr} {op} {other}"),
        },
        FilterAtom::Like { attr, pattern } => format!("{attr} like '{pattern}'"),
        FilterAtom::NotLike { attr, pattern } => format!("{attr} not like '{pattern}'"),
        FilterAtom::In { attr, values } => {
            let list = values
                .iter()
                .map(|v| match v {
                    Value::Text(s) => format!("'{s}'"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("{attr} in ({list})")
        }
        FilterAtom::IsNull { attr } => format!("{attr} is null"),
        FilterAtom::NodeIs(n) => match tgdb {
            Some(t) => format!("node = '{}'", t.instances.label(&t.schema, *n)),
            None => format!("node = {n}"),
        },
        FilterAtom::NeighborLabelLike { edge, pattern } => match tgdb {
            Some(t) => format!("{} like '{pattern}'", t.schema.edge_type(*edge).name),
            None => format!("{edge} label like '{pattern}'"),
        },
    }
}

fn eval_atom(atom: &FilterAtom, tgdb: &Tgdb, node: NodeId) -> Result<bool> {
    let attr_value = |attr: &str| -> Result<&Value> {
        tgdb.instances
            .attr(&tgdb.schema, node, attr)
            .ok_or_else(|| {
                let nt = tgdb.schema.node_type(tgdb.instances.type_of(node));
                Error::UnknownAttribute {
                    node_type: nt.name.clone(),
                    attr: attr.to_string(),
                }
            })
    };
    match atom {
        FilterAtom::Cmp { attr, op, value } => {
            let v = attr_value(attr)?;
            let ord = v.sql_cmp(value);
            Ok(match ord {
                None => false,
                Some(o) => match op {
                    CmpOp::Eq => o == std::cmp::Ordering::Equal,
                    CmpOp::Ne => o != std::cmp::Ordering::Equal,
                    CmpOp::Lt => o == std::cmp::Ordering::Less,
                    CmpOp::Le => o != std::cmp::Ordering::Greater,
                    CmpOp::Gt => o == std::cmp::Ordering::Greater,
                    CmpOp::Ge => o != std::cmp::Ordering::Less,
                },
            })
        }
        FilterAtom::Like { attr, pattern } => {
            let v = attr_value(attr)?;
            Ok(match v {
                Value::Null => false,
                other => etable_relational::expr::like_match(&other.to_string(), pattern),
            })
        }
        FilterAtom::NotLike { attr, pattern } => {
            let v = attr_value(attr)?;
            Ok(match v {
                Value::Null => false,
                other => !etable_relational::expr::like_match(&other.to_string(), pattern),
            })
        }
        FilterAtom::In { attr, values } => {
            let v = attr_value(attr)?;
            Ok(values.iter().any(|w| v.sql_eq(w) == Some(true)))
        }
        FilterAtom::IsNull { attr } => Ok(attr_value(attr)?.is_null()),
        FilterAtom::NodeIs(target) => Ok(node == *target),
        FilterAtom::NeighborLabelLike { edge, pattern } => {
            let et = tgdb.schema.edge_type(*edge);
            if et.source != tgdb.instances.type_of(node) {
                return Err(Error::InvalidEdge(format!(
                    "edge `{}` does not leave node type `{}`",
                    et.name,
                    tgdb.schema.node_type(tgdb.instances.type_of(node)).name
                )));
            }
            Ok(tgdb.instances.neighbors(*edge, node).iter().any(|&n| {
                etable_relational::expr::like_match(&tgdb.instances.label(&tgdb.schema, n), pattern)
            }))
        }
    }
}

/// A pattern node: one occurrence of a schema node type with a condition.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternNode {
    /// The schema node type this occurrence instantiates.
    pub node_type: NodeTypeId,
    /// The selection condition `Ci` (possibly empty).
    pub filter: NodeFilter,
}

/// A pattern edge: one occurrence of a schema edge type connecting two
/// pattern nodes. `edge_type` must run from `from`'s type to `to`'s type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternEdge {
    /// The schema edge type.
    pub edge_type: EdgeTypeId,
    /// Source pattern node (the pre-existing one when built via `Add`).
    pub from: PatternNodeId,
    /// Target pattern node (the newly added one when built via `Add`).
    pub to: PatternNodeId,
}

/// A query pattern `Q = (τa, T, P, C)`.
///
/// Invariants (checked by [`QueryPattern::validate`]):
/// * the pattern graph is a tree (acyclic and connected),
/// * every edge's schema type matches its endpoints' node types,
/// * the primary node exists.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPattern {
    /// Participating node occurrences `T`.
    pub nodes: Vec<PatternNode>,
    /// Participating edge occurrences `P`.
    pub edges: Vec<PatternEdge>,
    /// The primary node `τa`.
    pub primary: PatternNodeId,
}

impl QueryPattern {
    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the pattern has no nodes (never valid; exists for
    /// completeness of the API).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node occurrence ids.
    pub fn node_ids(&self) -> impl Iterator<Item = PatternNodeId> {
        (0..self.nodes.len()).map(PatternNodeId)
    }

    /// A pattern node by id.
    pub fn node(&self, id: PatternNodeId) -> &PatternNode {
        &self.nodes[id.0]
    }

    /// The primary pattern node.
    pub fn primary_node(&self) -> &PatternNode {
        self.node(self.primary)
    }

    /// Edges incident to `id`, each with the neighbor and the edge type id
    /// oriented *away* from `id` (using the reverse type when necessary).
    pub fn incident(&self, tgdb: &Tgdb, id: PatternNodeId) -> Vec<(PatternNodeId, EdgeTypeId)> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.from == id {
                out.push((e.to, e.edge_type));
            } else if e.to == id {
                out.push((e.from, tgdb.schema.edge_type(e.edge_type).reverse));
            }
        }
        out
    }

    /// The unique tree path from `from` to `to` as a list of
    /// `(next node, edge type oriented along the walk)` steps.
    pub fn path(
        &self,
        tgdb: &Tgdb,
        from: PatternNodeId,
        to: PatternNodeId,
    ) -> Result<Vec<(PatternNodeId, EdgeTypeId)>> {
        // BFS with parent tracking; patterns are small so this is cheap.
        let mut parent: Vec<Option<(PatternNodeId, EdgeTypeId)>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[from.0] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            for (next, et) in self.incident(tgdb, cur) {
                if !visited[next.0] {
                    visited[next.0] = true;
                    parent[next.0] = Some((cur, et));
                    queue.push_back(next);
                }
            }
        }
        if !visited[to.0] {
            return Err(Error::Disconnected);
        }
        let mut steps = Vec::new();
        let mut cur = to;
        while cur != from {
            let (prev, et) = parent[cur.0].expect("visited nodes have parents");
            steps.push((cur, et));
            cur = prev;
        }
        steps.reverse();
        Ok(steps)
    }

    /// Checks the structural invariants against the schema.
    pub fn validate(&self, tgdb: &Tgdb) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(Error::EmptyPattern);
        }
        if self.primary.0 >= self.nodes.len() {
            return Err(Error::InvalidNode(format!(
                "primary {} out of range",
                self.primary
            )));
        }
        // Tree: n nodes, n-1 edges, connected.
        if self.edges.len() != self.nodes.len() - 1 {
            return Err(Error::NotATree(format!(
                "{} nodes but {} edges",
                self.nodes.len(),
                self.edges.len()
            )));
        }
        for e in &self.edges {
            if e.from.0 >= self.nodes.len() || e.to.0 >= self.nodes.len() {
                return Err(Error::InvalidNode(format!(
                    "edge endpoint out of range ({} -> {})",
                    e.from, e.to
                )));
            }
            let et = tgdb.schema.edge_type(e.edge_type);
            if et.source != self.nodes[e.from.0].node_type
                || et.target != self.nodes[e.to.0].node_type
            {
                return Err(Error::InvalidEdge(format!(
                    "edge type `{}` does not connect the node types of {} and {}",
                    et.name, e.from, e.to
                )));
            }
        }
        // Connectivity from the primary.
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![self.primary];
        visited[self.primary.0] = true;
        let mut seen = 1;
        while let Some(cur) = stack.pop() {
            for (next, _) in self.incident(tgdb, cur) {
                if !visited[next.0] {
                    visited[next.0] = true;
                    seen += 1;
                    stack.push(next);
                }
            }
        }
        if seen != self.nodes.len() {
            return Err(Error::Disconnected);
        }
        Ok(())
    }

    /// A canonical string key for caching: stable under re-execution of the
    /// same logical query.
    pub fn canonical_key(&self, tgdb: &Tgdb) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                s,
                "n{i}:{}[{}];",
                tgdb.schema.node_type(n.node_type).name,
                n.filter.display()
            );
        }
        for e in &self.edges {
            let _ = write!(s, "e{}-{}-{};", e.from.0, e.edge_type, e.to.0);
        }
        let _ = write!(s, "primary={}", self.primary.0);
        s
    }

    /// Renders the pattern as an indented tree diagram rooted at the primary
    /// node (the schema view of Figure 9; compare Figure 6).
    pub fn diagram(&self, tgdb: &Tgdb) -> String {
        let mut out = String::new();
        let mut visited = vec![false; self.nodes.len()];
        self.diagram_rec(tgdb, self.primary, None, 0, &mut visited, &mut out);
        out
    }

    fn diagram_rec(
        &self,
        tgdb: &Tgdb,
        cur: PatternNodeId,
        via: Option<EdgeTypeId>,
        depth: usize,
        visited: &mut [bool],
        out: &mut String,
    ) {
        use std::fmt::Write;
        visited[cur.0] = true;
        let node = self.node(cur);
        let type_name = &tgdb.schema.node_type(node.node_type).name;
        let indent = "    ".repeat(depth);
        let arrow = match via {
            Some(et) => format!("--[{}]--> ", tgdb.schema.edge_type(et).name),
            None => String::new(),
        };
        let star = if cur == self.primary { " *" } else { "" };
        let cond = if node.filter.is_empty() {
            String::new()
        } else {
            format!(" {{{}}}", node.filter.display_with(tgdb))
        };
        let _ = writeln!(out, "{indent}{arrow}{type_name}{star}{cond}");
        for (next, et) in self.incident(tgdb, cur) {
            if !visited[next.0] {
                self.diagram_rec(tgdb, next, Some(et), depth + 1, visited, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::testutil::academic_tgdb;
    use etable_relational::expr::CmpOp;

    fn chain(tgdb: &Tgdb) -> QueryPattern {
        // Conferences - Papers - Authors - Institutions
        let (confs, _) = tgdb.schema.node_type_by_name("Conferences").unwrap();
        let q = ops::initiate(tgdb, confs).unwrap();
        let (pe, _) = tgdb.schema.outgoing_by_name(confs, "Papers").unwrap();
        let q = ops::add(tgdb, &q, pe).unwrap();
        let papers_ty = q.primary_node().node_type;
        let (ae, _) = tgdb.schema.outgoing_by_name(papers_ty, "Authors").unwrap();
        let q = ops::add(tgdb, &q, ae).unwrap();
        let authors_ty = q.primary_node().node_type;
        let (ie, _) = tgdb
            .schema
            .outgoing_by_name(authors_ty, "Institutions")
            .unwrap();
        ops::add(tgdb, &q, ie).unwrap()
    }

    #[test]
    fn path_walks_the_unique_tree_route() {
        let tgdb = academic_tgdb();
        let q = chain(&tgdb);
        // From Institutions occurrence (3) back to Conferences (0).
        let path = q.path(&tgdb, PatternNodeId(3), PatternNodeId(0)).unwrap();
        assert_eq!(path.len(), 3);
        let nodes: Vec<usize> = path.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![2, 1, 0]);
        // Each step's edge type leaves the previous node's type.
        let mut cur = PatternNodeId(3);
        for (next, et) in path {
            let e = tgdb.schema.edge_type(et);
            assert_eq!(e.source, q.node(cur).node_type);
            assert_eq!(e.target, q.node(next).node_type);
            cur = next;
        }
        // Trivial path.
        assert!(q
            .path(&tgdb, PatternNodeId(1), PatternNodeId(1))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn canonical_key_distinguishes_patterns() {
        let tgdb = academic_tgdb();
        let q = chain(&tgdb);
        let k1 = q.canonical_key(&tgdb);
        // Same structure, different primary -> different key.
        let shifted = ops::shift(&q, PatternNodeId(0)).unwrap();
        assert_ne!(k1, shifted.canonical_key(&tgdb));
        // Different filter -> different key.
        let filtered = ops::select_on(
            &tgdb,
            &q,
            PatternNodeId(1),
            NodeFilter::cmp("year", CmpOp::Gt, 2005),
        )
        .unwrap();
        assert_ne!(k1, filtered.canonical_key(&tgdb));
        // Rebuilding the identical pattern gives the identical key.
        assert_eq!(k1, chain(&tgdb).canonical_key(&tgdb));
    }

    #[test]
    fn validate_rejects_broken_structures() {
        let tgdb = academic_tgdb();
        let good = chain(&tgdb);
        // Extra edge -> not a tree.
        let mut cyclic = good.clone();
        cyclic.edges.push(cyclic.edges[0]);
        assert!(matches!(
            cyclic.validate(&tgdb),
            Err(crate::Error::NotATree(_))
        ));
        // Mistyped edge.
        let mut mistyped = good.clone();
        mistyped.edges[0].to = PatternNodeId(2); // Conferences-edge into Authors
        assert!(mistyped.validate(&tgdb).is_err());
        // Out-of-range primary.
        let mut bad_primary = good.clone();
        bad_primary.primary = PatternNodeId(9);
        assert!(bad_primary.validate(&tgdb).is_err());
        // Disconnected: two nodes, an edge count of one, but the edge
        // connects a node to itself-typed duplicate incorrectly removed.
        let mut disconnected = good;
        disconnected.edges.remove(1);
        assert!(disconnected.validate(&tgdb).is_err());
    }

    #[test]
    fn incident_orients_edges_away_from_the_node() {
        let tgdb = academic_tgdb();
        let q = chain(&tgdb);
        // Papers occurrence (1) touches Conferences (0) and Authors (2).
        let inc = q.incident(&tgdb, PatternNodeId(1));
        assert_eq!(inc.len(), 2);
        for (nb, et) in inc {
            let e = tgdb.schema.edge_type(et);
            assert_eq!(e.source, q.node(PatternNodeId(1)).node_type);
            assert_eq!(e.target, q.node(nb).node_type);
        }
    }

    #[test]
    fn diagram_is_deterministic_and_complete() {
        let tgdb = academic_tgdb();
        let q = chain(&tgdb);
        let d1 = q.diagram(&tgdb);
        let d2 = q.diagram(&tgdb);
        assert_eq!(d1, d2);
        for name in ["Conferences", "Papers", "Authors", "Institutions"] {
            assert!(d1.contains(name), "{d1}");
        }
        // Exactly one primary marker.
        assert_eq!(d1.matches(" *").count(), 1, "{d1}");
    }

    #[test]
    fn node_filter_helpers_compose() {
        let f = NodeFilter::cmp("year", CmpOp::Gt, 2005).and(NodeFilter::like("title", "%user%"));
        assert_eq!(f.atoms.len(), 2);
        assert!(f.display().contains("year > 2005"));
        assert!(f.display().contains("title like '%user%'"));
        assert!(NodeFilter::none().is_empty());
    }
}
