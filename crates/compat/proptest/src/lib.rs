//! Offline stand-in for the subset of crates.io `proptest` 1.x this
//! workspace uses: the `proptest!` macro over integer-range strategies,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Each test case deterministically samples its strategies from a stream
//! keyed on the test name and case index, so failures are reproducible
//! run-to-run. There is no shrinking: a failure reports the exact sampled
//! inputs instead so the case can be replayed by hand.
//! See `crates/compat/README.md` for the replacement policy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Test-runner configuration and failure plumbing, mirroring
/// `proptest::test_runner`.
pub mod test_runner {
    /// How the generated test loop behaves.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is exercised with.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property, carried out of the case body by
    /// `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Value generation, mirroring (a sliver of) `proptest::strategy`.
pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    /// The deterministic sampler threaded through a property's cases.
    #[derive(Debug, Clone)]
    pub struct Sampler {
        state: u64,
    }

    impl Sampler {
        /// A sampler keyed on `(test name, case index)`.
        pub fn new(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            Sampler {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A source of values for one `name in strategy` binding.
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draws one value.
        fn sample(&self, sampler: &mut Sampler) -> Self::Value;
    }

    macro_rules! impl_strategy_for_int_ranges {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, sampler: &mut Sampler) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((sampler.next_u64() as u128) % span) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, sampler: &mut Sampler) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = ((sampler.next_u64() as u128) % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )+};
    }

    impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests over range strategies, mirroring
/// `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut sampler =
                        $crate::strategy::Sampler::new(stringify!($name), case);
                    $(let $arg = ($strategy).sample(&mut sampler);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest case {case} of {total} failed: {err}\n  inputs: {inputs}",
                            case = case,
                            total = config.cases,
                            err = err,
                            inputs = [$(format!("{} = {:?}", stringify!($arg), $arg)),+]
                                .join(", "),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// `assert!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left, right, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest failure channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn samples_stay_in_bounds(a in 0u64..100, b in 1usize..7) {
            prop_assert!(a < 100);
            prop_assert!((1..7).contains(&b));
        }

        #[test]
        fn assert_eq_passes_on_equal(a in 0i64..50) {
            prop_assert_eq!(a, a, "identity must hold for {}", a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name_and_case() {
        use crate::strategy::{Sampler, Strategy};
        let draw = |case| (0u64..1_000_000).sample(&mut Sampler::new("t", case));
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::proptest! {
                #![proptest_config(crate::test_runner::Config::with_cases(4))]
                fn always_fails(x in 0u64..10) {
                    crate::prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("inputs: x ="), "message was: {err}");
    }
}
