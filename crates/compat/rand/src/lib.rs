//! Offline stand-in for the subset of crates.io `rand` 0.8 this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_ratio}`.
//!
//! The generator is SplitMix64 — deterministic and fast, but **not** the
//! same stream as the real `rand`'s ChaCha12-based `StdRng`. Consumers
//! must assert properties of drawn data, never exact stream values.
//! See `crates/compat/README.md` for the replacement policy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can draw uniformly.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough
/// that type inference behaves identically at call sites (one blanket
/// `SampleRange` impl per range shape, parameterised by the element).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`, or `[low, high]` when
    /// `inclusive`. Panics on an empty range.
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let draw = ((rng.next_u64() as u128) % span as u128) as i128;
                (low as i128 + draw) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        if inclusive {
            // [low, high]: unit spans [0, 1] (divide by the max of the
            // 53-bit draw), and low == high is a valid one-point range.
            assert!(low <= high, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            low + unit * (high - low)
        } else {
            assert!(low < high, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            low + unit * (high - low)
        }
    }
}

/// Range shapes usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio requires 0 <= numerator <= denominator, denominator > 0"
        );
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-advance once so that seed 0 does not emit a low-entropy
            // first word.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            StdRng { state: rng.state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn inclusive_float_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        // A one-point inclusive range is valid (real rand accepts it too).
        assert_eq!(rng.gen_range(2.5f64..=2.5), 2.5);
        for _ in 0..1_000 {
            let v = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
