//! Offline stand-in for the subset of crates.io `criterion` 0.5 this
//! workspace uses. It genuinely measures wall-clock time (warm-up plus
//! sampled statistics), prints one line per benchmark, and — unlike real
//! criterion — writes a machine-readable summary so the perf trajectory can
//! be tracked across PRs. There is no HTML reporting or baseline
//! comparison. See `crates/compat/README.md` for the replacement policy.
//!
//! ## Statistics
//!
//! Each benchmark reports the **median**, **mean** and **standard
//! deviation** of its samples after simple IQR outlier rejection (samples
//! outside `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]` are dropped and counted), plus
//! the raw minimum. The median/IQR combination makes the printed numbers
//! citable on a noisy machine; the rejected-outlier count shows when they
//! are not.
//!
//! ## Machine-readable results
//!
//! `criterion_main!` writes every recorded benchmark to a JSON file when
//! the process ends: `BENCH_results.json` in the working directory, or the
//! path in the `BENCH_RESULTS_PATH` environment variable. The file is a
//! JSON array of objects with `name`, `samples`, `outliers_rejected`, and
//! nanosecond-valued `median_ns`/`mean_ns`/`stddev_ns`/`min_ns`/`max_ns`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one wall-clock sample per
    /// call after a single warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, also defeats DCE
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Summary statistics for one benchmark after IQR outlier rejection.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Samples kept after rejection.
    pub samples: usize,
    /// Samples dropped by the IQR fence.
    pub outliers_rejected: usize,
    /// Median of the kept samples, in nanoseconds.
    pub median_ns: f64,
    /// Mean of the kept samples, in nanoseconds.
    pub mean_ns: f64,
    /// Population standard deviation of the kept samples, in nanoseconds.
    pub stddev_ns: f64,
    /// Minimum over *all* samples (outliers only ever slow a benchmark
    /// down, so the raw minimum stays meaningful), in nanoseconds.
    pub min_ns: f64,
    /// Maximum over the kept samples, in nanoseconds.
    pub max_ns: f64,
}

/// Median of a sorted slice.
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Type-7 (linear interpolation) quantile of a sorted slice, as used by
/// most statistics packages.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Computes [`Stats`] from raw samples: sorts, drops samples outside
/// `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`, then summarizes what is left.
pub fn compute_stats(samples: &[Duration]) -> Option<Stats> {
    if samples.is_empty() {
        return None;
    }
    let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    ns.sort_by(f64::total_cmp);
    let raw_min = ns[0];
    let q1 = quantile_sorted(&ns, 0.25);
    let q3 = quantile_sorted(&ns, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = ns.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
    // The fences always contain the quartiles, so `kept` is never empty.
    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let var = kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Some(Stats {
        samples: kept.len(),
        outliers_rejected: ns.len() - kept.len(),
        median_ns: median_sorted(&kept),
        mean_ns: mean,
        stddev_ns: var.sqrt(),
        min_ns: raw_min,
        max_ns: *kept.last().expect("non-empty"),
    })
}

/// One recorded benchmark, kept for the JSON report.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    stats: Stats,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let full = if group.is_empty() {
        id.to_string()
    } else if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    let Some(stats) = compute_stats(samples) else {
        println!("{full:<48} (no samples)");
        return;
    };
    println!(
        "{full:<48} median {:>12}   mean {:>12} ± {:<12} min {:>12}   ({} samples{})",
        fmt_ns(stats.median_ns),
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.stddev_ns),
        fmt_ns(stats.min_ns),
        stats.samples,
        if stats.outliers_rejected > 0 {
            format!(", {} outliers rejected", stats.outliers_rejected)
        } else {
            String::new()
        },
    );
    RECORDS
        .lock()
        .expect("bench records poisoned")
        .push(Record { name: full, stats });
}

/// Serializes every recorded benchmark as a JSON array (sorted by name).
pub fn results_json() -> String {
    let mut records = RECORDS.lock().expect("bench records poisoned").clone();
    records.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let name = r
            .name
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace(|c: char| (c as u32) < 0x20, " ");
        out.push_str(&format!(
            "  {{\"name\": \"{name}\", \"samples\": {}, \"outliers_rejected\": {}, \
             \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"stddev_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
            r.stats.samples,
            r.stats.outliers_rejected,
            r.stats.median_ns,
            r.stats.mean_ns,
            r.stats.stddev_ns,
            r.stats.min_ns,
            r.stats.max_ns,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Writes the JSON report to `BENCH_RESULTS_PATH` (default
/// `BENCH_results.json`). Called by `criterion_main!` after all groups run;
/// a write failure is reported but never fails the bench run.
pub fn write_results() {
    let path = std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| "BENCH_results.json".into());
    if RECORDS.lock().expect("bench records poisoned").is_empty() {
        return;
    }
    match std::fs::write(&path, results_json()) {
        Ok(()) => println!("\nbench results written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep sample counts modest: the shim runs benches inline (also
        // under `cargo test --benches` smoke runs), not in a tuned rig.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        routine(&mut b);
        report("", id, &b.samples);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
/// After all groups run, the machine-readable results file is written
/// (see [`write_results`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("translate", 300).to_string(),
            "translate/300"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn median_handles_odd_and_even() {
        let odd: Vec<Duration> = [10, 20, 30]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        assert_eq!(compute_stats(&odd).unwrap().median_ns, 20.0);
        let even: Vec<Duration> = [10, 20, 30, 40]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        assert_eq!(compute_stats(&even).unwrap().median_ns, 25.0);
    }

    #[test]
    fn stddev_of_constant_samples_is_zero() {
        let s: Vec<Duration> = std::iter::repeat_n(Duration::from_nanos(100), 8).collect();
        let stats = compute_stats(&s).unwrap();
        assert_eq!(stats.mean_ns, 100.0);
        assert_eq!(stats.stddev_ns, 0.0);
        assert_eq!(stats.outliers_rejected, 0);
    }

    #[test]
    fn iqr_rejects_a_gross_outlier() {
        // Nine tight samples and one 100x spike: the spike must be
        // rejected, leaving median/mean near the cluster.
        let mut ns: Vec<u64> = vec![100, 101, 99, 100, 102, 98, 100, 101, 99];
        ns.push(10_000);
        let s: Vec<Duration> = ns.iter().map(|&n| Duration::from_nanos(n)).collect();
        let stats = compute_stats(&s).unwrap();
        assert_eq!(stats.outliers_rejected, 1);
        assert_eq!(stats.samples, 9);
        assert!(stats.median_ns <= 102.0, "median {}", stats.median_ns);
        assert!(stats.mean_ns <= 102.0, "mean {}", stats.mean_ns);
        // The raw minimum is unaffected by rejection.
        assert_eq!(stats.min_ns, 98.0);
    }

    #[test]
    fn empty_samples_have_no_stats() {
        assert!(compute_stats(&[]).is_none());
    }

    #[test]
    fn results_json_is_well_formed() {
        let mut c = Criterion::default();
        c.bench_function("json-shape-test", |b| b.iter(|| 1 + 1));
        let json = results_json();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\": \"json-shape-test\""), "{json}");
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"stddev_ns\""));
        assert!(json.contains("\"outliers_rejected\""));
    }

    #[test]
    fn write_results_honors_env_path() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        // Record at least one benchmark, then write through the env hook.
        let mut c = Criterion::default();
        c.bench_function("write-results-test", |b| b.iter(|| 2 + 2));
        std::env::set_var("BENCH_RESULTS_PATH", &path);
        write_results();
        std::env::remove_var("BENCH_RESULTS_PATH");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("write-results-test"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
