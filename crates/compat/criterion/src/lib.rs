//! Offline stand-in for the subset of crates.io `criterion` 0.5 this
//! workspace uses. It genuinely measures wall-clock time (warm-up plus
//! sampled statistics), prints one line per benchmark, and — unlike real
//! criterion — writes a machine-readable summary so the perf trajectory can
//! be tracked across PRs. There is no HTML reporting or baseline
//! comparison. See `crates/compat/README.md` for the replacement policy.
//!
//! ## Statistics
//!
//! Each benchmark reports the **median**, **mean** and **standard
//! deviation** of its samples after simple IQR outlier rejection (samples
//! outside `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]` are dropped and counted), plus
//! the raw minimum. The median/IQR combination makes the printed numbers
//! citable on a noisy machine; the rejected-outlier count shows when they
//! are not.
//!
//! ## Machine-readable results
//!
//! `criterion_main!` writes every recorded benchmark to a JSON file when
//! the process ends: `BENCH_results.json` in the working directory, or the
//! path in the `BENCH_RESULTS_PATH` environment variable. The file is a
//! JSON array of objects with `name`, `samples`, `outliers_rejected`, and
//! nanosecond-valued `median_ns`/`mean_ns`/`stddev_ns`/`min_ns`/`max_ns`.
//! Each bench target runs as its own process, so the writer **merges** into
//! an existing results file: entries whose name was re-recorded are
//! replaced, all others are kept — `cargo bench -p <pkg>` therefore
//! accumulates one cumulative file across all bench targets (delete the
//! file to drop entries for renamed/removed benchmarks).
//!
//! ## Baseline regression gate
//!
//! After writing results, `criterion_main!` compares the medians recorded
//! by *this process* against a committed baseline file
//! (`BENCH_baseline.json` in the working directory, overridable with
//! `BENCH_BASELINE_PATH`). When the baseline exists, a delta table is
//! printed and the process exits non-zero if any benchmark's median
//! regressed by more than `BENCH_REGRESSION_PCT` percent (default 25).
//! Benchmarks absent from the baseline pass with a `(new)` marker; a
//! missing baseline file disables the gate. Refresh the baseline by
//! copying a fresh results file over it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one wall-clock sample per
    /// call after a single warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, also defeats DCE
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Summary statistics for one benchmark after IQR outlier rejection.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Samples kept after rejection.
    pub samples: usize,
    /// Samples dropped by the IQR fence.
    pub outliers_rejected: usize,
    /// Median of the kept samples, in nanoseconds.
    pub median_ns: f64,
    /// Mean of the kept samples, in nanoseconds.
    pub mean_ns: f64,
    /// Population standard deviation of the kept samples, in nanoseconds.
    pub stddev_ns: f64,
    /// Minimum over *all* samples (outliers only ever slow a benchmark
    /// down, so the raw minimum stays meaningful), in nanoseconds.
    pub min_ns: f64,
    /// Maximum over the kept samples, in nanoseconds.
    pub max_ns: f64,
}

/// Median of a sorted slice.
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Type-7 (linear interpolation) quantile of a sorted slice, as used by
/// most statistics packages.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Computes [`Stats`] from raw samples: sorts, drops samples outside
/// `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`, then summarizes what is left.
pub fn compute_stats(samples: &[Duration]) -> Option<Stats> {
    if samples.is_empty() {
        return None;
    }
    let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    ns.sort_by(f64::total_cmp);
    let raw_min = ns[0];
    let q1 = quantile_sorted(&ns, 0.25);
    let q3 = quantile_sorted(&ns, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = ns.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
    // The fences always contain the quartiles, so `kept` is never empty.
    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let var = kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Some(Stats {
        samples: kept.len(),
        outliers_rejected: ns.len() - kept.len(),
        median_ns: median_sorted(&kept),
        mean_ns: mean,
        stddev_ns: var.sqrt(),
        min_ns: raw_min,
        max_ns: *kept.last().expect("non-empty"),
    })
}

/// One recorded benchmark, kept for the JSON report.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    stats: Stats,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let full = if group.is_empty() {
        id.to_string()
    } else if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    let Some(stats) = compute_stats(samples) else {
        println!("{full:<48} (no samples)");
        return;
    };
    println!(
        "{full:<48} median {:>12}   mean {:>12} ± {:<12} min {:>12}   ({} samples{})",
        fmt_ns(stats.median_ns),
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.stddev_ns),
        fmt_ns(stats.min_ns),
        stats.samples,
        if stats.outliers_rejected > 0 {
            format!(", {} outliers rejected", stats.outliers_rejected)
        } else {
            String::new()
        },
    );
    RECORDS
        .lock()
        .expect("bench records poisoned")
        .push(Record { name: full, stats });
}

fn record_object(r: &Record) -> String {
    let name = r
        .name
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace(|c: char| (c as u32) < 0x20, " ");
    format!(
        "{{\"name\": \"{name}\", \"samples\": {}, \"outliers_rejected\": {}, \
         \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"stddev_ns\": {:.1}, \
         \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
        r.stats.samples,
        r.stats.outliers_rejected,
        r.stats.median_ns,
        r.stats.mean_ns,
        r.stats.stddev_ns,
        r.stats.min_ns,
        r.stats.max_ns,
    )
}

/// Serializes every recorded benchmark as a JSON array (sorted by name).
pub fn results_json() -> String {
    let records = RECORDS.lock().expect("bench records poisoned").clone();
    let objects: Vec<(String, String)> = records
        .iter()
        .map(|r| (r.name.clone(), record_object(r)))
        .collect();
    render_array(objects)
}

fn render_array(mut objects: Vec<(String, String)>) -> String {
    objects.sort_by(|a, b| a.0.cmp(&b.0));
    objects.dedup_by(|a, b| a.0 == b.0);
    let mut out = String::from("[\n");
    for (i, (_, obj)) in objects.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(obj);
    }
    out.push_str("\n]\n");
    out
}

/// Splits a results/baseline file written by this shim into
/// `(name, raw object text)` pairs. Only the exact shape [`results_json`]
/// emits is supported (one object per line); unparseable lines are
/// skipped.
fn parse_objects(json: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let obj = line.trim().trim_end_matches(',');
        if !obj.starts_with('{') || !obj.ends_with('}') {
            continue;
        }
        if let Some(name) = extract_string(obj, "name") {
            out.push((name, obj.to_string()));
        }
    }
    out
}

fn extract_string(obj: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\": \"");
    let start = obj.find(&marker)? + marker.len();
    let mut name = String::new();
    let mut chars = obj[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(name),
            '\\' => name.push(chars.next()?),
            other => name.push(other),
        }
    }
    None
}

fn extract_number(obj: &str, field: &str) -> Option<f64> {
    let marker = format!("\"{field}\": ");
    let start = obj.find(&marker)? + marker.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses `(name, median_ns)` pairs out of a results/baseline file written
/// by this shim.
pub fn parse_results(json: &str) -> Vec<(String, f64)> {
    parse_objects(json)
        .into_iter()
        .filter_map(|(name, obj)| extract_number(&obj, "median_ns").map(|m| (name, m)))
        .collect()
}

/// Writes the JSON report to `BENCH_RESULTS_PATH` (default
/// `BENCH_results.json`), **merging** with any existing file: entries this
/// process re-recorded are replaced, entries recorded by other bench
/// targets are kept. Called by `criterion_main!` after all groups run; a
/// write failure is reported but never fails the bench run.
pub fn write_results() {
    let path = std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| "BENCH_results.json".into());
    write_results_to(&path);
}

/// [`write_results`] with an explicit destination, so tests exercise the
/// write/merge logic without mutating the process environment (concurrent
/// setenv/getenv in a multi-threaded test binary is undefined behavior on
/// glibc).
pub fn write_results_to(path: &str) {
    let records = RECORDS.lock().expect("bench records poisoned").clone();
    if records.is_empty() {
        return;
    }
    let mut objects: Vec<(String, String)> = std::fs::read_to_string(path)
        .map(|old| parse_objects(&old))
        .unwrap_or_default();
    objects.retain(|(name, _)| !records.iter().any(|r| r.name == *name));
    objects.extend(records.iter().map(|r| (r.name.clone(), record_object(r))));
    match std::fs::write(path, render_array(objects)) {
        Ok(()) => println!("\nbench results written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// The outcome of comparing one run against a baseline.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Human-readable delta table, one line per compared benchmark.
    pub lines: Vec<String>,
    /// Names whose median regressed past the threshold.
    pub regressions: Vec<String>,
}

/// Compares current medians against baseline medians. A benchmark fails
/// when its median exceeds the baseline median by more than
/// `threshold_pct` percent; benchmarks missing from the baseline are
/// reported as `(new)` and always pass.
pub fn compare_to_baseline(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    threshold_pct: f64,
) -> GateOutcome {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (name, median) in current {
        match baseline.iter().find(|(b, _)| b == name) {
            Some((_, base)) if *base > 0.0 => {
                let delta_pct = (median - base) / base * 100.0;
                let verdict = if delta_pct > threshold_pct {
                    regressions.push(name.clone());
                    "FAIL"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{name:<48} baseline {:>12}   now {:>12}   {delta_pct:>+8.1}%  {verdict}",
                    fmt_ns(*base),
                    fmt_ns(*median),
                ));
            }
            _ => lines.push(format!(
                "{name:<48} baseline {:>12}   now {:>12}   (new)",
                "-",
                fmt_ns(*median),
            )),
        }
    }
    GateOutcome { lines, regressions }
}

/// Runs the baseline regression gate for the benchmarks recorded by this
/// process. Returns `true` when the gate passes (or no baseline file
/// exists). Called by `criterion_main!`; a `false` return makes the bench
/// process exit non-zero.
pub fn check_baseline() -> bool {
    let path =
        std::env::var("BENCH_BASELINE_PATH").unwrap_or_else(|_| "BENCH_baseline.json".into());
    let threshold: f64 = std::env::var("BENCH_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(25.0);
    check_baseline_at(&path, threshold)
}

/// [`check_baseline`] with the baseline path and threshold passed
/// explicitly, so tests exercise the gate without mutating the process
/// environment.
pub fn check_baseline_at(path: &str, threshold: f64) -> bool {
    let Ok(contents) = std::fs::read_to_string(path) else {
        println!("no baseline at {path}; regression gate skipped");
        return true;
    };
    let baseline = parse_results(&contents);
    let current: Vec<(String, f64)> = RECORDS
        .lock()
        .expect("bench records poisoned")
        .iter()
        .map(|r| (r.name.clone(), r.stats.median_ns))
        .collect();
    if current.is_empty() {
        return true;
    }
    // A baseline that exists but yields no records is a broken file (e.g.
    // reformatted away from the one-object-per-line shape this shim
    // writes), not an opted-out gate — passing silently here would leave
    // the gate green forever.
    if baseline.is_empty() {
        eprintln!(
            "error: baseline at {path} exists but contains no parseable benchmark \
             records; regenerate it from a results file written by this shim, or \
             delete it to disable the gate"
        );
        return false;
    }
    let outcome = compare_to_baseline(&current, &baseline, threshold);
    println!("\nbaseline comparison ({path}, threshold +{threshold}%):");
    for line in &outcome.lines {
        println!("{line}");
    }
    if outcome.regressions.is_empty() {
        true
    } else {
        eprintln!(
            "error: {} benchmark(s) regressed past +{threshold}%: {}",
            outcome.regressions.len(),
            outcome.regressions.join(", ")
        );
        false
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep sample counts modest: the shim runs benches inline (also
        // under `cargo test --benches` smoke runs), not in a tuned rig.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        routine(&mut b);
        report("", id, &b.samples);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
/// After all groups run, the machine-readable results file is written
/// (see [`write_results`]) and the baseline regression gate runs (see
/// [`check_baseline`]); a regression past the threshold makes the process
/// exit non-zero, failing `cargo bench` in CI.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
            if !$crate::check_baseline() {
                ::std::process::exit(1);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("translate", 300).to_string(),
            "translate/300"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn median_handles_odd_and_even() {
        let odd: Vec<Duration> = [10, 20, 30]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        assert_eq!(compute_stats(&odd).unwrap().median_ns, 20.0);
        let even: Vec<Duration> = [10, 20, 30, 40]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        assert_eq!(compute_stats(&even).unwrap().median_ns, 25.0);
    }

    #[test]
    fn stddev_of_constant_samples_is_zero() {
        let s: Vec<Duration> = std::iter::repeat_n(Duration::from_nanos(100), 8).collect();
        let stats = compute_stats(&s).unwrap();
        assert_eq!(stats.mean_ns, 100.0);
        assert_eq!(stats.stddev_ns, 0.0);
        assert_eq!(stats.outliers_rejected, 0);
    }

    #[test]
    fn iqr_rejects_a_gross_outlier() {
        // Nine tight samples and one 100x spike: the spike must be
        // rejected, leaving median/mean near the cluster.
        let mut ns: Vec<u64> = vec![100, 101, 99, 100, 102, 98, 100, 101, 99];
        ns.push(10_000);
        let s: Vec<Duration> = ns.iter().map(|&n| Duration::from_nanos(n)).collect();
        let stats = compute_stats(&s).unwrap();
        assert_eq!(stats.outliers_rejected, 1);
        assert_eq!(stats.samples, 9);
        assert!(stats.median_ns <= 102.0, "median {}", stats.median_ns);
        assert!(stats.mean_ns <= 102.0, "mean {}", stats.mean_ns);
        // The raw minimum is unaffected by rejection.
        assert_eq!(stats.min_ns, 98.0);
    }

    #[test]
    fn empty_samples_have_no_stats() {
        assert!(compute_stats(&[]).is_none());
    }

    #[test]
    fn results_json_is_well_formed() {
        let mut c = Criterion::default();
        c.bench_function("json-shape-test", |b| b.iter(|| 1 + 1));
        let json = results_json();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\": \"json-shape-test\""), "{json}");
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"stddev_ns\""));
        assert!(json.contains("\"outliers_rejected\""));
    }

    #[test]
    fn parse_results_round_trips_writer_output() {
        let mut c = Criterion::default();
        c.bench_function("parse-round-trip", |b| b.iter(|| 3 + 3));
        let json = results_json();
        let parsed = parse_results(&json);
        let hit = parsed
            .iter()
            .find(|(n, _)| n == "parse-round-trip")
            .expect("recorded benchmark parses back");
        assert!(hit.1 >= 0.0);
    }

    #[test]
    fn gate_flags_only_regressions_past_threshold() {
        let current = vec![
            ("a".to_string(), 130.0), // +30% -> fail at 25
            ("b".to_string(), 120.0), // +20% -> ok
            ("c".to_string(), 80.0),  // improvement -> ok
            ("d".to_string(), 50.0),  // not in baseline -> (new)
        ];
        let baseline = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 100.0),
            ("c".to_string(), 100.0),
        ];
        let out = compare_to_baseline(&current, &baseline, 25.0);
        assert_eq!(out.regressions, vec!["a".to_string()]);
        assert_eq!(out.lines.len(), 4);
        assert!(out.lines[3].contains("(new)"), "{}", out.lines[3]);
        // A looser threshold passes everything.
        assert!(compare_to_baseline(&current, &baseline, 35.0)
            .regressions
            .is_empty());
    }

    // These tests go through the path-parameterized entry points
    // (`write_results_to` / `check_baseline_at`), never `std::env::set_var`:
    // the test binary is multi-threaded and concurrent setenv/getenv is
    // undefined behavior on glibc. The thin env-reading wrappers stay
    // untested here and are exercised by every real bench run.

    #[test]
    fn gate_fails_on_present_but_unparseable_baseline() {
        let dir = std::env::temp_dir().join(format!("criterion-badbase-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_baseline.json");
        // Pretty-printed (multi-line objects): valid JSON, but not the
        // one-object-per-line shape the shim parses — must fail loudly,
        // not silently disable the gate.
        std::fs::write(
            &path,
            "[\n  {\n    \"name\": \"pretty/case\",\n    \"median_ns\": 1.0\n  }\n]\n",
        )
        .unwrap();
        let mut c = Criterion::default();
        c.bench_function("bad-baseline-guard", |b| b.iter(|| 2 + 2));
        let ok = check_baseline_at(path.to_str().unwrap(), 25.0);
        assert!(!ok, "unreadable baseline must fail the gate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_results_merges_with_existing_file() {
        let dir = std::env::temp_dir().join(format!("criterion-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        // Simulate another bench target's results already on disk.
        std::fs::write(
            &path,
            "[\n  {\"name\": \"other-bench/case\", \"samples\": 3, \"outliers_rejected\": 0, \
             \"median_ns\": 42.0, \"mean_ns\": 42.0, \"stddev_ns\": 0.0, \
             \"min_ns\": 42.0, \"max_ns\": 42.0}\n]\n",
        )
        .unwrap();
        let mut c = Criterion::default();
        c.bench_function("merge-keeps-others", |b| b.iter(|| 5 + 5));
        write_results_to(path.to_str().unwrap());
        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("other-bench/case"), "{merged}");
        assert!(merged.contains("merge-keeps-others"), "{merged}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_results_to_explicit_path() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        let mut c = Criterion::default();
        c.bench_function("write-results-test", |b| b.iter(|| 2 + 2));
        write_results_to(path.to_str().unwrap());
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("write-results-test"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
