//! Offline stand-in for the subset of crates.io `criterion` 0.5 this
//! workspace uses. It genuinely measures wall-clock time (warm-up plus a
//! sampled mean/min) and prints one line per benchmark, but performs no
//! statistical analysis, HTML reporting, or baseline comparison.
//! See `crates/compat/README.md` for the replacement policy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one wall-clock sample per
    /// call after a single warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, also defeats DCE
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let full = if group.is_empty() {
        id.to_string()
    } else if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    if samples.is_empty() {
        println!("{full:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{full:<48} mean {mean:>12?}   min {min:>12?}   ({} samples)",
        samples.len()
    );
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep sample counts modest: the shim runs benches inline (also
        // under `cargo test --benches` smoke runs), not in a tuned rig.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        routine(&mut b);
        report("", id, &b.samples);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("translate", 300).to_string(),
            "translate/300"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
