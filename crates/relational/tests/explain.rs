//! EXPLAIN: the greedy planner's decisions are observable and pinned.

use etable_relational::database::Database;
use etable_relational::sql::execute;

fn db() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE small (id INT PRIMARY KEY, tag TEXT NOT NULL)",
        "CREATE TABLE big (id INT PRIMARY KEY, small_id INT REFERENCES small(id), v INT NOT NULL)",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    for i in 1..=5i64 {
        execute(
            &mut db,
            &format!("INSERT INTO small VALUES ({i}, 'tag{i}')"),
        )
        .unwrap();
    }
    for i in 1..=100i64 {
        execute(
            &mut db,
            &format!("INSERT INTO big VALUES ({i}, {}, {})", i % 5 + 1, i % 17),
        )
        .unwrap();
    }
    db
}

fn plan(db: &mut Database, sql: &str) -> String {
    let rel = execute(db, sql).unwrap();
    assert_eq!(rel.columns[0].name, "plan");
    rel.rows
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_shows_pushdown_and_join_order() {
    let mut d = db();
    let text = plan(
        &mut d,
        "EXPLAIN SELECT s.tag, b.v FROM big b, small s \
         WHERE b.small_id = s.id AND b.v >= 10",
    );
    // The filter on big is pushed below the join.
    assert!(
        text.contains("scan b (100 rows) pushdown [b.v >= 10]"),
        "{text}"
    );
    // The planner starts from the smaller side.
    assert!(text.contains("start from smallest relation s"), "{text}");
    assert!(text.contains("hash join"), "{text}");
    assert!(text.contains("output:"), "{text}");
}

#[test]
fn explain_shows_cross_products_when_disconnected() {
    let mut d = db();
    let text = plan(
        &mut d,
        "EXPLAIN SELECT s.tag, t.tag FROM small s, small t WHERE s.id = 1",
    );
    assert!(text.contains("cross product"), "{text}");
}

#[test]
fn explain_shows_residuals_and_grouping() {
    let mut d = db();
    let text = plan(
        &mut d,
        "EXPLAIN SELECT s.tag, COUNT(*) AS n FROM big b, small s \
         WHERE b.small_id = s.id AND b.v < s.id GROUP BY s.tag",
    );
    // b.v < s.id spans both tables but is not an equi-join -> residual.
    assert!(text.contains("residual filter [b.v < s.id]"), "{text}");
    assert!(text.contains("group by 1 key(s)"), "{text}");
}

#[test]
fn explain_does_not_change_results() {
    let mut d = db();
    let sql = "SELECT s.tag, b.v FROM big b, small s WHERE b.small_id = s.id AND b.v >= 10";
    let direct = execute(&mut d, sql).unwrap();
    let _ = plan(&mut d, &format!("EXPLAIN {sql}"));
    let again = execute(&mut d, sql).unwrap();
    assert_eq!(direct.rows, again.rows);
}

#[test]
fn explain_row_counts_are_accurate() {
    let mut d = db();
    let sql = "SELECT b.id, b.v FROM big b, small s WHERE b.small_id = s.id AND s.tag = 'tag1'";
    let text = plan(&mut d, &format!("EXPLAIN {sql}"));
    let result = execute(&mut d, sql).unwrap();
    let last = text.lines().last().unwrap();
    assert!(
        last.contains(&format!("output: {} rows", result.len())),
        "{last} vs {} rows",
        result.len()
    );
}
