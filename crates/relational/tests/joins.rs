//! Join edge cases for the columnar selection-vector join path: NULL keys,
//! duplicate-key multiplicity (bag semantics), text keys under adversarial
//! intern order, cross-type numeric keys, cross joins, empty sides, and
//! self joins. Every case is checked three ways where it applies: against
//! the naive cross-product oracle (independent row-at-a-time joins), as a
//! bag, and against hand-computed cardinalities.
//!
//! Pool-size invisibility for joins (identical results at pool sizes
//! 1/2/8) lives in `parallel_scan.rs`, which sweeps sizes in-process via
//! `exec::pool::with_pool` — the environment is never mutated.

use etable_relational::database::Database;
use etable_relational::sql::naive::execute_query_naive;
use etable_relational::sql::{execute, executor::execute_query, parse_statement, Statement};
use etable_relational::value::Value;

fn run_both(db: &Database, sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let q = match parse_statement(sql).unwrap() {
        Statement::Select(q) => q,
        other => panic!("expected SELECT, got {other:?}"),
    };
    let mut planned = execute_query(db, &q).unwrap().rows;
    let mut naive = execute_query_naive(db, &q).unwrap().rows;
    planned.sort();
    naive.sort();
    (planned, naive)
}

fn setup(stmts: &[&str]) -> Database {
    let mut db = Database::new();
    for stmt in stmts {
        execute(&mut db, stmt).unwrap();
    }
    db
}

#[test]
fn null_join_keys_never_match() {
    // NULLs on both sides, int and text keys: SQL equality over NULL is
    // UNKNOWN, so no NULL row may pair — not even NULL with NULL.
    let db = setup(&[
        "CREATE TABLE l (id INT PRIMARY KEY, k INT, tag TEXT)",
        "CREATE TABLE r (id INT PRIMARY KEY, k INT, tag TEXT)",
        "INSERT INTO l VALUES (1, NULL, NULL), (2, 7, 'x'), (3, NULL, 'y')",
        "INSERT INTO r VALUES (1, NULL, NULL), (2, 7, NULL), (3, 8, 'y')",
    ]);
    let (planned, naive) = run_both(&db, "SELECT l.id, r.id FROM l, r WHERE l.k = r.k");
    assert_eq!(planned, naive);
    assert_eq!(planned, vec![vec![2.into(), 2.into()]]);
    let (planned, naive) = run_both(&db, "SELECT l.id, r.id FROM l, r WHERE l.tag = r.tag");
    assert_eq!(planned, naive);
    assert_eq!(planned, vec![vec![3.into(), 3.into()]]);
}

#[test]
fn duplicate_key_multiplicity_is_bag_correct() {
    // k appears 3x on the left and 2x on the right -> exactly 6 pairs;
    // every pairing must be emitted, none deduplicated.
    let db = setup(&[
        "CREATE TABLE l (id INT PRIMARY KEY, k INT NOT NULL)",
        "CREATE TABLE r (id INT PRIMARY KEY, k INT NOT NULL)",
        "INSERT INTO l VALUES (1, 5), (2, 5), (3, 5), (4, 6)",
        "INSERT INTO r VALUES (1, 5), (2, 5), (3, 7)",
    ]);
    let (planned, naive) = run_both(&db, "SELECT l.id, r.id FROM l, r WHERE l.k = r.k");
    assert_eq!(planned, naive);
    assert_eq!(planned.len(), 6);
    // All 3x2 combinations are present.
    for li in 1..=3i64 {
        for ri in 1..=2i64 {
            assert!(planned.contains(&vec![li.into(), ri.into()]), "{li}x{ri}");
        }
    }
}

#[test]
fn text_keys_under_adversarial_intern_order() {
    // Intern the join vocabulary in reverse-lexicographic order before the
    // tables exist, so symbol ids anti-correlate with string order; the
    // symbol-word join kernel must still match by string identity only.
    for w in ["join-zz", "join-mm", "join-aa", "join-"] {
        let _ = Value::text(w);
    }
    let db = setup(&[
        "CREATE TABLE l (id INT PRIMARY KEY, tag TEXT)",
        "CREATE TABLE r (id INT PRIMARY KEY, tag TEXT)",
        "INSERT INTO l VALUES (1, 'join-aa'), (2, 'join-zz'), (3, 'join-'), (4, 'join-mm')",
        "INSERT INTO r VALUES (1, 'join-mm'), (2, 'join-aa'), (3, 'join-aa'), (4, 'join-xx')",
    ]);
    let (planned, naive) = run_both(
        &db,
        "SELECT l.id, r.id, l.tag FROM l, r WHERE l.tag = r.tag ORDER BY l.id, r.id",
    );
    assert_eq!(planned, naive);
    // aa matches twice, mm once; zz / empty-ish / xx never.
    assert_eq!(planned.len(), 3);
    assert_eq!(
        planned,
        vec![
            vec![1.into(), 2.into(), "join-aa".into()],
            vec![1.into(), 3.into(), "join-aa".into()],
            vec![4.into(), 1.into(), "join-mm".into()],
        ]
    );
}

#[test]
fn cross_type_numeric_keys_widen() {
    // INT joined against FLOAT: 2 must match 2.0 (the Value-keyed fallback
    // kernel), 2.5 must match nothing.
    let db = setup(&[
        "CREATE TABLE l (id INT PRIMARY KEY, k INT NOT NULL)",
        "CREATE TABLE r (id INT PRIMARY KEY, k FLOAT NOT NULL)",
        "INSERT INTO l VALUES (1, 2), (2, 3)",
        "INSERT INTO r VALUES (1, 2.0), (2, 2.5), (3, 3.0)",
    ]);
    let (planned, naive) = run_both(&db, "SELECT l.id, r.id FROM l, r WHERE l.k = r.k");
    assert_eq!(planned, naive);
    assert_eq!(
        planned,
        vec![vec![1.into(), 1.into()], vec![2.into(), 3.into()]]
    );
}

#[test]
fn cross_join_is_full_product() {
    let db = setup(&[
        "CREATE TABLE a (id INT PRIMARY KEY)",
        "CREATE TABLE b (id INT PRIMARY KEY)",
        "INSERT INTO a VALUES (1), (2), (3)",
        "INSERT INTO b VALUES (10), (20)",
    ]);
    let (planned, naive) = run_both(&db, "SELECT a.id, b.id FROM a, b");
    assert_eq!(planned, naive);
    assert_eq!(planned.len(), 6);
    // A filter after the cross still sees every pairing.
    let (planned, naive) = run_both(&db, "SELECT a.id, b.id FROM a, b WHERE a.id < b.id");
    assert_eq!(planned, naive);
    assert_eq!(planned.len(), 6);
}

#[test]
fn empty_sides_produce_empty_joins() {
    let db = setup(&[
        "CREATE TABLE l (id INT PRIMARY KEY, k INT)",
        "CREATE TABLE r (id INT PRIMARY KEY, k INT)",
        "INSERT INTO l VALUES (1, 5)",
    ]);
    // Empty build side and empty probe side.
    let (planned, naive) = run_both(&db, "SELECT l.id FROM l, r WHERE l.k = r.k");
    assert_eq!(planned, naive);
    assert!(planned.is_empty());
    let (planned, naive) = run_both(&db, "SELECT l.id FROM r, l WHERE r.k = l.k");
    assert_eq!(planned, naive);
    assert!(planned.is_empty());
}

#[test]
fn self_join_with_aliases() {
    let db = setup(&[
        "CREATE TABLE p (id INT PRIMARY KEY, year INT NOT NULL)",
        "INSERT INTO p VALUES (1, 2000), (2, 2000), (3, 2001)",
    ]);
    let (planned, naive) = run_both(
        &db,
        "SELECT a.id, b.id FROM p a, p b WHERE a.year = b.year AND a.id < b.id",
    );
    assert_eq!(planned, naive);
    assert_eq!(planned, vec![vec![1.into(), 2.into()]]);
}

#[test]
fn three_table_chain_with_pushdown_and_group() {
    // The paper's Table-2 shape: entity - link - entity with a pushed-down
    // filter, grouped tail, and duplicate multiplicities through the link.
    let db = setup(&[
        "CREATE TABLE papers (id INT PRIMARY KEY, year INT NOT NULL)",
        "CREATE TABLE pa (paper_id INT, author_id INT, PRIMARY KEY (paper_id, author_id))",
        "CREATE TABLE authors (id INT PRIMARY KEY, name TEXT NOT NULL)",
        "INSERT INTO papers VALUES (1, 2000), (2, 2001), (3, 2001)",
        "INSERT INTO pa VALUES (1, 10), (1, 11), (2, 10), (3, 10), (3, 11)",
        "INSERT INTO authors VALUES (10, 'n'), (11, 'm')",
    ]);
    let (planned, naive) = run_both(
        &db,
        "SELECT a.name, COUNT(*) AS n FROM papers p, pa, authors a \
         WHERE p.id = pa.paper_id AND pa.author_id = a.id AND p.year >= 2001 \
         GROUP BY a.name ORDER BY n DESC, a.name",
    );
    assert_eq!(planned, naive);
    assert_eq!(
        planned,
        vec![vec!["m".into(), 1.into()], vec!["n".into(), 2.into()]]
    );
}

#[test]
fn wildcard_output_columns_follow_from_order() {
    // The analyzer expands `SELECT *` in syntactic FROM order, so the
    // output shape no longer depends on which side the greedy planner
    // starts from (here it starts from small, despite FROM order) and
    // both engines agree on it. Before the typed-plan pass the executor
    // leaked its greedy join order into the wildcard expansion while the
    // oracle expanded syntactically — a latent differential divergence.
    let db = setup(&[
        "CREATE TABLE small (id INT PRIMARY KEY, s TEXT NOT NULL)",
        "CREATE TABLE big (id INT PRIMARY KEY, small_id INT NOT NULL, v INT NOT NULL)",
        "INSERT INTO small VALUES (1, 'one')",
        "INSERT INTO big VALUES (1, 1, 10), (2, 1, 20), (3, 1, 30)",
    ]);
    let q = match parse_statement("SELECT * FROM big b, small s WHERE b.small_id = s.id").unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let rel = execute_query(&db, &q).unwrap();
    let names: Vec<String> = rel
        .columns
        .iter()
        .map(|c| c.qualified_name().to_string())
        .collect();
    assert_eq!(names, ["b.id", "b.small_id", "b.v", "s.id", "s.s"]);
    assert_eq!(rel.len(), 3);
    let naive = execute_query_naive(&db, &q).unwrap();
    let naive_names: Vec<String> = naive
        .columns
        .iter()
        .map(|c| c.qualified_name().to_string())
        .collect();
    assert_eq!(names, naive_names);
    assert_eq!(rel.columns.len(), 5);
}
