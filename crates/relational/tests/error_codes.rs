//! Pins the stable numeric [`ErrorCode`] assignments. These numbers are
//! part of the wire protocol: a client built against an older server must
//! keep decoding them correctly, so any renumbering has to fail here
//! loudly instead of shipping silently.

use etable_relational::{Error, ErrorCode};

/// The frozen assignment table. Adding a new class appends a row here;
/// changing an existing number is a protocol break and must not pass.
const PINNED: [(ErrorCode, u16); 9] = [
    (ErrorCode::Schema, 100),
    (ErrorCode::Constraint, 101),
    (ErrorCode::UnknownTable, 102),
    (ErrorCode::UnknownColumn, 103),
    (ErrorCode::Eval, 200),
    (ErrorCode::Parse, 300),
    (ErrorCode::Analyze, 301),
    (ErrorCode::Storage, 400),
    (ErrorCode::Protocol, 500),
];

#[test]
fn numeric_assignments_are_pinned() {
    assert_eq!(
        PINNED.len(),
        ErrorCode::ALL.len(),
        "a code exists that this pinning table does not cover"
    );
    for (code, n) in PINNED {
        assert_eq!(code.as_u16(), n, "{code:?} was renumbered");
    }
}

#[test]
fn u16_round_trip_is_exact() {
    for code in ErrorCode::ALL {
        assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
    }
    // Unassigned numbers decode to None (forward-compatibility hole, not
    // a silent remap onto a neighboring class).
    for n in [0u16, 1, 99, 104, 201, 299, 302, 401, 499, 501, u16::MAX] {
        assert_eq!(ErrorCode::from_u16(n), None, "{n} is unexpectedly assigned");
    }
}

#[test]
fn all_is_ascending_and_duplicate_free() {
    let nums: Vec<u16> = ErrorCode::ALL.iter().map(|c| c.as_u16()).collect();
    let mut sorted = nums.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(nums, sorted, "ErrorCode::ALL must be ascending and unique");
}

#[test]
fn error_code_error_round_trip_preserves_class_and_message() {
    let samples = [
        Error::Schema("s".into()),
        Error::Constraint("c".into()),
        Error::UnknownTable("t".into()),
        Error::UnknownColumn("col".into()),
        Error::Eval("e".into()),
        Error::Parse("p".into()),
        Error::Analyze("a".into()),
        Error::Storage("st".into()),
        Error::Protocol("w".into()),
    ];
    assert_eq!(samples.len(), ErrorCode::ALL.len());
    for e in samples {
        let rebuilt = Error::from_code(e.code(), message_of(&e));
        assert_eq!(rebuilt, e, "wire round trip changed the error");
    }
}

/// Extracts the payload the way a wire encoder would (the full Display
/// string is prefixed with the class name, which `from_code` re-adds).
fn message_of(e: &Error) -> String {
    match e {
        Error::Schema(m)
        | Error::Constraint(m)
        | Error::UnknownTable(m)
        | Error::UnknownColumn(m)
        | Error::Eval(m)
        | Error::Parse(m)
        | Error::Analyze(m)
        | Error::Storage(m)
        | Error::Protocol(m) => m.clone(),
    }
}
