//! DELETE / UPDATE behaviour: predicate evaluation, index maintenance,
//! RESTRICT semantics and rollback on integrity violations.

use etable_relational::database::Database;
use etable_relational::sql::execute;
use etable_relational::value::Value;

fn db() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE parent (id INT PRIMARY KEY, name TEXT NOT NULL)",
        "CREATE TABLE child (id INT PRIMARY KEY, parent_id INT REFERENCES parent(id), v INT)",
        "INSERT INTO parent VALUES (1, 'a'), (2, 'b'), (3, 'c')",
        "INSERT INTO child VALUES (10, 1, 5), (11, 1, 6), (12, 2, NULL)",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    db
}

fn count(db: &mut Database, sql: &str) -> i64 {
    execute(db, sql).unwrap().rows[0][0].as_int().unwrap()
}

#[test]
fn delete_with_predicate() {
    let mut d = db();
    execute(&mut d, "DELETE FROM child WHERE v >= 6").unwrap();
    assert_eq!(count(&mut d, "SELECT COUNT(*) FROM child"), 2);
    // NULL v row survives (predicate UNKNOWN).
    let r = execute(&mut d, "SELECT id FROM child ORDER BY id").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(10));
    assert_eq!(r.rows[1][0], Value::Int(12));
}

#[test]
fn delete_without_where_empties_table() {
    let mut d = db();
    execute(&mut d, "DELETE FROM child").unwrap();
    assert_eq!(count(&mut d, "SELECT COUNT(*) FROM child"), 0);
}

#[test]
fn delete_restricts_on_referenced_rows() {
    let mut d = db();
    let err = execute(&mut d, "DELETE FROM parent WHERE id = 1");
    assert!(err.is_err(), "parent 1 is referenced by two children");
    // Unreferenced parent can go.
    execute(&mut d, "DELETE FROM parent WHERE id = 3").unwrap();
    assert_eq!(count(&mut d, "SELECT COUNT(*) FROM parent"), 2);
}

#[test]
fn delete_cascade_order_works() {
    let mut d = db();
    execute(&mut d, "DELETE FROM child WHERE parent_id = 1").unwrap();
    execute(&mut d, "DELETE FROM parent WHERE id = 1").unwrap();
    assert_eq!(count(&mut d, "SELECT COUNT(*) FROM parent"), 2);
    d.check_integrity().unwrap();
}

#[test]
fn pk_index_rebuilt_after_delete() {
    let mut d = db();
    execute(&mut d, "DELETE FROM child WHERE id = 10").unwrap();
    let child = d.table("child").unwrap();
    assert!(child.get_by_pk(&[Value::Int(10)]).is_none());
    assert!(child.get_by_pk(&[Value::Int(11)]).is_some());
    // Insert with the deleted key works again.
    execute(&mut d, "INSERT INTO child VALUES (10, 2, 9)").unwrap();
}

#[test]
fn update_values_and_where() {
    let mut d = db();
    execute(&mut d, "UPDATE child SET v = 100 WHERE parent_id = 1").unwrap();
    let r = execute(&mut d, "SELECT v FROM child WHERE id = 10").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(100));
    let r = execute(&mut d, "SELECT v FROM child WHERE id = 12").unwrap();
    assert_eq!(r.rows[0][0], Value::Null);
}

#[test]
fn update_to_null_respects_nullability() {
    let mut d = db();
    assert!(execute(&mut d, "UPDATE parent SET name = NULL WHERE id = 1").is_err());
    execute(&mut d, "UPDATE child SET v = NULL WHERE id = 10").unwrap();
}

#[test]
fn update_fk_is_validated_and_rolled_back() {
    let mut d = db();
    let err = execute(&mut d, "UPDATE child SET parent_id = 99 WHERE id = 10");
    assert!(err.is_err());
    // Rolled back: still points at parent 1.
    let r = execute(&mut d, "SELECT parent_id FROM child WHERE id = 10").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    d.check_integrity().unwrap();
}

#[test]
fn update_pk_collision_rolls_back() {
    let mut d = db();
    let err = execute(&mut d, "UPDATE child SET id = 11 WHERE id = 10");
    assert!(err.is_err());
    assert_eq!(count(&mut d, "SELECT COUNT(*) FROM child"), 3);
    d.check_integrity().unwrap();
}

#[test]
fn update_referenced_pk_is_rejected_when_children_exist() {
    let mut d = db();
    let err = execute(&mut d, "UPDATE parent SET id = 9 WHERE id = 1");
    assert!(err.is_err(), "children still reference parent 1");
    // But renaming an unreferenced parent key is fine.
    execute(&mut d, "UPDATE parent SET id = 9 WHERE id = 3").unwrap();
    d.check_integrity().unwrap();
}

#[test]
fn update_type_mismatch_rejected() {
    let mut d = db();
    assert!(execute(&mut d, "UPDATE child SET v = 'text' WHERE id = 10").is_err());
}

#[test]
fn mutations_then_queries_stay_consistent() {
    let mut d = db();
    execute(&mut d, "UPDATE child SET v = 1 WHERE v IS NULL").unwrap();
    execute(&mut d, "DELETE FROM child WHERE v = 1").unwrap();
    let r = execute(
        &mut d,
        "SELECT p.name, COUNT(*) AS n FROM parent p, child c \
         WHERE c.parent_id = p.id GROUP BY p.name ORDER BY p.name",
    )
    .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0][0], "a".into());
    assert_eq!(r.rows[0][1], Value::Int(2));
}
