//! Aggregate edge cases pinned as unit tests: NULL-only groups, AVG
//! rounding over ints, SUM overflow behavior, grouped queries on empty
//! input, HAVING that eliminates every group, and MIN/MAX over interned
//! text under adversarial intern order — each exercised through both the
//! vectorized single-table group scan (the executor fast path) and the
//! materialized-relation grouping used after joins.

use etable_relational::algebra::{AggFunc, AggSpec, RelColumn, Relation};
use etable_relational::database::Database;
use etable_relational::sql::execute;
use etable_relational::value::{DataType, Value};

fn db() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE m (id INT PRIMARY KEY, k INT NOT NULL, v INT, txt TEXT)",
        // k = 1: values present; k = 2: v and txt entirely NULL.
        "INSERT INTO m VALUES (1, 1, 1, 'pear'), (2, 1, 2, 'apple'), (3, 2, NULL, NULL), \
         (4, 2, NULL, NULL)",
        "CREATE TABLE empty_t (id INT PRIMARY KEY, k INT NOT NULL, v INT)",
        // A one-row side table so a join forces the materialized path.
        "CREATE TABLE one (id INT PRIMARY KEY)",
        "INSERT INTO one VALUES (1)",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    db
}

/// Runs `sql` through the vectorized fast path (single-table form) and
/// returns the rows.
fn run(db: &mut Database, sql: &str) -> Vec<Vec<Value>> {
    execute(db, sql).unwrap().rows
}

#[test]
fn null_only_group_yields_nulls_and_zero_counts() {
    let mut d = db();
    for sql in [
        // Vectorized single-table group scan.
        "SELECT k, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS a, \
         MIN(v) AS mn, MAX(txt) AS mx FROM m GROUP BY k ORDER BY k",
        // Same query forced through the materialized join path.
        "SELECT m.k, COUNT(*) AS n, COUNT(m.v) AS nv, SUM(m.v) AS s, AVG(m.v) AS a, \
         MIN(m.v) AS mn, MAX(m.txt) AS mx FROM m, one WHERE one.id = 1 \
         GROUP BY m.k ORDER BY m.k",
    ] {
        let rows = run(&mut d, sql);
        assert_eq!(rows.len(), 2, "{sql}");
        // Group k = 2 holds only NULLs: COUNT(*) still counts rows,
        // COUNT(v) is 0, every other aggregate is NULL.
        let g2 = &rows[1];
        assert_eq!(g2[1], Value::Int(2), "{sql}");
        assert_eq!(g2[2], Value::Int(0), "{sql}");
        assert!(g2[3].is_null() && g2[4].is_null() && g2[5].is_null() && g2[6].is_null());
    }
}

#[test]
fn avg_over_ints_is_exact_float_division() {
    let mut d = db();
    let rows = run(&mut d, "SELECT AVG(v) AS a FROM m WHERE k = 1");
    // AVG(1, 2) = 1.5, and an integral mean still comes back as FLOAT.
    assert!(matches!(rows[0][0], Value::Float(f) if f == 1.5));
    execute(&mut d, "INSERT INTO m VALUES (9, 1, 3, NULL)").unwrap();
    let rows = run(&mut d, "SELECT AVG(v) AS a FROM m WHERE k = 1");
    assert!(
        matches!(rows[0][0], Value::Float(f) if f == 2.0),
        "AVG must stay FLOAT even when integral, got {:?}",
        rows[0][0]
    );
}

/// SUM accumulates in f64 and casts back for int-only inputs; Rust's
/// float→int cast saturates, so a sum past `i64::MAX` pins to `i64::MAX`
/// (and symmetrically to `i64::MIN`) instead of wrapping or panicking.
/// This documents the current contract — both engines share the
/// accumulator, so the differential fuzzer cannot see it.
#[test]
fn sum_overflow_saturates_at_i64_bounds() {
    let rel = Relation::new(
        vec![RelColumn::bare("v", DataType::Int)],
        vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX)]],
    );
    let out = rel
        .group_by(&[], &[AggSpec::new(AggFunc::Sum, Some(0), "s")])
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(i64::MAX));
    let rel = Relation::new(
        vec![RelColumn::bare("v", DataType::Int)],
        vec![vec![Value::Int(i64::MIN)], vec![Value::Int(i64::MIN)]],
    );
    let out = rel
        .group_by(&[], &[AggSpec::new(AggFunc::Sum, Some(0), "s")])
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(i64::MIN));
}

#[test]
fn grouped_query_on_empty_input() {
    let mut d = db();
    // With GROUP BY: no input rows, no groups, no output rows.
    let rows = run(
        &mut d,
        "SELECT k, COUNT(*) AS n FROM empty_t GROUP BY k ORDER BY k",
    );
    assert!(rows.is_empty());
    // Global aggregates still yield exactly one row (SQL semantics):
    // COUNT 0, every other aggregate NULL.
    let rows = run(
        &mut d,
        "SELECT COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS a, MIN(v) AS mn \
         FROM empty_t",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(0));
    assert_eq!(rows[0][1], Value::Int(0));
    assert!(rows[0][2].is_null() && rows[0][3].is_null() && rows[0][4].is_null());
    // A WHERE clause that empties a non-empty table behaves identically.
    let rows = run(&mut d, "SELECT COUNT(*) AS n FROM m WHERE k > 99");
    assert_eq!(rows[0][0], Value::Int(0));
}

#[test]
fn having_can_filter_every_group() {
    let mut d = db();
    let rows = run(
        &mut d,
        "SELECT k, COUNT(*) AS n FROM m GROUP BY k HAVING COUNT(*) > 100",
    );
    assert!(rows.is_empty());
    // HAVING over a NULL-producing aggregate: NULL comparisons are
    // UNKNOWN, which filters the group out.
    let rows = run(
        &mut d,
        "SELECT k FROM m GROUP BY k HAVING SUM(v) > -9999 ORDER BY k",
    );
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn min_max_on_text_follow_strings_not_intern_order() {
    // Intern the candidates in reverse lexicographic order first, so
    // symbol-id order inverts string order: a rank/id confusion would
    // flip every assertion below.
    for w in ["zzz-agg", "omega-agg", "delta-agg", "alpha-agg"] {
        let _ = Value::text(w);
    }
    let mut d = Database::new();
    for stmt in [
        "CREATE TABLE w (id INT PRIMARY KEY, k INT NOT NULL, txt TEXT)",
        "INSERT INTO w VALUES (1, 1, 'omega-agg'), (2, 1, 'alpha-agg'), (3, 1, 'zzz-agg'), \
         (4, 2, 'delta-agg'), (5, 2, NULL)",
        "CREATE TABLE one_w (id INT PRIMARY KEY)",
        "INSERT INTO one_w VALUES (1)",
    ] {
        execute(&mut d, stmt).unwrap();
    }
    for sql in [
        // Vectorized group scan.
        "SELECT k, MIN(txt) AS lo, MAX(txt) AS hi FROM w GROUP BY k ORDER BY k",
        // Materialized path via a join.
        "SELECT w.k, MIN(w.txt) AS lo, MAX(w.txt) AS hi FROM w, one_w \
         WHERE one_w.id = 1 GROUP BY w.k ORDER BY w.k",
    ] {
        let rows = execute(&mut d, sql).unwrap().rows;
        assert_eq!(rows[0][1], "alpha-agg".into(), "{sql}");
        assert_eq!(rows[0][2], "zzz-agg".into(), "{sql}");
        // Single non-NULL value: MIN == MAX, NULL ignored.
        assert_eq!(rows[1][1], "delta-agg".into(), "{sql}");
        assert_eq!(rows[1][2], "delta-agg".into(), "{sql}");
    }
}
