//! The static analyzer's contract, from the outside: every semantic
//! error is reported before any state is read or written, each
//! diagnostic names the offending identifier, both engines reject the
//! same statements, and EXPLAIN surfaces the typed plan.
//!
//! The "zero rows touched" tests are the regression pin for the DML
//! path: an UPDATE/INSERT/DELETE with any semantic error — even one
//! discovered only at the last row of a multi-row INSERT — must leave
//! the table byte-identical.

use etable_relational::database::Database;
use etable_relational::sql::naive::execute_query_naive;
use etable_relational::sql::{execute, executor, parse_statement, Statement};

fn setup() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE papers (id INT PRIMARY KEY, year INT NOT NULL, title TEXT NOT NULL, score FLOAT)",
        "CREATE TABLE authors (id INT PRIMARY KEY, name TEXT NOT NULL)",
        "CREATE TABLE pa (paper_id INT NOT NULL, author_id INT NOT NULL, PRIMARY KEY (paper_id, author_id))",
        "INSERT INTO papers VALUES (1, 2014, 'a', 0.5), (2, 2015, 'b', NULL)",
        "INSERT INTO authors VALUES (10, 'n'), (11, 'm')",
        "INSERT INTO pa VALUES (1, 10), (2, 10), (2, 11)",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    db
}

/// Runs a SELECT through both engines and asserts they produce the same
/// error, returning its display string.
fn reject_both(db: &Database, sql: &str) -> String {
    let q = match parse_statement(sql).unwrap() {
        Statement::Select(q) => q,
        other => panic!("expected SELECT, got {other:?}"),
    };
    let planned = executor::execute_query(db, &q).expect_err(sql);
    let naive = execute_query_naive(db, &q).expect_err(sql);
    assert_eq!(planned, naive, "engines disagree on rejection of {sql}");
    planned.to_string()
}

#[test]
fn unknown_table_names_the_table() {
    let db = setup();
    let msg = reject_both(&db, "SELECT * FROM nosuch");
    assert!(msg.contains("`nosuch`"), "{msg}");
}

#[test]
fn unknown_column_names_the_column() {
    let db = setup();
    let msg = reject_both(&db, "SELECT flavor FROM papers");
    assert!(msg.contains("`flavor`"), "{msg}");
    let msg = reject_both(&db, "SELECT papers.id FROM papers WHERE papers.flavor = 1");
    assert!(msg.contains("flavor`"), "{msg}");
}

#[test]
fn ambiguous_unqualified_column_across_joins() {
    let db = setup();
    // `id` exists in both papers and authors.
    let msg = reject_both(&db, "SELECT id FROM papers, authors");
    assert!(msg.contains("ambiguous"), "{msg}");
    assert!(msg.contains("`id`"), "{msg}");
    // Qualifying resolves it.
    let q = match parse_statement("SELECT papers.id FROM papers, authors").unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    assert!(executor::execute_query(&db, &q).is_ok());
}

#[test]
fn non_grouped_column_in_grouped_select() {
    let db = setup();
    let msg = reject_both(&db, "SELECT title, COUNT(*) AS n FROM papers GROUP BY year");
    assert!(msg.contains("`title`"), "{msg}");
    assert!(msg.contains("GROUP BY"), "{msg}");
}

#[test]
fn having_without_group_by() {
    let db = setup();
    let msg = reject_both(&db, "SELECT id FROM papers HAVING id > 1");
    assert!(msg.contains("HAVING"), "{msg}");
}

#[test]
fn aggregate_nested_in_aggregate() {
    let db = setup();
    let msg = reject_both(
        &db,
        "SELECT COUNT(MAX(year)) AS n FROM papers GROUP BY year",
    );
    assert!(msg.contains("aggregate nested in aggregate"), "{msg}");
    assert!(msg.contains("MAX"), "{msg}");
}

#[test]
fn aggregate_in_where_is_rejected() {
    let db = setup();
    let msg = reject_both(&db, "SELECT id FROM papers WHERE COUNT(*) > 1");
    assert!(msg.contains("row context"), "{msg}");
}

#[test]
fn type_mismatched_comparison_names_both_sides() {
    let db = setup();
    let msg = reject_both(&db, "SELECT id FROM papers WHERE title > 5");
    assert!(msg.contains("type mismatch"), "{msg}");
    assert!(msg.contains("`title`"), "{msg}");
    let msg = reject_both(&db, "SELECT id FROM papers WHERE year LIKE '%x%'");
    assert!(msg.contains("LIKE"), "{msg}");
    assert!(msg.contains("`year`"), "{msg}");
    // Int/Float widening is fine — the lattice admits it.
    let q = match parse_statement("SELECT id FROM papers WHERE score > 0").unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    assert!(executor::execute_query(&db, &q).is_ok());
}

#[test]
fn sum_over_text_is_rejected_statically() {
    let db = setup();
    let msg = reject_both(&db, "SELECT SUM(title) AS s FROM papers");
    assert!(msg.contains("numeric"), "{msg}");
    assert!(msg.contains("SUM"), "{msg}");
}

// ---------------------------------------------------------------------
// Zero rows touched: semantic DML errors must not mutate state.
// ---------------------------------------------------------------------

fn rows_of(db: &Database, table: &str) -> Vec<Vec<etable_relational::value::Value>> {
    let mut d = db.clone();
    execute(&mut d, &format!("SELECT * FROM {table}"))
        .unwrap()
        .rows
}

#[test]
fn invalid_update_touches_zero_rows() {
    let db = setup();
    let before = rows_of(&db, "papers");

    // Unknown SET column.
    let mut d = db.clone();
    assert!(execute(&mut d, "UPDATE papers SET flavor = 1 WHERE id = 1").is_err());
    assert_eq!(rows_of(&d, "papers"), before);

    // Type-mismatched SET value: the first row would have matched and
    // been rewritten before the failure was discovered, pre-analyzer.
    let mut d = db.clone();
    assert!(execute(&mut d, "UPDATE papers SET year = 'nineteen' WHERE id >= 1").is_err());
    assert_eq!(rows_of(&d, "papers"), before);

    // NULL into NOT NULL.
    let mut d = db.clone();
    assert!(execute(&mut d, "UPDATE papers SET title = NULL WHERE id = 1").is_err());
    assert_eq!(rows_of(&d, "papers"), before);

    // Bad WHERE (unknown column).
    let mut d = db.clone();
    assert!(execute(&mut d, "UPDATE papers SET year = 2020 WHERE flavor = 1").is_err());
    assert_eq!(rows_of(&d, "papers"), before);

    // Non-boolean WHERE.
    let mut d = db.clone();
    assert!(execute(&mut d, "UPDATE papers SET year = 2020 WHERE year").is_err());
    assert_eq!(rows_of(&d, "papers"), before);
}

#[test]
fn invalid_delete_touches_zero_rows() {
    let db = setup();
    let before = rows_of(&db, "papers");
    let mut d = db.clone();
    assert!(execute(&mut d, "DELETE FROM papers WHERE flavor = 1").is_err());
    assert_eq!(rows_of(&d, "papers"), before);
}

#[test]
fn invalid_insert_touches_zero_rows() {
    let db = setup();
    let before = rows_of(&db, "papers");

    // Arity mismatch.
    let mut d = db.clone();
    assert!(execute(&mut d, "INSERT INTO papers VALUES (3, 2016)").is_err());
    assert_eq!(rows_of(&d, "papers"), before);

    // First row valid, second row type-mismatched: without whole-batch
    // analysis the first row landed before the second failed.
    let mut d = db.clone();
    assert!(execute(
        &mut d,
        "INSERT INTO papers VALUES (3, 2016, 'c', 0.1), (4, 'bad', 'd', 0.2)"
    )
    .is_err());
    assert_eq!(rows_of(&d, "papers"), before);

    // NULL into NOT NULL in the last row.
    let mut d = db.clone();
    assert!(execute(
        &mut d,
        "INSERT INTO papers VALUES (3, 2016, 'c', 0.1), (4, 2017, NULL, 0.2)"
    )
    .is_err());
    assert_eq!(rows_of(&d, "papers"), before);
}

// ---------------------------------------------------------------------
// EXPLAIN surfaces the typed plan.
// ---------------------------------------------------------------------

#[test]
fn explain_renders_typed_plan_sections() {
    let db = setup();
    let q = match parse_statement(
        "SELECT a.name, COUNT(*) AS n FROM papers p, pa, authors a \
         WHERE p.id = pa.paper_id AND pa.author_id = a.id AND p.year >= 2015 \
         GROUP BY a.name ORDER BY n DESC, a.name LIMIT 5",
    )
    .unwrap()
    {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let lines = executor::explain_query(&db, &q).unwrap();
    let text = lines.join("\n");
    // Typed-plan header with scans, pushdowns, typed join edges, group
    // keys, aggregates, sort keys and the typed output schema.
    assert!(text.contains("typed plan:"), "{text}");
    assert!(text.contains("from papers AS p"), "{text}");
    assert!(text.contains("pushdown"), "{text}");
    assert!(
        text.contains("join edge p.id = pa.paper_id [INT]"),
        "{text}"
    );
    assert!(text.contains("group keys [a.name]"), "{text}");
    assert!(text.contains("aggregates [COUNT(*) INT]"), "{text}");
    // The grouped sort key renders under the aggregate's canonical key.
    assert!(text.contains("sort keys [COUNT(*) DESC, a.name]"), "{text}");
    assert!(
        text.contains("output columns [a.name TEXT, n INT]"),
        "{text}"
    );
    // The execution trace follows, ending with the output shape.
    assert!(text.contains("execution:"), "{text}");
    let last = lines.last().unwrap();
    assert!(last.starts_with("output: "), "{last}");
}

#[test]
fn explain_marks_nullable_columns() {
    let db = setup();
    let q = match parse_statement("SELECT score FROM papers").unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let lines = executor::explain_query(&db, &q).unwrap();
    let text = lines.join("\n");
    // score is a nullable FLOAT: rendered with a `?` marker.
    assert!(text.contains("score FLOAT?"), "{text}");
}
