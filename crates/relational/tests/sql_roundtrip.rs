//! Lexer/parser round-trip coverage for the Table 2 task queries.
//!
//! The user-study tasks (both matched sets) are the queries every bench
//! binary and the study runner push through `relational::sql`, so this
//! guards the executor path end to end: each query must (1) tokenize,
//! render back from its tokens, and re-tokenize to the same stream;
//! (2) parse, and re-parse its token-rendered form to the identical AST;
//! (3) execute on a hand-built Figure 3 schema with the planned and naive
//! evaluators agreeing.
//!
//! The queries come straight from `etable_datagen::tasks::task_set` — a
//! dev-dependency cycle (datagen's lib depends on this crate), which cargo
//! permits and which keeps a single canonical definition of the task SQL.

use etable_datagen::tasks::{task_set, TaskSet};
use etable_relational::database::Database;
use etable_relational::sql::lexer::{render_tokens, tokenize};
use etable_relational::sql::naive::execute_query_naive;
use etable_relational::sql::{execute, executor::execute_query, parse_statement, Statement};

/// The Table 2 ground-truth queries of both matched task sets.
fn all_table2_queries() -> Vec<String> {
    let mut qs: Vec<String> = task_set(TaskSet::A).into_iter().map(|t| t.sql).collect();
    qs.extend(task_set(TaskSet::B).into_iter().map(|t| t.sql));
    assert_eq!(qs.len(), 12);
    qs
}

#[test]
fn table2_queries_lex_and_relex_identically() {
    for sql in all_table2_queries() {
        let tokens = tokenize(&sql).unwrap_or_else(|e| panic!("lexing {sql:?}: {e}"));
        assert!(!tokens.is_empty(), "no tokens for {sql:?}");
        let rendered = render_tokens(&tokens);
        let relexed = tokenize(&rendered).unwrap_or_else(|e| panic!("re-lexing {rendered:?}: {e}"));
        assert_eq!(tokens, relexed, "lexer round-trip diverged on {sql:?}");
    }
}

#[test]
fn table2_queries_parse_and_reparse_identically() {
    for sql in all_table2_queries() {
        let stmt = parse_statement(&sql).unwrap_or_else(|e| panic!("parsing {sql:?}: {e}"));
        assert!(
            matches!(stmt, Statement::Select(_)),
            "not a SELECT: {sql:?}"
        );
        let rendered = render_tokens(&tokenize(&sql).unwrap());
        let reparsed =
            parse_statement(&rendered).unwrap_or_else(|e| panic!("re-parsing {rendered:?}: {e}"));
        assert_eq!(stmt, reparsed, "parser round-trip diverged on {sql:?}");
    }
}

/// A miniature Figure 3 database with the planted entities the task
/// queries refer to.
fn figure3_fixture() -> Database {
    let mut db = Database::new();
    for ddl in [
        "CREATE TABLE Conferences (id INT PRIMARY KEY, acronym TEXT NOT NULL, title TEXT NOT NULL)",
        "CREATE TABLE Institutions (id INT PRIMARY KEY, name TEXT NOT NULL, country TEXT NOT NULL)",
        "CREATE TABLE Authors (id INT PRIMARY KEY, name TEXT NOT NULL, \
         institution_id INT REFERENCES Institutions(id))",
        "CREATE TABLE Papers (id INT PRIMARY KEY, conference_id INT REFERENCES Conferences(id), \
         title TEXT NOT NULL, year INT NOT NULL, page_start INT NOT NULL, page_end INT NOT NULL)",
        "CREATE TABLE Paper_Authors (paper_id INT, author_id INT, ord INT NOT NULL, \
         PRIMARY KEY (paper_id, author_id), \
         FOREIGN KEY (paper_id) REFERENCES Papers (id), \
         FOREIGN KEY (author_id) REFERENCES Authors (id))",
        "CREATE TABLE Paper_Keywords (paper_id INT, keyword TEXT, \
         PRIMARY KEY (paper_id, keyword), \
         FOREIGN KEY (paper_id) REFERENCES Papers (id))",
    ] {
        execute(&mut db, ddl).unwrap();
    }
    for (id, acr, title) in [(1i64, "SIGMOD", "SIGMOD Conference"), (7, "KDD", "SIGKDD")] {
        db.insert("Conferences", vec![id.into(), acr.into(), title.into()])
            .unwrap();
    }
    for (id, name, country) in [
        (1i64, "Carnegie Mellon University", "USA"),
        (2, "Massachusetts Institute of Technology", "USA"),
        (11, "Seoul National University", "South Korea"),
        (12, "KAIST", "South Korea"),
    ] {
        db.insert("Institutions", vec![id.into(), name.into(), country.into()])
            .unwrap();
    }
    for (id, name, inst) in [
        (1i64, "Samuel Madden", 2i64),
        (2, "Ada Author", 1),
        (3, "Ben Builder", 11),
        (4, "Cho Researcher", 11),
        (5, "Dae Scholar", 12),
    ] {
        db.insert("Authors", vec![id.into(), name.into(), inst.into()])
            .unwrap();
    }
    for (id, conf, title, year) in [
        (1i64, 1i64, "Making database systems usable", 2007i64),
        (2, 7, "Collaborative filtering with temporal dynamics", 2009),
        (3, 1, "A study in relational browsing", 2014),
        (4, 7, "Mining skewed graphs", 2015),
    ] {
        db.insert(
            "Papers",
            vec![
                id.into(),
                conf.into(),
                title.into(),
                year.into(),
                1.into(),
                12.into(),
            ],
        )
        .unwrap();
    }
    for (paper, author, ord) in [
        (1i64, 1i64, 1i64),
        (2, 1, 1),
        (3, 1, 1),
        (3, 2, 2),
        (4, 3, 1),
        (4, 5, 2),
    ] {
        db.insert(
            "Paper_Authors",
            vec![paper.into(), author.into(), ord.into()],
        )
        .unwrap();
    }
    for (paper, kw) in [(1i64, "usability"), (1, "databases"), (2, "recommendation")] {
        db.insert("Paper_Keywords", vec![paper.into(), kw.into()])
            .unwrap();
    }
    db
}

#[test]
fn table2_queries_execute_with_planner_and_naive_agreement() {
    let db = figure3_fixture();
    for sql in all_table2_queries() {
        let q = match parse_statement(&sql).unwrap() {
            Statement::Select(q) => q,
            _ => unreachable!(),
        };
        let planned = execute_query(&db, &q)
            .unwrap_or_else(|e| panic!("planned execution of {sql:?}: {e}"))
            .rows;
        let naive = execute_query_naive(&db, &q)
            .unwrap_or_else(|e| panic!("naive execution of {sql:?}: {e}"))
            .rows;
        assert_eq!(planned, naive, "evaluator divergence on {sql:?}");
    }
}

#[test]
fn table2_fixture_answers_are_sensible() {
    let mut db = figure3_fixture();
    // Task 1: publication year of the planted paper.
    let r = execute(
        &mut db,
        "SELECT year FROM Papers WHERE title = 'Making database systems usable'",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1);
    // Task 5: SNU (2 authors) beats KAIST (1) — and LIMIT 1 applies.
    let r = execute(
        &mut db,
        "SELECT i.name FROM Institutions i, Authors a \
         WHERE a.institution_id = i.id AND i.country = 'South Korea' \
         GROUP BY i.name ORDER BY COUNT(*) DESC, i.name LIMIT 1",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].to_string(), "Seoul National University");
}
