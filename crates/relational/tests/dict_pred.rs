//! Dictionary-encoded predicate lifecycle: LIKE/equality/IN over text
//! columns evaluate against a membership bitmap built once per distinct
//! interned symbol. The interner arena is append-only, so a cached bitmap
//! is never *wrong* — it just stops short: symbols interned after the
//! snapshot must be (re)evaluated, either by extending the bitmap on the
//! next compile or by the per-row direct-match fallback. These tests grow
//! the arena between queries and check both the extension path and
//! dict-on/dict-off equivalence.

use etable_relational::database::Database;
use etable_relational::exec::pred::set_dict_predicates;
use etable_relational::sql::execute;
use etable_relational::value::Value;

fn ids(db: &mut Database, sql: &str) -> Vec<i64> {
    execute(db, sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            ref v => panic!("expected INT id, got {v:?}"),
        })
        .collect()
}

#[test]
fn like_bitmap_extends_over_newly_interned_symbols() {
    let mut db = Database::new();
    execute(&mut db, "CREATE TABLE n (id INT PRIMARY KEY, title TEXT)").unwrap();
    execute(
        &mut db,
        "INSERT INTO n VALUES (1, 'dictgrow-alpha-match'), (2, 'dictgrow-beta-other'), (3, NULL)",
    )
    .unwrap();
    // First query snapshots the arena and caches the pattern's bitmap.
    assert_eq!(
        ids(
            &mut db,
            "SELECT id FROM n WHERE title LIKE '%match%' ORDER BY id"
        ),
        vec![1]
    );
    // Grow the arena with symbols the cached bitmap has never seen — both
    // a matching and a non-matching one — then requery.
    execute(
        &mut db,
        "INSERT INTO n VALUES (4, 'dictgrow-gamma-match-late'), (5, 'dictgrow-delta-late')",
    )
    .unwrap();
    assert_eq!(
        ids(
            &mut db,
            "SELECT id FROM n WHERE title LIKE '%match%' ORDER BY id"
        ),
        vec![1, 4]
    );
    // Equality and IN compile to symbol-id tests; they must see late
    // symbols too (the literal itself is interned at compile time).
    assert_eq!(
        ids(
            &mut db,
            "SELECT id FROM n WHERE title = 'dictgrow-gamma-match-late'"
        ),
        vec![4]
    );
    assert_eq!(
        ids(
            &mut db,
            "SELECT id FROM n WHERE title IN ('dictgrow-delta-late', 'dictgrow-alpha-match') \
             ORDER BY id"
        ),
        vec![1, 5]
    );
    // NULL titles stay excluded by <> under 3VL.
    assert_eq!(
        ids(
            &mut db,
            "SELECT id FROM n WHERE title <> 'dictgrow-beta-other' ORDER BY id"
        ),
        vec![1, 4, 5]
    );
}

#[test]
fn dict_and_generic_evaluation_agree() {
    let mut db = Database::new();
    execute(
        &mut db,
        "CREATE TABLE m (id INT PRIMARY KEY, tag TEXT, v INT)",
    )
    .unwrap();
    let tags = ["red-apple", "red-pear", "green-apple", "plum"];
    for i in 0..200i64 {
        let tag = if i % 7 == 0 {
            "NULL".to_string()
        } else {
            format!("'{}'", tags[(i % 4) as usize])
        };
        execute(
            &mut db,
            &format!("INSERT INTO m VALUES ({i}, {tag}, {})", i % 10),
        )
        .unwrap();
    }
    let queries = [
        "SELECT id FROM m WHERE tag LIKE 'red%' ORDER BY id",
        "SELECT id FROM m WHERE tag LIKE '%apple' AND v >= 5 ORDER BY id",
        "SELECT id FROM m WHERE tag = 'plum' ORDER BY id",
        "SELECT id FROM m WHERE tag <> 'plum' ORDER BY id",
        "SELECT id FROM m WHERE tag IN ('plum', 'red-pear', 'no-such-tag') ORDER BY id",
        "SELECT id FROM m WHERE tag IN ('plum', NULL) OR v = 3 ORDER BY id",
        "SELECT id FROM m WHERE NOT (tag LIKE '%pear%') ORDER BY id",
    ];
    for sql in queries {
        set_dict_predicates(false);
        let generic = ids(&mut db, sql);
        set_dict_predicates(true);
        let dict = ids(&mut db, sql);
        assert_eq!(dict, generic, "dict/generic divergence on `{sql}`");
    }
    set_dict_predicates(true);
}
