//! Parallel-scan determinism: the sharded scan pool must produce
//! byte-identical results — including the ORDER BY ties policy (stable
//! sort, input order preserved), join outputs built from the scans'
//! selection vectors, and error reporting — for every worker pool size.
//! The pool size is taken from the `ETABLE_SCAN_THREADS` environment
//! override, so this test exercises 1, 2 and 8 workers in one process; a
//! pool size already present in the environment when the test starts
//! (CI's multi-core evidence step forces 4) is swept additionally.
//!
//! Everything runs inside a single `#[test]` because the override is
//! process-global; the table spans several scan chunks
//! ([`etable_relational::scan::CHUNK_ROWS`]) so pools of 2 and 8 genuinely
//! shard the work.

use etable_relational::database::Database;
use etable_relational::scan::CHUNK_ROWS;
use etable_relational::sql::{execute, executor::execute_query, parse_statement, Statement};
use etable_relational::value::Value;

fn fixture() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE big (id INT PRIMARY KEY, grp INT NOT NULL, txt TEXT, val INT)",
        "CREATE TABLE side (id INT PRIMARY KEY, name TEXT NOT NULL)",
        "INSERT INTO side VALUES (0, 'even'), (1, 'odd')",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    let words = ["pear", "apple", "fig", "banana", "kiwi"];
    let n = 3 * CHUNK_ROWS + 123; // several chunks plus a ragged tail
    let rows: Vec<Vec<Value>> = (0..n as i64)
        .map(|i| {
            vec![
                i.into(),
                (i % 7).into(),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    words[(i % 5) as usize].into()
                },
                if i % 13 == 0 {
                    Value::Null
                } else {
                    ((i * 37) % 100).into()
                },
            ]
        })
        .collect();
    db.append_rows("big", rows).unwrap();
    db
}

fn run(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let q = match parse_statement(sql).unwrap() {
        Statement::Select(q) => q,
        other => panic!("expected SELECT, got {other:?}"),
    };
    execute_query(db, &q).unwrap().rows
}

#[test]
fn results_identical_for_pool_sizes_1_2_and_8() {
    // A pool size forced from outside (CI sweeps 2 and 4 on multi-core
    // runners) joins the sweep; read it before the test starts mutating
    // the variable.
    let forced = std::env::var("ETABLE_SCAN_THREADS").ok();
    let db = fixture();
    let queries = [
        // Sharded filtered scan, output in row order.
        "SELECT id, txt FROM big WHERE val >= 50 AND txt LIKE '%a%'",
        // Vectorized group scan over a selection vector, with HAVING and
        // a tie-prone ORDER BY (many groups share n).
        "SELECT grp, COUNT(*) AS n, MIN(txt) AS lo, MAX(val) AS hi FROM big \
         WHERE val < 90 GROUP BY grp HAVING COUNT(*) > 10 ORDER BY n DESC, grp",
        // ORDER BY with ties on a text key: the stable-sort ties policy
        // (input order) must survive any pool size.
        "SELECT txt, id FROM big WHERE grp = 3 ORDER BY txt LIMIT 200",
        // Grouped join over the scans' selection vectors.
        "SELECT s.name, COUNT(*) AS n FROM big b, side s \
         WHERE b.grp = s.id AND b.val >= 10 GROUP BY s.name ORDER BY s.name",
        // Non-grouped join projection with no ORDER BY: the columnar
        // join's probe-order output must be byte-identical at every pool
        // size because the underlying selection vectors are.
        "SELECT b.id, b.txt, s.name FROM big b, side s \
         WHERE b.grp = s.id AND b.val >= 50 LIMIT 500",
        // 3-table chain (self-joining the side table under two aliases)
        // over a text-filtered parallel scan.
        "SELECT b.id, s.name, c.name FROM big b, side s, side c \
         WHERE b.grp = s.id AND b.val = c.id AND b.txt LIKE '%a%'",
        // Global aggregate over the full table (no selection vector).
        "SELECT COUNT(*) AS n, SUM(val) AS s, MIN(txt) AS lo FROM big",
    ];
    let mut pools: Vec<String> = ["1", "2", "8"].map(String::from).to_vec();
    if let Some(extra) = forced {
        if !pools.contains(&extra) {
            pools.push(extra);
        }
    }
    let mut baseline: Vec<Vec<Vec<Value>>> = Vec::new();
    for (pi, threads) in pools.iter().enumerate() {
        std::env::set_var("ETABLE_SCAN_THREADS", threads);
        for (qi, sql) in queries.iter().enumerate() {
            let rows = run(&db, sql);
            if pi == 0 {
                assert!(!rows.is_empty(), "fixture must exercise `{sql}`");
                baseline.push(rows);
            } else {
                assert_eq!(
                    rows, baseline[qi],
                    "pool size {threads} diverged from sequential on `{sql}`"
                );
            }
        }
    }
    // Error determinism: a predicate that fails mid-scan reports the same
    // error for every pool size.
    let bad = "SELECT id FROM big WHERE val LIKE 'x%'";
    let q = match parse_statement(bad).unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let mut messages: Vec<String> = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("ETABLE_SCAN_THREADS", threads);
        messages.push(execute_query(&db, &q).unwrap_err().to_string());
    }
    std::env::remove_var("ETABLE_SCAN_THREADS");
    assert_eq!(messages[0], messages[1]);
    assert_eq!(messages[0], messages[2]);
}
