//! Pool invisibility: every data-parallel kernel — the sharded filtered
//! scan, the morselized hash-join probe, and parallel grouped
//! aggregation — must produce byte-identical results (rows, row order,
//! ORDER BY tie policy, and error messages) at every worker pool size.
//!
//! Pool sizes are swept **in-process** with
//! [`etable_relational::exec::pool::with_pool`] over explicitly
//! constructed pools: the process environment is never mutated
//! (`ETABLE_SCAN_THREADS` is read exactly once, at global-pool
//! construction, and `std::env::set_var` in a threaded process is a
//! glibc data race anyway — the repo lint forbids it in tests too).

use etable_relational::database::Database;
use etable_relational::exec::pool::{with_pool, Pool, PoolConfig, CHUNK_ROWS};
use etable_relational::sql::{execute, executor::execute_query, parse_statement, Statement};
use etable_relational::value::Value;

fn fixture() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE big (id INT PRIMARY KEY, grp INT NOT NULL, txt TEXT, val INT)",
        "CREATE TABLE side (id INT PRIMARY KEY, name TEXT NOT NULL)",
        "INSERT INTO side VALUES (0, 'even'), (1, 'odd')",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    let words = ["pear", "apple", "fig", "banana", "kiwi"];
    let n = 3 * CHUNK_ROWS + 123; // several chunks plus a ragged tail
    let rows: Vec<Vec<Value>> = (0..n as i64)
        .map(|i| {
            vec![
                i.into(),
                (i % 7).into(),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    words[(i % 5) as usize].into()
                },
                if i % 13 == 0 {
                    Value::Null
                } else {
                    ((i * 37) % 100).into()
                },
            ]
        })
        .collect();
    db.append_rows("big", rows).unwrap();
    db
}

fn run(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let q = match parse_statement(sql).unwrap() {
        Statement::Select(q) => q,
        other => panic!("expected SELECT, got {other:?}"),
    };
    execute_query(db, &q).unwrap().rows
}

/// Runs every query at pool sizes 1, 2 and 8 and asserts the rows are
/// byte-identical to the size-1 (sequential) baseline.
fn assert_pool_invisible(db: &Database, queries: &[&str], expect_rows: bool) {
    let mut baseline: Vec<Vec<Vec<Value>>> = Vec::new();
    for (pi, threads) in [1usize, 2, 8].into_iter().enumerate() {
        let pool = Pool::new(PoolConfig::fixed(threads));
        with_pool(&pool, || {
            for (qi, sql) in queries.iter().enumerate() {
                let rows = run(db, sql);
                if pi == 0 {
                    if expect_rows {
                        assert!(!rows.is_empty(), "fixture must exercise `{sql}`");
                    }
                    baseline.push(rows);
                } else {
                    assert_eq!(
                        rows, baseline[qi],
                        "pool size {threads} diverged from sequential on `{sql}`"
                    );
                }
            }
        });
    }
}

#[test]
fn scan_join_group_identical_across_pool_sizes() {
    let db = fixture();
    assert_pool_invisible(
        &db,
        &[
            // Sharded filtered scan (LIKE runs on the dictionary bitmap),
            // output in row order.
            "SELECT id, txt FROM big WHERE val >= 50 AND txt LIKE '%a%'",
            // Vectorized group scan over a selection vector, with HAVING and
            // a tie-prone ORDER BY (many groups share n).
            "SELECT grp, COUNT(*) AS n, MIN(txt) AS lo, MAX(val) AS hi FROM big \
             WHERE val < 90 GROUP BY grp HAVING COUNT(*) > 10 ORDER BY n DESC, grp",
            // ORDER BY with ties on a text key: the stable-sort ties policy
            // (input order) must survive any pool size.
            "SELECT txt, id FROM big WHERE grp = 3 ORDER BY txt LIMIT 200",
            // Grouped join over the scans' selection vectors.
            "SELECT s.name, COUNT(*) AS n FROM big b, side s \
             WHERE b.grp = s.id AND b.val >= 10 GROUP BY s.name ORDER BY s.name",
            // Non-grouped join projection with no ORDER BY: the morselized
            // probe's pair order must be byte-identical at every pool size
            // because pairs are merged in chunk order.
            "SELECT b.id, b.txt, s.name FROM big b, side s \
             WHERE b.grp = s.id AND b.val >= 50 LIMIT 500",
            // 3-table chain (self-joining the side table under two aliases)
            // over a text-filtered parallel scan.
            "SELECT b.id, s.name, c.name FROM big b, side s, side c \
             WHERE b.grp = s.id AND b.val = c.id AND b.txt LIKE '%a%'",
            // Global aggregates over the full table (no selection vector):
            // every mergeable aggregate kind in one pass.
            "SELECT COUNT(*) AS n, COUNT(val) AS nv, SUM(val) AS s, AVG(val) AS a, \
             MIN(val) AS lo, MAX(val) AS hi, MIN(txt) AS tl, MAX(txt) AS th FROM big",
            // Grouped AVG/SUM over INT inputs: the exact-integer parallel
            // merge path.
            "SELECT grp, SUM(val) AS s, AVG(val) AS a FROM big \
             GROUP BY grp ORDER BY grp",
        ],
        true,
    );
}

#[test]
fn error_reporting_identical_across_pool_sizes() {
    // A predicate that fails mid-scan (LIKE over INT) must report the
    // error of the first failing row in row order at every pool size.
    let db = fixture();
    let q = match parse_statement("SELECT id FROM big WHERE val LIKE 'x%'").unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let mut messages: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = Pool::new(PoolConfig::fixed(threads));
        with_pool(&pool, || {
            messages.push(execute_query(&db, &q).unwrap_err().to_string());
        });
    }
    assert_eq!(messages[0], messages[1]);
    assert_eq!(messages[0], messages[2]);
}

/// Adversarial morsel boundaries: empty input, a single row, an exact
/// chunk multiple (empty tail morsel never materializes), a single-row
/// tail, and an all-rows-match predicate (maximal per-morsel output).
#[test]
fn adversarial_morsel_boundaries() {
    for n in [0usize, 1, CHUNK_ROWS, 2 * CHUNK_ROWS, 2 * CHUNK_ROWS + 1] {
        let mut db = Database::new();
        for stmt in [
            "CREATE TABLE t (id INT PRIMARY KEY, g INT NOT NULL, w TEXT)",
            "CREATE TABLE d (g INT PRIMARY KEY, label TEXT NOT NULL)",
            "INSERT INTO d VALUES (0, 'zero'), (1, 'one'), (2, 'two')",
        ] {
            execute(&mut db, stmt).unwrap();
        }
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| vec![i.into(), (i % 3).into(), format!("w{}", i % 4).into()])
            .collect();
        db.append_rows("t", rows).unwrap();
        assert_pool_invisible(
            &db,
            &[
                // All rows match: every morsel emits its full range.
                "SELECT id FROM t WHERE id >= 0",
                // No row matches: every morsel emits nothing.
                "SELECT id FROM t WHERE id < 0",
                "SELECT t.id, d.label FROM t, d WHERE t.g = d.g AND t.id >= 0",
                "SELECT g, COUNT(*) AS n, SUM(id) AS s, MIN(w) AS lo FROM t \
                 GROUP BY g ORDER BY g",
                "SELECT COUNT(*) AS n, SUM(id) AS s FROM t",
            ],
            false,
        );
    }
}

/// Float aggregates: SUM/AVG over FLOAT inputs must fall back to the
/// sequential kernel (f64 accumulation is order-dependent), while float
/// MIN/MAX — exact comparisons — still take the parallel path. Either
/// way the results must not depend on the pool size.
#[test]
fn float_aggregates_identical_across_pool_sizes() {
    let mut db = Database::new();
    execute(
        &mut db,
        "CREATE TABLE fx (id INT PRIMARY KEY, g INT NOT NULL, f FLOAT)",
    )
    .unwrap();
    let n = 2 * CHUNK_ROWS + 57;
    let rows: Vec<Vec<Value>> = (0..n as i64)
        .map(|i| {
            vec![
                i.into(),
                (i % 5).into(),
                if i % 9 == 0 {
                    Value::Null
                } else {
                    Value::Float((i % 200) as f64 * 0.25)
                },
            ]
        })
        .collect();
    db.append_rows("fx", rows).unwrap();
    assert_pool_invisible(
        &db,
        &[
            // SUM/AVG over FLOAT: sequential fallback at any pool size.
            "SELECT g, SUM(f) AS s, AVG(f) AS a FROM fx GROUP BY g ORDER BY g",
            // MIN/MAX over FLOAT + COUNT: the parallel path.
            "SELECT g, MIN(f) AS lo, MAX(f) AS hi, COUNT(f) AS n FROM fx \
             GROUP BY g ORDER BY g",
        ],
        true,
    );
}
