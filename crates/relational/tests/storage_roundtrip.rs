//! Round-trip property tests for the binary table format
//! ([`etable_relational::storage`]): every column type, NULL bitmaps at
//! morsel/word boundaries (0/1/2048/4097 rows), empty tables and empty
//! databases, adversarial intern order, lazy paged loading, and
//! save→open→save byte idempotence.

use etable_relational::database::Database;
use etable_relational::intern::Sym;
use etable_relational::schema::{Column, ForeignKey, TableSchema};
use etable_relational::table::Row;
use etable_relational::value::{DataType, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh directory under the system temp dir, unique per call.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "etable-storage-rt-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A schema exercising every column type, with nullable columns of each.
fn wide_schema(name: &str) -> TableSchema {
    TableSchema::new(
        name,
        vec![
            Column::new("id", DataType::Int),
            Column::nullable("i", DataType::Int),
            Column::nullable("f", DataType::Float),
            Column::nullable("t", DataType::Text),
            Column::nullable("b", DataType::Bool),
        ],
    )
    .with_primary_key(&["id"])
}

fn random_cell(rng: &mut StdRng, ty: DataType) -> Value {
    if rng.gen_range(0..5) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(rng.gen_range(-1000..1000)),
        DataType::Float => Value::Float(rng.gen_range(-10.0..10.0)),
        DataType::Text => {
            let len = rng.gen_range(0..8);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0..6u8)) as char)
                .collect();
            Value::text(s)
        }
        DataType::Bool => Value::Bool(rng.gen_range(0..2) == 1),
    }
}

fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_table(wide_schema("W")).unwrap();
    let schema = wide_schema("W");
    let batch: Vec<Row> = (0..rows)
        .map(|id| {
            let mut row: Row = vec![Value::Int(id as i64)];
            row.extend(
                schema.columns[1..]
                    .iter()
                    .map(|c| random_cell(&mut rng, c.data_type)),
            );
            row
        })
        .collect();
    db.append_rows("W", batch).unwrap();
    db
}

/// Full logical equality: same catalog, same schemas, same rows.
fn assert_db_eq(a: &Database, b: &Database) {
    assert_eq!(a.table_names(), b.table_names());
    for name in a.table_names() {
        let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
        assert_eq!(ta.schema(), tb.schema(), "schema of `{name}`");
        assert_eq!(ta.len(), tb.len(), "row count of `{name}`");
        assert_eq!(ta.to_rows(), tb.to_rows(), "rows of `{name}`");
    }
}

/// Byte-level equality of two saved snapshot directories.
fn assert_dirs_byte_identical(a: &PathBuf, b: &PathBuf) {
    let list = |d: &PathBuf| {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    assert_eq!(list(a), list(b), "file sets differ");
    for name in list(a) {
        let ba = std::fs::read(a.join(&name)).unwrap();
        let bb = std::fs::read(b.join(&name)).unwrap();
        assert_eq!(ba, bb, "bytes of {name} differ");
    }
}

/// NULL bitmaps at word/morsel boundaries: row counts 0, 1, 2048 (the
/// morsel size), 4097 (past two morsels), with NULLs planted at every
/// 64-row word edge and at the final row.
#[test]
fn boundary_row_counts_round_trip() {
    for rows in [0usize, 1, 2048, 4097] {
        let mut db = Database::new();
        db.create_table(wide_schema("B")).unwrap();
        let schema = wide_schema("B");
        let batch: Vec<Row> = (0..rows)
            .map(|id| {
                let edge = id % 64 == 0 || id % 64 == 63 || id == rows - 1;
                let mut row: Row = vec![Value::Int(id as i64)];
                row.extend(schema.columns[1..].iter().map(|c| {
                    if edge {
                        Value::Null
                    } else {
                        match c.data_type {
                            DataType::Int => Value::Int(id as i64 * 3),
                            DataType::Float => Value::Float(id as f64 / 2.0),
                            DataType::Text => Value::text(format!("r{id}")),
                            DataType::Bool => Value::Bool(id % 2 == 0),
                        }
                    }
                }));
                row
            })
            .collect();
        db.append_rows("B", batch).unwrap();
        let dir = scratch_dir("boundary");
        db.save(&dir).unwrap();
        let reopened = Database::open(&dir).unwrap();
        assert_db_eq(&db, &reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An empty catalog and a table with zero rows both survive the trip.
#[test]
fn empty_database_and_empty_table_round_trip() {
    let empty = Database::new();
    let dir = scratch_dir("empty-db");
    empty.save(&dir).unwrap();
    let back = Database::open(&dir).unwrap();
    assert!(back.table_names().is_empty());
    let _ = std::fs::remove_dir_all(&dir);

    let mut db = Database::new();
    db.create_table(wide_schema("E")).unwrap();
    let dir = scratch_dir("empty-table");
    db.save(&dir).unwrap();
    let back = Database::open(&dir).unwrap();
    assert_db_eq(&db, &back);
    assert_eq!(back.table("E").unwrap().len(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Foreign keys, composite PKs and multiple tables rehydrate exactly.
#[test]
fn multi_table_schema_with_keys_round_trips() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "Conf",
            vec![
                Column::new("id", DataType::Int),
                Column::new("acronym", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "Pap",
            vec![
                Column::new("id", DataType::Int),
                Column::new("conf_id", DataType::Int),
                Column::new("rev", DataType::Int),
            ],
        )
        .with_primary_key(&["id", "rev"])
        .with_foreign_key(ForeignKey::single("conf_id", "Conf", "id")),
    )
    .unwrap();
    db.insert("Conf", vec![1.into(), "SIGMOD".into()]).unwrap();
    db.insert("Pap", vec![10.into(), 1.into(), 2.into()])
        .unwrap();
    let dir = scratch_dir("keys");
    db.save(&dir).unwrap();
    let back = Database::open(&dir).unwrap();
    assert_db_eq(&db, &back);
    // The PK index was rebuilt: composite lookup works on the reopened db.
    assert!(back
        .table("Pap")
        .unwrap()
        .get_by_pk(&[10.into(), 2.into()])
        .is_some());
    back.check_integrity().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Interning strings in an order hostile to the file's first-use layout
/// (reverse lexicographic, interleaved across columns) must not perturb
/// rehydration: symbols resolve to the same strings and sort identically.
#[test]
fn adversarial_intern_order_rehydrates_deterministically() {
    // Force arena ids whose numeric order disagrees with string order.
    for s in ["zzz-adv", "yyy-adv", "mmm-adv", "aaa-adv"] {
        Sym::intern(s);
    }
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "A",
            vec![
                Column::new("id", DataType::Int),
                Column::new("s", DataType::Text),
                Column::nullable("t", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let rows: Vec<Row> = vec![
        vec![0.into(), "mmm-adv".into(), Value::Null],
        vec![1.into(), "aaa-adv".into(), "zzz-adv".into()],
        vec![2.into(), "zzz-adv".into(), "aaa-adv".into()],
        vec![3.into(), "aaa-adv".into(), Value::text("")],
    ];
    db.append_rows("A", rows).unwrap();
    let dir = scratch_dir("intern");
    db.save(&dir).unwrap();
    let back = Database::open(&dir).unwrap();
    assert_db_eq(&db, &back);
    // Ordering goes through the string contents, not arena ids.
    assert_eq!(
        back.table("A").unwrap().distinct_values(1),
        vec![
            Value::from("aaa-adv"),
            Value::from("mmm-adv"),
            Value::from("zzz-adv")
        ]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// save → open → save must write byte-identical files, regardless of the
/// first database's mutation history (deletions fragment bitmaps and
/// buffers; the canonical encoding must erase that history).
#[test]
fn save_open_save_is_byte_idempotent() {
    let mut db = random_db(7, 300);
    // Mutation history: delete a band of rows, then re-insert some.
    use etable_relational::expr::Expr;
    db.table_mut("W")
        .unwrap()
        .delete_where(&Expr::col(0).lt(Expr::lit(40)))
        .unwrap();
    db.insert(
        "W",
        vec![
            5000.into(),
            Value::Null,
            Value::Float(1.5),
            "tail".into(),
            Value::Bool(true),
        ],
    )
    .unwrap();
    let d1 = scratch_dir("idem1");
    let d2 = scratch_dir("idem2");
    db.save(&d1).unwrap();
    let reopened = Database::open(&d1).unwrap();
    reopened.save(&d2).unwrap();
    assert_dirs_byte_identical(&d1, &d2);
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

/// Paged columns stay on disk until first touch; the PK column (needed to
/// rebuild the index at open) is the only eager load.
#[test]
fn open_is_lazy_per_column() {
    let db = random_db(11, 100);
    let dir = scratch_dir("lazy");
    db.save(&dir).unwrap();
    let back = Database::open(&dir).unwrap();
    let t = back.table("W").unwrap();
    assert!(
        t.column(0).is_materialized(),
        "PK column loads eagerly for the index rebuild"
    );
    for c in 1..t.schema().arity() {
        assert!(!t.column(c).is_materialized(), "column {c} must stay lazy");
    }
    // First touch materializes exactly the touched column.
    let _ = t.value(3, 2);
    assert!(t.column(2).is_materialized());
    assert!(!t.column(1).is_materialized());
    assert!(!t.column(3).is_materialized());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reopened database accepts mutation (paged columns convert to
/// resident) and keeps constraint semantics.
#[test]
fn reopened_database_is_mutable() {
    let db = random_db(13, 50);
    let dir = scratch_dir("mutate");
    db.save(&dir).unwrap();
    let mut back = Database::open(&dir).unwrap();
    back.insert(
        "W",
        vec![
            9999.into(),
            1.into(),
            Value::Float(0.5),
            "new".into(),
            Value::Bool(false),
        ],
    )
    .unwrap();
    assert_eq!(
        back.table("W").unwrap().len(),
        db.table("W").unwrap().len() + 1
    );
    // Duplicate PK still rejected (the rebuilt index is live).
    assert!(back
        .insert(
            "W",
            vec![0.into(), Value::Null, Value::Null, Value::Null, Value::Null]
        )
        .is_err());
    // The disk snapshot is untouched by the in-memory mutation.
    let again = Database::open(&dir).unwrap();
    assert_db_eq(&db, &again);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized round-trip: any generated database survives save + open
    /// with logical equality, and a second save is byte-identical.
    #[test]
    fn random_databases_round_trip(seed in 0u64..100_000, rows in 0usize..400) {
        let db = random_db(seed, rows);
        let d1 = scratch_dir("prop1");
        let d2 = scratch_dir("prop2");
        db.save(&d1).unwrap();
        let back = Database::open(&d1).unwrap();
        assert_db_eq(&db, &back);
        back.save(&d2).unwrap();
        assert_dirs_byte_identical(&d1, &d2);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }
}
