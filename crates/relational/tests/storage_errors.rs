//! Corrupt-input hardening for the binary table format: truncated files,
//! bad magic, wrong version and checksum mismatches must surface from
//! `Database::open` as typed `Error::Storage` values naming the offending
//! path/segment — never as a panic, and never as silently-wrong data.

use etable_relational::database::Database;
use etable_relational::schema::{Column, TableSchema};
use etable_relational::storage::FORMAT_VERSION;
use etable_relational::value::{DataType, Value};
use etable_relational::Error;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "etable-storage-err-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small saved database to corrupt: two tables, all column types, NULLs.
fn saved_db(tag: &str) -> PathBuf {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "T",
            vec![
                Column::new("id", DataType::Int),
                Column::nullable("f", DataType::Float),
                Column::nullable("s", DataType::Text),
                Column::nullable("b", DataType::Bool),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    for i in 0..200i64 {
        db.insert(
            "T",
            vec![
                i.into(),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Float(i as f64)
                },
                Value::text(format!("s{}", i % 13)),
                Value::Bool(i % 2 == 0),
            ],
        )
        .unwrap();
    }
    db.create_table(TableSchema::new("U", vec![Column::new("x", DataType::Int)]))
        .unwrap();
    db.insert("U", vec![1.into()]).unwrap();
    let dir = scratch_dir(tag);
    db.save(&dir).unwrap();
    dir
}

/// Asserts `open` fails with a Storage error whose message contains every
/// expected fragment (path/segment naming contract).
fn assert_open_storage_err(dir: &Path, fragments: &[&str]) -> String {
    match Database::open(dir) {
        Ok(_) => panic!("open of corrupted {} must fail", dir.display()),
        Err(Error::Storage(msg)) => {
            for f in fragments {
                assert!(msg.contains(f), "error message must name `{f}`, got: {msg}");
            }
            msg
        }
        Err(other) => panic!("expected Error::Storage, got {other:?}"),
    }
}

#[test]
fn missing_manifest_is_a_typed_error() {
    let dir = scratch_dir("missing");
    fs::create_dir_all(&dir).unwrap();
    assert_open_storage_err(&dir, &["MANIFEST.etb", "cannot open"]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_table_file_is_a_typed_error() {
    let dir = saved_db("lost-table");
    fs::remove_file(dir.join("t0.etb")).unwrap();
    assert_open_storage_err(&dir, &["t0.etb", "cannot open"]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_names_the_file() {
    for victim in ["MANIFEST.etb", "t0.etb"] {
        let dir = saved_db("magic");
        let path = dir.join(victim);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_open_storage_err(&dir, &[victim, "bad magic"]);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn wrong_version_is_rejected_with_both_versions_named() {
    let dir = saved_db("version");
    let path = dir.join("t0.etb");
    let mut bytes = fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    let msg = assert_open_storage_err(&dir, &["t0.etb", "unsupported format version"]);
    assert!(msg.contains(&format!("{}", FORMAT_VERSION + 1)), "{msg}");
    assert!(msg.contains(&format!("reads {FORMAT_VERSION}")), "{msg}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    // Sweep truncation points across the whole structure: inside the
    // header, the length prefix, the schema payload, and deep in a column
    // segment. Every one must produce Error::Storage, never a panic.
    let full = {
        let dir = saved_db("trunc-probe");
        let bytes = fs::read(dir.join("t0.etb")).unwrap();
        let _ = fs::remove_dir_all(&dir);
        bytes
    };
    let cuts = [
        0usize,
        3,
        7,
        9,
        15,
        40,
        full.len() / 2,
        full.len() - 5,
        full.len() - 1,
    ];
    for cut in cuts {
        let dir = saved_db("trunc");
        let path = dir.join("t0.etb");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..cut.min(bytes.len())]).unwrap();
        let msg = assert_open_storage_err(&dir, &["t0.etb"]);
        assert!(
            msg.contains("truncated") || msg.contains("overruns") || msg.contains("bad magic"),
            "cut at {cut}: {msg}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn bit_flips_fail_the_checksum_naming_the_segment() {
    // Flip one byte inside each segment's payload region. The up-front
    // CRC sweep at open must catch every flip and say which segment.
    let dir = saved_db("flip-probe");
    let len = fs::read(dir.join("t0.etb")).unwrap().len();
    let _ = fs::remove_dir_all(&dir);
    // Sample positions across the file body, past the 8-byte header.
    for pos in [20usize, len / 4, len / 2, len - 10] {
        let dir = saved_db("flip");
        let path = dir.join("t0.etb");
        let mut bytes = fs::read(&path).unwrap();
        bytes[pos] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let msg = assert_open_storage_err(&dir, &["t0.etb"]);
        assert!(
            msg.contains("checksum mismatch")
                || msg.contains("segment")
                || msg.contains("overruns"),
            "flip at {pos}: {msg}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn manifest_checksum_flip_names_the_manifest_segment() {
    let dir = saved_db("mflip");
    let path = dir.join("MANIFEST.etb");
    let mut bytes = fs::read(&path).unwrap();
    let mid = 8 + 8 + 2; // into the single segment's payload
    bytes[mid] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    assert_open_storage_err(
        &dir,
        &["MANIFEST.etb", "manifest segment", "checksum mismatch"],
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn manifest_pointing_at_wrong_table_is_rejected() {
    let dir = saved_db("swap");
    // Swap the two table files: each now holds a table whose name
    // disagrees with the manifest mapping.
    let a = fs::read(dir.join("t0.etb")).unwrap();
    let b = fs::read(dir.join("t1.etb")).unwrap();
    fs::write(dir.join("t0.etb"), &b).unwrap();
    fs::write(dir.join("t1.etb"), &a).unwrap();
    assert_open_storage_err(&dir, &["manifest"]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn trailing_garbage_is_rejected() {
    let dir = saved_db("tail");
    let path = dir.join("t0.etb");
    let mut bytes = fs::read(&path).unwrap();
    bytes.extend_from_slice(&[1, 2, 3]);
    fs::write(&path, &bytes).unwrap();
    let msg = assert_open_storage_err(&dir, &["t0.etb"]);
    assert!(
        msg.contains("truncated length prefix") || msg.contains("overruns"),
        "{msg}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_never_return_wrong_data() {
    // End to end: a snapshot with any of the corruption classes applied
    // either opens to exactly the original data (impossible here) or
    // errors — `open` must never hand back a database that differs.
    let dir = saved_db("never-wrong");
    let path = dir.join("t0.etb");
    let original = fs::read(&path).unwrap();
    for pos in (8..original.len()).step_by(101) {
        let mut bytes = original.clone();
        bytes[pos] = bytes[pos].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(
            Database::open(&dir).is_err(),
            "byte {pos} corrupted but open succeeded"
        );
    }
    // Restoring the original bytes restores a clean open.
    fs::write(&path, &original).unwrap();
    assert!(Database::open(&dir).is_ok());
    let _ = fs::remove_dir_all(&dir);
}
