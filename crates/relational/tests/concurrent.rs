//! Concurrent-reader stress suite for [`SharedDatabase`]: N threads × M
//! mixed queries against one shared database must produce results
//! byte-identical to the sequential baseline — including under a forced
//! `ETABLE_MEM_BUDGET`-style spill budget, where every thread's joins go
//! through their own on-disk spill directories concurrently.

use etable_relational::algebra::Relation;
use etable_relational::database::Database;
use etable_relational::exec::budget::with_budget;
use etable_relational::shared::SharedDatabase;
use etable_relational::sql::execute;
use etable_relational::value::Value;
use std::thread;

const READERS: usize = 8;
const ROUNDS: usize = 4;

/// A deterministic three-table corpus big enough to exercise joins,
/// grouping, LIKE scans and sorting, small enough to keep the suite fast.
fn build_db() -> Database {
    let mut db = Database::new();
    execute(
        &mut db,
        "CREATE TABLE authors (id INT PRIMARY KEY, name TEXT NOT NULL, born INT)",
    )
    .unwrap();
    execute(
        &mut db,
        "CREATE TABLE papers (id INT PRIMARY KEY, title TEXT NOT NULL, year INT NOT NULL)",
    )
    .unwrap();
    execute(
        &mut db,
        "CREATE TABLE paper_authors (paper_id INT, author_id INT, \
         PRIMARY KEY (paper_id, author_id), \
         FOREIGN KEY (paper_id) REFERENCES papers (id), \
         FOREIGN KEY (author_id) REFERENCES authors (id))",
    )
    .unwrap();
    let mut batch = |rows: Vec<String>, table: &str| {
        for chunk in rows.chunks(64) {
            execute(
                &mut db,
                &format!("INSERT INTO {table} VALUES {}", chunk.join(", ")),
            )
            .unwrap();
        }
    };
    batch(
        (0..150)
            .map(|i| {
                format!(
                    "({i}, 'author {}{i}', {})",
                    (b'a' + (i % 26) as u8) as char,
                    1940 + i % 60
                )
            })
            .collect(),
        "authors",
    );
    batch(
        (0..300)
            .map(|i| {
                format!(
                    "({i}, 'paper {} on topic {}', {})",
                    i,
                    i % 17,
                    1990 + i % 30
                )
            })
            .collect(),
        "papers",
    );
    batch(
        (0..300)
            .flat_map(|p| (0..=(p % 3)).map(move |k| format!("({p}, {})", (p * 7 + k * 31) % 150)))
            .collect(),
        "paper_authors",
    );
    db
}

/// The mixed read workload: scans, LIKE, multi-way joins, grouping,
/// aggregates, DISTINCT, pagination, and EXPLAIN (whose plan text must
/// also be byte-stable across threads).
const QUERIES: [&str; 10] = [
    "SELECT name, born FROM authors ORDER BY id",
    "SELECT COUNT(*) FROM papers",
    "SELECT title FROM papers WHERE title LIKE '%topic 1%' ORDER BY title",
    "SELECT a.name, COUNT(*) AS n FROM authors a, paper_authors pa \
     WHERE a.id = pa.author_id GROUP BY a.name ORDER BY n DESC, a.name LIMIT 25",
    "SELECT p.title, a.name FROM papers p, paper_authors pa, authors a \
     WHERE p.id = pa.paper_id AND pa.author_id = a.id AND p.year > 2010 \
     ORDER BY p.title, a.name",
    "SELECT DISTINCT year FROM papers ORDER BY year DESC",
    "SELECT MIN(born), MAX(born), AVG(born) FROM authors",
    "SELECT year, COUNT(*) AS n FROM papers GROUP BY year HAVING COUNT(*) > 8 ORDER BY year",
    "SELECT id, title FROM papers ORDER BY year, id LIMIT 20 OFFSET 35",
    "EXPLAIN SELECT a.name FROM authors a, paper_authors pa \
     WHERE a.id = pa.author_id AND a.born < 1960 GROUP BY a.name",
];

/// Canonical byte form of a result: column shape plus every row.
fn canon(r: &Relation) -> String {
    let cols: Vec<String> = r
        .columns
        .iter()
        .map(|c| format!("{}:{:?}", c.qualified_name(), c.data_type))
        .collect();
    format!("{cols:?}\n{:?}", r.rows)
}

/// Runs every query sequentially against `db` and returns the canonical
/// baselines.
fn baselines(db: &SharedDatabase) -> Vec<String> {
    QUERIES
        .iter()
        .map(|q| canon(&db.execute(q).unwrap()))
        .collect()
}

/// `READERS` threads, each running every query `ROUNDS` times against the
/// shared handle (with a per-thread stagger so different queries overlap),
/// all asserting byte-identity with the sequential baseline.
fn hammer(db: &SharedDatabase, expected: &[String], budget: Option<u64>) {
    let threads: Vec<_> = (0..READERS)
        .map(|t| {
            let db = db.clone();
            let expected = expected.to_vec();
            thread::spawn(move || {
                with_budget(budget, || {
                    for round in 0..ROUNDS {
                        for qi in 0..QUERIES.len() {
                            // Stagger so thread t starts at a different query.
                            let qi = (qi + t + round) % QUERIES.len();
                            let got = canon(&db.execute(QUERIES[qi]).unwrap());
                            assert_eq!(
                                got, expected[qi],
                                "thread {t} round {round} diverged on: {}",
                                QUERIES[qi]
                            );
                        }
                    }
                })
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_readers_match_sequential_baseline() {
    let db = SharedDatabase::new(build_db());
    let expected = baselines(&db);
    hammer(&db, &expected, None);
}

#[test]
fn concurrent_readers_match_baseline_under_forced_spilling() {
    let db = SharedDatabase::new(build_db());
    // Baseline computed unspilled; a 64-byte budget then forces every
    // thread's hash joins through the Grace spill path concurrently.
    let expected = baselines(&db);
    hammer(&db, &expected, Some(64));

    // Per-connection spill directories are named <pid>-<seq> off one
    // process-global counter, so concurrent joins never collide, and each
    // directory is removed when its join finishes: after the stress run
    // this process must leave nothing behind.
    let root = std::env::temp_dir().join("etable-spill");
    if let Ok(entries) = std::fs::read_dir(&root) {
        let pid_prefix = format!("{}-", std::process::id());
        let leftovers: Vec<_> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&pid_prefix))
            .collect();
        assert!(
            leftovers.is_empty(),
            "leftover spill dirs after concurrent run: {leftovers:?}"
        );
    }
}

#[test]
fn readers_see_only_published_epochs_during_writes() {
    let db = SharedDatabase::new(build_db());
    const NEW_ROWS: i64 = 40;

    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            for i in 0..NEW_ROWS {
                db.execute(&format!(
                    "INSERT INTO authors VALUES ({}, 'late author {i}', 2000)",
                    1000 + i
                ))
                .unwrap();
            }
        })
    };

    // Every count a reader observes must be a published prefix state
    // (150 + k for some whole statement k), and per-reader observations
    // are monotonic because each query pins a fresh, newer-or-equal epoch.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            thread::spawn(move || {
                let mut last = 0i64;
                for _ in 0..60 {
                    let r = db.execute("SELECT COUNT(*) FROM authors").unwrap();
                    let Value::Int(n) = r.rows[0][0] else {
                        panic!("COUNT(*) not an int");
                    };
                    assert!(
                        (150..=150 + NEW_ROWS).contains(&n),
                        "count {n} is not a published state"
                    );
                    assert!(n >= last, "count went backwards: {last} -> {n}");
                    last = n;
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for h in readers {
        h.join().unwrap();
    }
    let r = db.execute("SELECT COUNT(*) FROM authors").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(150 + NEW_ROWS));
    assert_eq!(db.epoch(), NEW_ROWS as u64);
}
