//! Property tests pinning the columnar `Table` to the semantics of the old
//! row-oriented storage: inserting rows and reading them back — through the
//! row facade, the cell accessor, and the bulk APIs — must reproduce the
//! inserted `Value`s exactly, including NULLs and interned text.

use etable_relational::schema::{Column, TableSchema};
use etable_relational::table::{Row, Table};
use etable_relational::value::{DataType, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A schema exercising every column type, with nullable columns of each.
fn wide_schema() -> TableSchema {
    TableSchema::new(
        "W",
        vec![
            Column::new("id", DataType::Int),
            Column::nullable("i", DataType::Int),
            Column::nullable("f", DataType::Float),
            Column::nullable("t", DataType::Text),
            Column::nullable("b", DataType::Bool),
        ],
    )
    .with_primary_key(&["id"])
}

fn random_cell(rng: &mut StdRng, ty: DataType) -> Value {
    if rng.gen_range(0..5) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(rng.gen_range(-1000..1000)),
        // Ints are sometimes written into the FLOAT column to exercise
        // widening; the read-back must still compare equal.
        DataType::Float => {
            if rng.gen_range(0..3) == 0 {
                Value::Int(rng.gen_range(-50..50))
            } else {
                Value::Float(rng.gen_range(-10.0..10.0))
            }
        }
        DataType::Text => {
            let len = rng.gen_range(0..8);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0..6u8)) as char)
                .collect();
            Value::text(s)
        }
        DataType::Bool => Value::Bool(rng.gen_range(0..2) == 1),
    }
}

fn random_rows(seed: u64, n: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = wide_schema();
    (0..n)
        .map(|id| {
            let mut row: Row = vec![Value::Int(id as i64)];
            row.extend(
                schema.columns[1..]
                    .iter()
                    .map(|c| random_cell(&mut rng, c.data_type)),
            );
            row
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// insert rows -> read cells: the columnar store must hand back values
    /// equal to what went in, row-wise and cell-wise.
    #[test]
    fn insert_then_read_round_trips(seed in 0u64..10_000, n in 1usize..60) {
        let rows = random_rows(seed, n);
        let mut table = Table::new(wide_schema()).unwrap();
        for r in &rows {
            table.insert(r.clone()).unwrap();
        }
        prop_assert_eq!(table.len(), rows.len());
        // Whole-table materialization.
        prop_assert_eq!(&table.to_rows(), &rows);
        // Row facade and cell accessor agree with the shadow copy.
        for (i, expected) in rows.iter().enumerate() {
            let got = table.row(i).unwrap();
            prop_assert_eq!(&got, expected, "row {}", i);
            for (c, cell) in expected.iter().enumerate() {
                prop_assert_eq!(&table.value(i, c), cell, "cell ({}, {})", i, c);
                prop_assert_eq!(table.column(c).is_null(i), cell.is_null());
            }
        }
        // Interned text reads back the identical string, not just an equal
        // symbol.
        for (i, expected) in rows.iter().enumerate() {
            if let Some(s) = expected[3].as_text() {
                prop_assert_eq!(table.value(i, 3).as_text(), Some(s));
            }
        }
    }

    /// Bulk columnar append is observationally identical to row-at-a-time
    /// insert.
    #[test]
    fn bulk_append_equals_row_inserts(seed in 0u64..10_000, n in 1usize..60) {
        let rows = random_rows(seed, n);
        let mut one_by_one = Table::new(wide_schema()).unwrap();
        for r in &rows {
            one_by_one.insert(r.clone()).unwrap();
        }
        let mut bulk = Table::new(wide_schema()).unwrap();
        bulk.append_rows(rows.clone()).unwrap();
        prop_assert_eq!(one_by_one.to_rows(), bulk.to_rows());
        // PK index agrees too.
        for r in &rows {
            prop_assert_eq!(
                one_by_one.pk_row_index(&[r[0]]),
                bulk.pk_row_index(&[r[0]])
            );
        }
    }

    /// distinct_values over the columnar store equals a shadow computation
    /// over the inserted rows (sorted by the total order, NULL first).
    #[test]
    fn distinct_values_match_shadow(seed in 0u64..10_000, n in 1usize..60) {
        let rows = random_rows(seed, n);
        let mut table = Table::new(wide_schema()).unwrap();
        table.append_rows(rows.clone()).unwrap();
        for c in 0..wide_schema().arity() {
            let mut shadow: Vec<Value> = rows.iter().map(|r| r[c]).collect();
            shadow.sort();
            shadow.dedup();
            prop_assert_eq!(table.distinct_values(c), shadow, "column {}", c);
        }
    }
}

/// The secondary index over an interned text column returns exactly the
/// scan results.
#[test]
fn text_secondary_index_matches_scan() {
    let rows = random_rows(7, 200);
    let mut table = Table::new(wide_schema()).unwrap();
    table.append_rows(rows.clone()).unwrap();
    for key in ["a", "ab", "abc", ""] {
        let key: Value = key.into();
        let via_index: Vec<usize> = table.lookup_indexed(3, &key).to_vec();
        let via_shadow: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r[3] == key)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(via_index, via_shadow, "key {key}");
    }
}

/// ORDER BY over interned text must be lexicographic even when symbols were
/// interned in an adversarial (reverse) order.
#[test]
fn sql_order_by_ignores_intern_order() {
    use etable_relational::database::Database;
    use etable_relational::sql::execute;

    // Intern the names in reverse lexicographic order first, so symbol ids
    // descend where the strings ascend.
    for s in ["zz-order", "mm-order", "aa-order"] {
        let _ = Value::text(s);
    }
    let mut db = Database::new();
    execute(&mut db, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)").unwrap();
    execute(
        &mut db,
        "INSERT INTO t VALUES (1, 'mm-order'), (2, 'zz-order'), (3, 'aa-order'), (4, NULL)",
    )
    .unwrap();
    let r = execute(&mut db, "SELECT name FROM t ORDER BY name").unwrap();
    let got: Vec<Value> = r.rows.iter().map(|row| row[0]).collect();
    assert_eq!(
        got,
        vec![
            Value::Null,
            Value::text("aa-order"),
            Value::text("mm-order"),
            Value::text("zz-order"),
        ]
    );
    // And text GROUP BY keys group by content, producing one group per
    // distinct string.
    execute(&mut db, "INSERT INTO t VALUES (5, 'aa-order')").unwrap();
    let g = execute(
        &mut db,
        "SELECT name, COUNT(*) AS n FROM t GROUP BY name ORDER BY n DESC, name",
    )
    .unwrap();
    assert_eq!(g.rows[0][0], Value::text("aa-order"));
    assert_eq!(g.rows[0][1], Value::Int(2));
}
