//! Differential testing of the SQL planner: randomly generated queries are
//! executed by the optimizing executor (predicate pushdown + greedy hash
//! joins) and by the naive cross-product evaluator; results must be
//! identical bags.

use etable_relational::database::Database;
use etable_relational::sql::naive::execute_query_naive;
use etable_relational::sql::{execute, executor::execute_query, parse_statement, Statement};
use etable_relational::value::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// A three-table star schema with moderately skewed data.
fn fixture() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut db = Database::new();
        for stmt in [
            "CREATE TABLE dim (id INT PRIMARY KEY, grp INT NOT NULL, tag TEXT NOT NULL)",
            "CREATE TABLE fact (id INT PRIMARY KEY, dim_id INT REFERENCES dim(id), \
             val INT NOT NULL, note TEXT)",
            "CREATE TABLE link (fact_id INT, dim_id INT, PRIMARY KEY (fact_id, dim_id), \
             FOREIGN KEY (fact_id) REFERENCES fact (id), \
             FOREIGN KEY (dim_id) REFERENCES dim (id))",
        ] {
            execute(&mut db, stmt).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(17);
        for id in 1..=20i64 {
            let grp = rng.gen_range(0..4);
            let tag = ["red", "green", "blue"][rng.gen_range(0..3)];
            db.insert("dim", vec![id.into(), grp.into(), tag.into()])
                .unwrap();
        }
        for id in 1..=60i64 {
            let dim = rng.gen_range(1..=20i64);
            let val = rng.gen_range(0..100i64);
            let note: Value = if rng.gen_range(0..5) == 0 {
                Value::Null
            } else {
                ["x", "xy", "yz", "zz"][rng.gen_range(0..4)].into()
            };
            db.insert("fact", vec![id.into(), dim.into(), val.into(), note])
                .unwrap();
        }
        let mut pairs = std::collections::BTreeSet::new();
        while pairs.len() < 50 {
            pairs.insert((rng.gen_range(1..=60i64), rng.gen_range(1..=20i64)));
        }
        for (f, d) in pairs {
            db.insert("link", vec![f.into(), d.into()]).unwrap();
        }
        db
    })
}

/// Builds a random supported SELECT over the fixture schema.
fn random_sql(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    // FROM shape: 1..3 tables with join conditions keeping results bounded.
    let shape = rng.gen_range(0..4);
    let (from, joins): (&str, Vec<String>) = match shape {
        0 => ("dim d", vec![]),
        1 => ("fact f", vec![]),
        2 => ("fact f, dim d", vec!["f.dim_id = d.id".to_string()]),
        _ => (
            "fact f, link l, dim d",
            vec![
                "l.fact_id = f.id".to_string(),
                "l.dim_id = d.id".to_string(),
            ],
        ),
    };
    let has_dim = shape != 1;
    let has_fact = shape != 0;

    // Random predicates.
    let mut preds = joins;
    for _ in 0..rng.gen_range(0..3) {
        let p = match rng.gen_range(0..6) {
            0 if has_fact => format!("f.val >= {}", rng.gen_range(0..100)),
            1 if has_fact => format!("f.val < {}", rng.gen_range(0..100)),
            2 if has_dim => format!("d.grp = {}", rng.gen_range(0..4)),
            3 if has_dim => format!("d.tag LIKE '%{}%'", ["r", "e", "u"][rng.gen_range(0..3)]),
            4 if has_fact => "f.note IS NULL".to_string(),
            _ if has_fact => format!(
                "f.val IN ({}, {})",
                rng.gen_range(0..50),
                rng.gen_range(50..100)
            ),
            _ => format!("d.grp <> {}", rng.gen_range(0..4)),
        };
        preds.push(p);
    }
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };

    // Grouped or plain projection; ORDER BY makes comparison deterministic
    // after sorting rows ourselves, so it is optional here.
    if rng.gen_range(0..3) == 0 && has_dim {
        let having = if rng.gen_range(0..2) == 0 {
            " HAVING COUNT(*) >= 1".to_string()
        } else {
            String::new()
        };
        format!(
            "SELECT d.grp, COUNT(*) AS n, MIN(d.id), MAX(d.id) FROM {from}{where_clause} \
             GROUP BY d.grp{having}"
        )
    } else {
        let distinct = if rng.gen_range(0..3) == 0 {
            "DISTINCT "
        } else {
            ""
        };
        let cols = match (has_fact, has_dim) {
            (true, true) => "f.id, f.val, d.tag",
            (true, false) => "f.id, f.val",
            _ => "d.id, d.tag",
        };
        format!("SELECT {distinct}{cols} FROM {from}{where_clause}")
    }
}

fn run_both(sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let db = fixture();
    let q = match parse_statement(sql).unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let mut planned = execute_query(db, &q).unwrap().rows;
    let mut naive = execute_query_naive(db, &q).unwrap().rows;
    planned.sort();
    naive.sort();
    (planned, naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planner_agrees_with_naive_evaluator(seed in 0u64..100_000) {
        let sql = random_sql(seed);
        let (planned, naive) = run_both(&sql);
        prop_assert_eq!(planned, naive, "divergence on: {}", sql);
    }
}

#[test]
fn planner_agrees_on_handpicked_corner_cases() {
    for sql in [
        // Empty result propagation.
        "SELECT f.id, f.val FROM fact f WHERE f.val > 1000",
        // NULL-heavy predicate.
        "SELECT f.id, f.val FROM fact f WHERE f.note IS NULL AND f.val >= 0",
        // Cross join without condition (small tables only).
        "SELECT d.id, d.tag FROM dim d, dim e WHERE d.grp = 1 AND e.grp = 2",
        // Aggregate over empty input.
        "SELECT d.grp, COUNT(*) AS n FROM dim d WHERE d.grp > 99 GROUP BY d.grp",
        // DISTINCT shrinking a join.
        "SELECT DISTINCT d.tag FROM fact f, dim d WHERE f.dim_id = d.id",
    ] {
        let (planned, naive) = run_both(sql);
        assert_eq!(planned, naive, "divergence on: {sql}");
    }
}

#[test]
fn hash_join_on_interned_text_keys_agrees_with_naive() {
    // Joins keyed on TEXT columns exercise the symbol-id hash path of the
    // interned executor; the naive cross-product oracle and a hand-computed
    // expectation pin the semantics. Tags are interned in an order unrelated
    // to the data so symbol ids and join keys cannot accidentally align.
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE l (id INT PRIMARY KEY, tag TEXT)",
        "CREATE TABLE r (id INT PRIMARY KEY, tag TEXT)",
        "INSERT INTO l VALUES (1, 'zeta'), (2, 'alpha'), (3, 'alpha'), (4, NULL), (5, 'mu')",
        "INSERT INTO r VALUES (1, 'alpha'), (2, 'mu'), (3, 'mu'), (4, NULL), (5, 'omega')",
    ] {
        execute(&mut db, stmt).unwrap();
    }
    let sql = "SELECT l.id, r.id, l.tag FROM l, r WHERE l.tag = r.tag";
    let q = match parse_statement(sql).unwrap() {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let mut planned = execute_query(&db, &q).unwrap().rows;
    let mut naive = execute_query_naive(&db, &q).unwrap().rows;
    planned.sort();
    naive.sort();
    assert_eq!(planned, naive);
    // 'alpha' x 2 on the left matches 1 on the right; 'mu' x 1 matches 2;
    // NULL never joins: 2*1 + 1*2 = 4 rows.
    assert_eq!(planned.len(), 4);
    assert!(planned.iter().all(|r| !r[2].is_null()));
}

#[test]
fn cyclic_join_graph_is_handled() {
    // fact-link-dim plus a redundant fact.dim_id = dim.id edge forms a
    // cycle; the greedy planner applies the extra edge as a filter.
    let sql = "SELECT f.id, f.val, d.tag FROM fact f, link l, dim d \
               WHERE l.fact_id = f.id AND l.dim_id = d.id AND f.dim_id = d.id";
    let (planned, naive) = run_both(sql);
    assert_eq!(planned, naive);
}
