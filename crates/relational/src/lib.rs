//! # etable-relational
//!
//! An in-memory relational database engine: the substrate underneath the
//! ETable reproduction (the original system used PostgreSQL; see DESIGN.md
//! for the substitution rationale).
//!
//! Provides:
//!
//! * typed scalar [`value::Value`]s (text interned through [`intern::Sym`])
//!   and schemas with primary/foreign keys,
//! * constraint-checked columnar storage ([`table::ColumnData`]) with hash
//!   indexes and a row-facade API,
//! * a relational algebra ([`algebra::Relation`]) with selection, projection,
//!   hash/nested-loop joins, grouping and sorting,
//! * columnar intermediate relations ([`colrel::ColRelation`]): selection
//!   vectors over base tables with build/probe hash joins, which the SQL
//!   executor carries from the scan to the final projection without
//!   materializing intermediate rows,
//! * a small SQL dialect ([`sql`]) with a greedy hash-join planner.
//!
//! ```
//! use etable_relational::database::Database;
//! use etable_relational::sql::execute;
//!
//! let mut db = Database::new();
//! execute(&mut db, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)").unwrap();
//! execute(&mut db, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! let r = execute(&mut db, "SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(r.rows[0][0], "b".into());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod colrel;
pub mod csv;
pub mod database;
pub mod exec;
pub mod expr;
pub mod intern;
pub mod scan;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod table;
pub mod value;

use std::fmt;

/// Errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Schema definition problem.
    Schema(String),
    /// Constraint violation (PK, FK, type, nullability).
    Constraint(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// Expression evaluation problem.
    Eval(String),
    /// SQL parse error.
    Parse(String),
    /// Static semantic analysis rejection (see [`sql::analyze`]).
    Analyze(String),
    /// On-disk storage problem: truncated or corrupt file, bad magic,
    /// unsupported format version, checksum mismatch (see [`storage`]).
    /// The message always names the offending path and segment.
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Error::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Parse(m) => write!(f, "SQL parse error: {m}"),
            Error::Analyze(m) => write!(f, "analysis error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, Error>;
