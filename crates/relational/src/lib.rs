//! # etable-relational
//!
//! An in-memory relational database engine: the substrate underneath the
//! ETable reproduction (the original system used PostgreSQL; see DESIGN.md
//! for the substitution rationale).
//!
//! Provides:
//!
//! * typed scalar [`value::Value`]s (text interned through [`intern::Sym`])
//!   and schemas with primary/foreign keys,
//! * constraint-checked columnar storage ([`table::ColumnData`]) with hash
//!   indexes and a row-facade API,
//! * a relational algebra ([`algebra::Relation`]) with selection, projection,
//!   hash/nested-loop joins, grouping and sorting,
//! * columnar intermediate relations ([`colrel::ColRelation`]): selection
//!   vectors over base tables with build/probe hash joins, which the SQL
//!   executor carries from the scan to the final projection without
//!   materializing intermediate rows,
//! * a small SQL dialect ([`sql`]) with a greedy hash-join planner.
//!
//! ```
//! use etable_relational::database::Database;
//! use etable_relational::sql::execute;
//!
//! let mut db = Database::new();
//! execute(&mut db, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)").unwrap();
//! execute(&mut db, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! let r = execute(&mut db, "SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(r.rows[0][0], "b".into());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod colrel;
pub mod csv;
pub mod database;
pub mod exec;
pub mod expr;
pub mod intern;
pub mod scan;
pub mod schema;
pub mod shared;
pub mod sql;
pub mod storage;
pub mod table;
pub mod value;

use std::fmt;

/// Errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Schema definition problem.
    Schema(String),
    /// Constraint violation (PK, FK, type, nullability).
    Constraint(String),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// Expression evaluation problem.
    Eval(String),
    /// SQL parse error.
    Parse(String),
    /// Static semantic analysis rejection (see [`sql::analyze`]).
    Analyze(String),
    /// On-disk storage problem: truncated or corrupt file, bad magic,
    /// unsupported format version, checksum mismatch (see [`storage`]).
    /// The message always names the offending path and segment.
    Storage(String),
    /// Wire-protocol problem: malformed or oversized frame, bad magic or
    /// protocol version, frame checksum mismatch, unknown message type.
    /// Produced by the `etable-server` framing layer, which shares this
    /// error type so protocol failures travel the same `Result` rails as
    /// engine errors.
    Protocol(String),
}

/// Stable numeric codes for every [`Error`] class, used by the wire
/// protocol and embedders that need machine-readable errors.
///
/// The numbers are **frozen**: `1xx` schema/catalog and constraint
/// errors, `2xx` evaluation, `3xx` parse/analyze, `4xx` storage, `5xx`
/// protocol. Never renumber or reuse a code — append new ones. The
/// `error_codes` integration test pins every assignment and the
/// `u16 -> code -> u16` round trip, so a silent renumbering cannot
/// survive CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Schema definition problem ([`Error::Schema`]).
    Schema = 100,
    /// Constraint violation ([`Error::Constraint`]).
    Constraint = 101,
    /// Unknown table ([`Error::UnknownTable`]).
    UnknownTable = 102,
    /// Unknown column ([`Error::UnknownColumn`]).
    UnknownColumn = 103,
    /// Expression evaluation problem ([`Error::Eval`]).
    Eval = 200,
    /// SQL parse error ([`Error::Parse`]).
    Parse = 300,
    /// Static semantic analysis rejection ([`Error::Analyze`]).
    Analyze = 301,
    /// On-disk storage problem ([`Error::Storage`]).
    Storage = 400,
    /// Wire-protocol problem ([`Error::Protocol`]).
    Protocol = 500,
}

impl ErrorCode {
    /// Every code, in ascending numeric order (handy for pinning tests).
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::Schema,
        ErrorCode::Constraint,
        ErrorCode::UnknownTable,
        ErrorCode::UnknownColumn,
        ErrorCode::Eval,
        ErrorCode::Parse,
        ErrorCode::Analyze,
        ErrorCode::Storage,
        ErrorCode::Protocol,
    ];

    /// The stable numeric value carried on the wire.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire value back to its code; `None` for unassigned
    /// numbers (a forward-compatibility hole, not an error class).
    pub fn from_u16(n: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_u16() == n)
    }
}

impl Error {
    /// The stable numeric code of this error's class.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Schema(_) => ErrorCode::Schema,
            Error::Constraint(_) => ErrorCode::Constraint,
            Error::UnknownTable(_) => ErrorCode::UnknownTable,
            Error::UnknownColumn(_) => ErrorCode::UnknownColumn,
            Error::Eval(_) => ErrorCode::Eval,
            Error::Parse(_) => ErrorCode::Parse,
            Error::Analyze(_) => ErrorCode::Analyze,
            Error::Storage(_) => ErrorCode::Storage,
            Error::Protocol(_) => ErrorCode::Protocol,
        }
    }

    /// The class-free message payload — what goes on the wire next to
    /// the numeric code, so rehydration via [`Error::from_code`] does
    /// not stack a second class prefix onto the rendered message.
    pub fn message(&self) -> &str {
        match self {
            Error::Schema(m)
            | Error::Constraint(m)
            | Error::UnknownTable(m)
            | Error::UnknownColumn(m)
            | Error::Eval(m)
            | Error::Parse(m)
            | Error::Analyze(m)
            | Error::Storage(m)
            | Error::Protocol(m) => m,
        }
    }

    /// Rebuilds an error of the class named by `code` (the inverse of
    /// [`Error::code`], used by wire clients to rehydrate server errors).
    pub fn from_code(code: ErrorCode, message: impl Into<String>) -> Error {
        let m = message.into();
        match code {
            ErrorCode::Schema => Error::Schema(m),
            ErrorCode::Constraint => Error::Constraint(m),
            ErrorCode::UnknownTable => Error::UnknownTable(m),
            ErrorCode::UnknownColumn => Error::UnknownColumn(m),
            ErrorCode::Eval => Error::Eval(m),
            ErrorCode::Parse => Error::Parse(m),
            ErrorCode::Analyze => Error::Analyze(m),
            ErrorCode::Storage => Error::Storage(m),
            ErrorCode::Protocol => Error::Protocol(m),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Error::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Parse(m) => write!(f, "SQL parse error: {m}"),
            Error::Analyze(m) => write!(f, "analysis error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, Error>;
