//! Relational schema objects: columns, tables, keys, and the catalog.
//!
//! The typed-graph-model translation (paper Appendix A) classifies relations
//! by inspecting primary keys and foreign keys, so the schema layer records
//! both explicitly.

use crate::value::DataType;
use crate::{Error, Result};
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Column {
    /// Creates a non-nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// Creates a nullable column.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// A foreign-key constraint: `columns` of the owning table reference the
/// primary key of `referenced_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column names in the owning table.
    pub columns: Vec<String>,
    /// Name of the referenced table.
    pub referenced_table: String,
    /// Referenced (primary-key) column names.
    pub referenced_columns: Vec<String>,
}

impl ForeignKey {
    /// Single-column foreign key, the common case in the paper's schema.
    pub fn single(
        column: impl Into<String>,
        referenced_table: impl Into<String>,
        referenced_column: impl Into<String>,
    ) -> Self {
        ForeignKey {
            columns: vec![column.into()],
            referenced_table: referenced_table.into(),
            referenced_columns: vec![referenced_column.into()],
        }
    }
}

/// Schema of one table: ordered columns plus key constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, unique in the catalog.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Primary-key column names (possibly composite, possibly empty).
    pub primary_key: Vec<String>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates a schema with no keys; use the builder methods to add them.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Sets the primary key (builder style).
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Adds a foreign key (builder style).
    pub fn with_foreign_key(mut self, fk: ForeignKey) -> Self {
        self.foreign_keys.push(fk);
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Positions of the primary-key columns.
    ///
    /// Errors if a PK column name does not exist (schema bug).
    pub fn primary_key_indices(&self) -> Result<Vec<usize>> {
        self.primary_key
            .iter()
            .map(|name| {
                self.column_index(name).ok_or_else(|| {
                    Error::Schema(format!(
                        "primary key column `{name}` not found in table `{}`",
                        self.name
                    ))
                })
            })
            .collect()
    }

    /// Whether `col` participates in the primary key.
    pub fn is_pk_column(&self, col: &str) -> bool {
        self.primary_key.iter().any(|c| c == col)
    }

    /// Whether `col` participates in any foreign key.
    pub fn is_fk_column(&self, col: &str) -> bool {
        self.foreign_keys
            .iter()
            .any(|fk| fk.columns.iter().any(|c| c == col))
    }

    /// The foreign key whose (single) referencing column is `col`, if any.
    pub fn fk_on_column(&self, col: &str) -> Option<&ForeignKey> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.columns.len() == 1 && fk.columns[0] == col)
    }

    /// Validates internal consistency: unique column names, existing PK/FK
    /// columns, non-nullable PK columns.
    pub fn validate(&self) -> Result<()> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|d| d.name == c.name) {
                return Err(Error::Schema(format!(
                    "duplicate column `{}` in table `{}`",
                    c.name, self.name
                )));
            }
        }
        for pk in &self.primary_key {
            let col = self.column(pk).ok_or_else(|| {
                Error::Schema(format!(
                    "primary key column `{pk}` missing in table `{}`",
                    self.name
                ))
            })?;
            if col.nullable {
                return Err(Error::Schema(format!(
                    "primary key column `{pk}` of `{}` must not be nullable",
                    self.name
                )));
            }
        }
        for fk in &self.foreign_keys {
            if fk.columns.len() != fk.referenced_columns.len() {
                return Err(Error::Schema(format!(
                    "foreign key arity mismatch in table `{}`",
                    self.name
                )));
            }
            for c in &fk.columns {
                if self.column(c).is_none() {
                    return Err(Error::Schema(format!(
                        "foreign key column `{c}` missing in table `{}`",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if self.is_pk_column(&c.name) {
                write!(f, " PK")?;
            }
            if let Some(fk) = self.fk_on_column(&c.name) {
                write!(f, " -> {}", fk.referenced_table)?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn papers() -> TableSchema {
        TableSchema::new(
            "Papers",
            vec![
                Column::new("id", DataType::Int),
                Column::new("conference_id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["id"])
        .with_foreign_key(ForeignKey::single("conference_id", "Conferences", "id"))
    }

    #[test]
    fn column_lookup() {
        let s = papers();
        assert_eq!(s.column_index("title"), Some(2));
        assert!(s.column("nope").is_none());
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn key_predicates() {
        let s = papers();
        assert!(s.is_pk_column("id"));
        assert!(!s.is_pk_column("title"));
        assert!(s.is_fk_column("conference_id"));
        assert_eq!(
            s.fk_on_column("conference_id").unwrap().referenced_table,
            "Conferences"
        );
    }

    #[test]
    fn validate_catches_duplicate_columns() {
        let s = TableSchema::new(
            "T",
            vec![
                Column::new("a", DataType::Int),
                Column::new("a", DataType::Int),
            ],
        );
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_nullable_pk() {
        let s = TableSchema::new("T", vec![Column::nullable("a", DataType::Int)])
            .with_primary_key(&["a"]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_missing_fk_column() {
        let s = TableSchema::new("T", vec![Column::new("a", DataType::Int)])
            .with_foreign_key(ForeignKey::single("b", "U", "id"));
        assert!(s.validate().is_err());
    }

    #[test]
    fn pk_indices() {
        let s = papers();
        assert_eq!(s.primary_key_indices().unwrap(), vec![0]);
    }

    #[test]
    fn display_shows_keys() {
        let out = papers().to_string();
        assert!(out.contains("id INT PK"));
        assert!(out.contains("conference_id INT -> Conferences"));
    }
}
