//! The database: a catalog of tables plus cross-table integrity checks.

use crate::schema::TableSchema;
use crate::table::{Row, Table};
use crate::value::Value;
use crate::{Error, Result};
use std::collections::BTreeMap;

/// An in-memory relational database.
///
/// Tables are kept in a `BTreeMap` so that iteration order (and therefore all
/// derived output, e.g. the TGM translation) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a database from already-opened tables (the on-disk
    /// reader's path; FK validity was checked when the data was saved).
    pub(crate) fn from_tables(tables: BTreeMap<String, Table>) -> Self {
        Database { tables }
    }

    /// Saves the database under `dir` in the binary table format
    /// ([`crate::storage`]): one checksummed table file per table plus a
    /// manifest. Deterministic — saving the same data twice writes
    /// byte-identical files.
    pub fn save(&self, dir: &std::path::Path) -> Result<()> {
        crate::storage::save_database(self, dir)
    }

    /// Opens a database saved by [`Database::save`]. Every file checksum
    /// is verified now (corruption surfaces here as [`Error::Storage`]);
    /// column data pages in lazily on first touch.
    pub fn open(dir: &std::path::Path) -> Result<Self> {
        crate::storage::open_database(dir)
    }

    /// Creates a table from `schema`.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(Error::Schema(format!(
                "table `{}` already exists",
                schema.name
            )));
        }
        let name = schema.name.clone();
        self.tables.insert(name, Table::new(schema)?);
        Ok(())
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// All table names in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// All tables in deterministic order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Inserts a row with foreign-key enforcement.
    ///
    /// For every FK of the target table, the referenced key must exist in the
    /// referenced table (NULL FK values are allowed and mean "no reference").
    pub fn insert(&mut self, table: &str, row: Row) -> Result<usize> {
        // Check FKs before mutating.
        let schema = self.table(table)?.schema().clone();
        for fk in &schema.foreign_keys {
            let referencing: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .map(|i| row.get(i).copied().unwrap_or(Value::Null))
                        .ok_or_else(|| {
                            Error::Schema(format!("FK column `{c}` missing in `{table}`"))
                        })
                })
                .collect::<Result<_>>()?;
            if referencing.iter().any(Value::is_null) {
                continue;
            }
            let target = self.table(&fk.referenced_table)?;
            // FK must reference the PK of the target table.
            if target.schema().primary_key != fk.referenced_columns {
                // Referencing a non-PK key: fall back to a scan.
                let idxs: Vec<usize> = fk
                    .referenced_columns
                    .iter()
                    .map(|c| {
                        target.schema().column_index(c).ok_or_else(|| {
                            Error::Schema(format!(
                                "FK referenced column `{c}` missing in `{}`",
                                fk.referenced_table
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                let found = (0..target.len()).any(|r| {
                    idxs.iter()
                        .zip(&referencing)
                        .all(|(&i, v)| target.value(r, i).sql_eq(v) == Some(true))
                });
                if !found {
                    return Err(Error::Constraint(format!(
                        "FK violation: `{table}` -> `{}` key {referencing:?} not found",
                        fk.referenced_table
                    )));
                }
            } else if target.get_by_pk(&referencing).is_none() {
                return Err(Error::Constraint(format!(
                    "FK violation: `{table}` -> `{}` key {referencing:?} not found",
                    fk.referenced_table
                )));
            }
        }
        self.table_mut(table)?.insert(row)
    }

    /// Inserts a row without foreign-key checks (bulk loading in dependency
    /// order is validated separately by [`Database::check_integrity`]).
    pub fn insert_unchecked(&mut self, table: &str, row: Row) -> Result<usize> {
        self.table_mut(table)?.insert(row)
    }

    /// Bulk columnar append without foreign-key checks: the batch is pushed
    /// column-by-column with a single index invalidation (see
    /// [`crate::table::Table::append_rows`]). Returns how many rows were
    /// appended. The generator's bulk-load path; pair with
    /// [`Database::check_integrity`] after loading in dependency order.
    pub fn append_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<usize> {
        self.table_mut(table)?.append_rows(rows)
    }

    /// Verifies all foreign keys in the whole database.
    pub fn check_integrity(&self) -> Result<()> {
        for table in self.tables.values() {
            let schema = table.schema();
            for fk in &schema.foreign_keys {
                let src_idx: Vec<usize> = fk
                    .columns
                    .iter()
                    .map(|c| schema.column_index(c).expect("validated schema"))
                    .collect();
                let target = self.table(&fk.referenced_table)?;
                let uses_pk = target.schema().primary_key == fk.referenced_columns;
                let tgt_idx: Vec<usize> = fk
                    .referenced_columns
                    .iter()
                    .map(|c| {
                        target.schema().column_index(c).ok_or_else(|| {
                            Error::Schema(format!(
                                "FK referenced column `{c}` missing in `{}`",
                                fk.referenced_table
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                let src_cols: Vec<_> = src_idx.iter().map(|&i| table.column(i)).collect();
                for row in 0..table.len() {
                    let key: Vec<Value> = src_cols.iter().map(|c| c.get(row)).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    let ok = if uses_pk {
                        target.pk_row_index(&key).is_some()
                    } else {
                        (0..target.len()).any(|r| {
                            tgt_idx
                                .iter()
                                .zip(&key)
                                .all(|(&i, v)| target.value(r, i).sql_eq(v) == Some(true))
                        })
                    };
                    if !ok {
                        return Err(Error::Constraint(format!(
                            "integrity: `{}` -> `{}` dangling key {key:?}",
                            schema.name, fk.referenced_table
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total row count across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Deletes rows of `table` matching `pred`, enforcing that no other
    /// table still references the deleted keys (RESTRICT semantics).
    pub fn delete_where(&mut self, table: &str, pred: &crate::expr::Expr) -> Result<usize> {
        // Collect the PK values about to disappear.
        let target = self.table(table)?;
        let pk_idx = target.schema().primary_key_indices()?;
        let mut doomed: Vec<Vec<Value>> = Vec::new();
        let mut buf = Row::new();
        for row in 0..target.len() {
            target.read_row(row, &mut buf);
            if pred.matches(&buf)? {
                doomed.push(pk_idx.iter().map(|&i| buf[i]).collect());
            }
        }
        if doomed.is_empty() {
            return Ok(0);
        }
        // RESTRICT: scan referencing tables.
        for other in self.tables.values() {
            for fk in &other.schema().foreign_keys {
                if fk.referenced_table != table {
                    continue;
                }
                let ref_idx: Vec<usize> = fk
                    .columns
                    .iter()
                    .map(|c| other.schema().column_index(c).expect("validated schema"))
                    .collect();
                // FK must target the PK for this check to apply positionally.
                let ref_cols: Vec<_> = ref_idx.iter().map(|&i| other.column(i)).collect();
                for row in 0..other.len() {
                    let key: Vec<Value> = ref_cols.iter().map(|c| c.get(row)).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if doomed.contains(&key) {
                        return Err(Error::Constraint(format!(
                            "cannot delete from `{table}`: key {key:?} is referenced by `{}`",
                            other.schema().name
                        )));
                    }
                }
            }
        }
        self.table_mut(table)?.delete_where(pred)
    }

    /// Updates rows of `table` matching `pred`; `sets` pairs column names
    /// with new values. The whole-database integrity check runs afterwards
    /// and the update is rolled back if it fails.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: &crate::expr::Expr,
        sets: &[(String, Value)],
    ) -> Result<usize> {
        let schema = self.table(table)?.schema().clone();
        let resolved: Vec<(usize, Value)> = sets
            .iter()
            .map(|(name, v)| {
                schema
                    .column_index(name)
                    .map(|i| (i, *v))
                    .ok_or_else(|| Error::UnknownColumn(name.clone()))
            })
            .collect::<Result<_>>()?;
        let backup = self.table(table)?.clone();
        let changed = self.table_mut(table)?.update_where(pred, &resolved)?;
        if changed > 0 {
            // Updates may break FKs in either direction; verify globally.
            if let Err(e) = self.check_integrity() {
                *self.table_mut(table)? = backup;
                return Err(e);
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ForeignKey, TableSchema};
    use crate::value::DataType;

    fn two_table_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "Conferences",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("acronym", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Papers",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("conference_id", DataType::Int),
                    Column::new("title", DataType::Text),
                ],
            )
            .with_primary_key(&["id"])
            .with_foreign_key(ForeignKey::single("conference_id", "Conferences", "id")),
        )
        .unwrap();
        db
    }

    #[test]
    fn fk_enforced_on_insert() {
        let mut db = two_table_db();
        db.insert("Conferences", vec![1.into(), "SIGMOD".into()])
            .unwrap();
        db.insert("Papers", vec![10.into(), 1.into(), "P".into()])
            .unwrap();
        let err = db.insert("Papers", vec![11.into(), 99.into(), "Q".into()]);
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = two_table_db();
        let dup = TableSchema::new("Papers", vec![Column::new("id", DataType::Int)]);
        assert!(db.create_table(dup).is_err());
    }

    #[test]
    fn integrity_check_finds_dangling_fk() {
        let mut db = two_table_db();
        db.insert_unchecked("Papers", vec![10.into(), 7.into(), "P".into()])
            .unwrap();
        assert!(db.check_integrity().is_err());
        db.insert_unchecked("Conferences", vec![7.into(), "KDD".into()])
            .unwrap();
        assert!(db.check_integrity().is_ok());
    }

    #[test]
    fn table_names_sorted() {
        let db = two_table_db();
        assert_eq!(db.table_names(), vec!["Conferences", "Papers"]);
    }

    #[test]
    fn unknown_table_error() {
        let db = two_table_db();
        assert!(db.table("Nope").is_err());
    }

    #[test]
    fn total_rows_counts_everything() {
        let mut db = two_table_db();
        db.insert("Conferences", vec![1.into(), "CHI".into()])
            .unwrap();
        db.insert("Papers", vec![2.into(), 1.into(), "X".into()])
            .unwrap();
        assert_eq!(db.total_rows(), 2);
    }
}
