//! Typed scalar values stored in relational cells.
//!
//! The paper's academic database (Figure 3) only needs integers and text, but
//! the engine supports the usual scalar types so that arbitrary schemas can be
//! translated into the typed graph model.
//!
//! Text values are interned ([`crate::intern`]): `Value::Text` holds a
//! compact [`Sym`], which makes `Value` a 16-byte `Copy` type. All ordering
//! over text resolves through the arena, so sort/group results are byte-wise
//! identical to a `String`-backed engine; only equality and hashing take the
//! symbol-id fast path.

use crate::intern::Sym;
use std::cmp::Ordering;
use std::fmt;

/// 2^63 as an `f64` (exactly representable). Note `i64::MAX as f64` rounds
/// *up* to this value, so int/float boundary checks must compare against
/// 2^63 with a strict `<`, never against `i64::MAX as f64` with `<=`.
const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;

/// Compares an `i64` against an `f64` exactly, never widening the int to
/// `f64`: `a as f64` rounds for |a| > 2^53, which made distinct keys such
/// as `i64::MAX - 1` and `9223372036854775808.0` compare equal while
/// hashing differently. Floats at or beyond ±2^63 are strictly outside the
/// `i64` range; below that, `b.trunc()` converts to `i64` without loss and
/// any fractional remainder breaks the tie in `b`'s favor. `None` iff `b`
/// is NaN.
fn int_float_cmp(a: i64, b: f64) -> Option<Ordering> {
    if b.is_nan() {
        return None;
    }
    if b >= TWO_POW_63 {
        return Some(Ordering::Less);
    }
    if b < -TWO_POW_63 {
        return Some(Ordering::Greater);
    }
    let t = b.trunc();
    let ti = t as i64; // exact: t is integral and in [-2^63, 2^63)
    Some(match a.cmp(&ti) {
        Ordering::Equal if b == t => Ordering::Equal,
        // a == trunc(b) but b has a fractional part: trunc moves toward
        // zero, so b sits strictly above t when positive, below when
        // negative.
        Ordering::Equal => {
            if b > t {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        o => o,
    })
}

/// [`int_float_cmp`] extended to a total order for sort/group keys: NaN
/// sorts the way `f64::total_cmp` places it relative to every finite
/// value — negative NaNs below all ints, positive NaNs above.
fn int_float_total_cmp(a: i64, b: f64) -> Ordering {
    match int_float_cmp(a, b) {
        Some(o) => o,
        None if b.is_sign_negative() => Ordering::Greater,
        None => Ordering::Less,
    }
}

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A single scalar value in a cell.
///
/// `Null` is a member of every domain, as in SQL. Comparison semantics follow
/// SQL three-valued logic at the expression layer ([`crate::expr`]); `Value`
/// itself provides a *total* order (with `Null` first) so values can be used
/// as sort and grouping keys.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Interned text value.
    Text(Sym),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Builds a text value, interning the string.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Sym::intern(s.as_ref()))
    }

    /// Returns the type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `ty`.
    ///
    /// `Null` fits everywhere; an `Int` may be widened into a `Float` column.
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Interprets the value as an integer when possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interprets the value as a float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interprets the value as text.
    pub fn as_text(&self) -> Option<&'static str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` when either side is `Null` or the
    /// types are incomparable, mirroring `UNKNOWN` in three-valued logic.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => int_float_cmp(*a, *b),
            (Value::Float(a), Value::Int(b)) => int_float_cmp(*b, *a).map(Ordering::reverse),
            (Value::Text(a), Value::Text(b)) => Some(Sym::cmp_str(*a, *b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality: `None` (UNKNOWN) when either side is `Null`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        // Text fast path: interned symbols are equal iff the strings are.
        if let (Value::Text(a), Value::Text(b)) = (self, other) {
            return Some(a == b);
        }
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering used for ORDER BY and grouping keys.
    ///
    /// `Null` sorts before everything; values of different types sort by a
    /// fixed type rank (numbers < text < bool) so the order is total. Text
    /// compares by string content (never by symbol id).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            // `-0.0` and `0.0` must be one key: both equal `Int(0)` under
            // the exact cross-type comparison below, so keeping
            // `f64::total_cmp`'s `-0.0 < 0.0` split would break Eq
            // transitivity (and diverge from `sql_eq`, which the naive
            // oracle uses for join edges).
            (Value::Float(a), Value::Float(b)) => {
                if a == b {
                    Ordering::Equal
                } else {
                    a.total_cmp(b)
                }
            }
            (Value::Int(a), Value::Float(b)) => int_float_total_cmp(*a, *b),
            (Value::Float(a), Value::Int(b)) => int_float_total_cmp(*b, *a).reverse(),
            (Value::Text(a), Value::Text(b)) => Sym::cmp_str(*a, *b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// A [`Value`] decorated with its dictionary rank, for sort/dedup/min-max
/// loops.
///
/// Comparing interned text through [`Value::total_cmp`] takes a read lock
/// on the global arena and walks both strings per comparison; an
/// `O(n log n)` sort over a text column would re-enter the lock on every
/// probe. `SortCell` looks the rank up once per cell from a
/// [`RankMap`](crate::intern::RankMap) snapshot, so the comparator compares
/// two `u32`s and never touches the interner (there is no string-resolving
/// fallback path). The order is exactly [`Value::total_cmp`].
#[derive(Debug, Clone, Copy)]
pub struct SortCell {
    value: Value,
    /// Dictionary rank for text cells; 0 (unused) for every other type.
    rank: u32,
}

impl SortCell {
    /// Decorates a value with its dictionary rank from `ranks`.
    ///
    /// # Panics
    /// If the value is text interned after `ranks` was snapshotted (see
    /// [`RankMap::rank`](crate::intern::RankMap::rank)).
    pub fn new(value: Value, ranks: &crate::intern::RankMap) -> Self {
        let rank = match value {
            Value::Text(s) => ranks.rank(s),
            _ => 0,
        };
        SortCell { value, rank }
    }

    /// The undecorated value.
    pub fn value(self) -> Value {
        self.value
    }

    /// [`Value::total_cmp`] without arena reads: two text cells compare
    /// their precomputed ranks; every other pairing never reaches the
    /// arena inside `total_cmp` anyway.
    pub fn total_cmp(a: SortCell, b: SortCell) -> Ordering {
        match (a.value, b.value) {
            (Value::Text(_), Value::Text(_)) => a.rank.cmp(&b.rank),
            _ => a.value.total_cmp(&b.value),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Text fast path on symbol ids; everything else through the total
        // order (which makes Int(2) == Float(2.0), as before interning).
        if let (Value::Text(a), Value::Text(b)) = (self, other) {
            return a == b;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(std::cmp::Ord::cmp(self, other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and floats identically when they compare equal:
            // an integral float hashes as its integer value.
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                // Integral floats in the exact i64 range hash as their
                // integer value (this also folds -0.0 onto Int(0)'s hash).
                // The upper bound is a strict `< 2^63`: `i64::MAX as f64`
                // rounds up to 2^63, so a `<=` guard let Float(2^63) hash
                // as i64::MAX (saturating cast) while not comparing equal
                // to Int(i64::MAX) — a hash/eq inconsistency.
                if f.fract() == 0.0 && *f >= -TWO_POW_63 && *f < TWO_POW_63 {
                    1u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            // Symbol ids are in bijection with strings, so hashing the id
            // is consistent with string equality — and turns text join /
            // group keys into word-sized hashes.
            Value::Text(s) => {
                3u8.hash(state);
                s.id().hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(&v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut v = vec![Value::Int(3), Value::Null, Value::Int(1)];
        v.sort();
        assert_eq!(v, vec![Value::Null, Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn eq_and_hash_agree_across_int_float() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn eq_and_hash_agree_for_interned_text() {
        let a = Value::text("value-test-same");
        let b = Value::text("value-test-same");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(
            Value::text("value-test-same"),
            Value::text("value-test-other")
        );
    }

    /// Regression: `i64::MAX as f64` rounds up to 2^63, so the old hash
    /// guard (`<= i64::MAX as f64`) admitted Float(2^63), which then
    /// hashed as i64::MAX via the saturating cast. Combined with the old
    /// widening comparison (`a as f64`), Float(2^63) compared *equal* to
    /// Int(i64::MAX - 1) while hashing differently — a hash/eq
    /// inconsistency that corrupts hash-join and group-by keying.
    #[test]
    fn boundary_floats_do_not_collide_with_extreme_ints() {
        let two63 = Value::Float(9_223_372_036_854_775_808.0);
        // 2^63 is strictly greater than every i64.
        assert_ne!(two63, Value::Int(i64::MAX));
        assert_ne!(two63, Value::Int(i64::MAX - 1));
        assert_eq!(
            two63.sql_cmp(&Value::Int(i64::MAX)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(i64::MAX).total_cmp(&two63), Ordering::Less);
        // 2^63 must take the raw-bits hash path, not the integral path.
        assert_ne!(hash_of(&two63), hash_of(&Value::Int(i64::MAX)));
        // -2^63 is exactly i64::MIN: equal, and hashed identically.
        let neg_two63 = Value::Float(-9_223_372_036_854_775_808.0);
        assert_eq!(neg_two63, Value::Int(i64::MIN));
        assert_eq!(hash_of(&neg_two63), hash_of(&Value::Int(i64::MIN)));
        // The largest integral float below 2^63 still matches its int.
        let below = 9_223_372_036_854_774_784i64; // 2^63 - 1024
        assert_eq!(Value::Float(below as f64), Value::Int(below));
        assert_eq!(
            hash_of(&Value::Float(below as f64)),
            hash_of(&Value::Int(below))
        );
        assert_ne!(Value::Float(below as f64), Value::Int(i64::MAX));
    }

    /// Int/float comparison is exact: the int side is never rounded
    /// through `f64`. Under the old widening rule both assertions below
    /// reported `Equal`.
    #[test]
    fn int_float_comparison_is_exact_near_two_pow_63() {
        let two63 = Value::Float(9_223_372_036_854_775_808.0);
        assert_eq!(
            Value::Int(i64::MAX - 1).sql_cmp(&two63),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(i64::MAX).sql_cmp(&two63), Some(Ordering::Less));
        // Fractional tie-break around an exact integer.
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(-3).sql_cmp(&Value::Float(-3.5)),
            Some(Ordering::Greater)
        );
        // Infinities sit outside every int.
        assert_eq!(
            Value::Int(i64::MAX).sql_cmp(&Value::Float(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).sql_cmp(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
    }

    /// `-0.0`, `0.0` and `Int(0)` are one equivalence class (keeps Eq
    /// transitive given the exact int/float comparison) with one hash.
    #[test]
    fn negative_zero_is_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        assert_eq!(
            Value::Float(-0.0).total_cmp(&Value::Float(0.0)),
            Ordering::Equal
        );
        assert_eq!(Value::Float(-0.0).sql_eq(&Value::Float(0.0)), Some(true));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
    }

    /// NaN keeps its `f64::total_cmp` placement against ints: negative
    /// NaN below every int, positive NaN above — and stays UNKNOWN under
    /// SQL comparison.
    #[test]
    fn nan_total_order_against_ints() {
        let pnan = Value::Float(f64::NAN);
        let nnan = Value::Float(-f64::NAN);
        assert_eq!(Value::Int(i64::MAX).total_cmp(&pnan), Ordering::Less);
        assert_eq!(Value::Int(i64::MIN).total_cmp(&nnan), Ordering::Greater);
        assert_eq!(pnan.total_cmp(&Value::Int(0)), Ordering::Greater);
        assert_eq!(pnan.sql_cmp(&Value::Int(0)), None);
    }

    #[test]
    fn fits_allows_widening_and_null() {
        assert!(Value::Int(1).fits(DataType::Float));
        assert!(Value::Null.fits(DataType::Text));
        assert!(!Value::text("x").fits(DataType::Int));
    }

    #[test]
    fn display_round_trips_simply() {
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::text("a").as_text(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_int(), None);
    }

    /// Pin: text ordering follows the *strings*, never the intern order.
    /// Symbols are deliberately created in reverse lexicographic order so
    /// an id-based comparison would invert every assertion below.
    #[test]
    fn text_total_order_is_lexicographic_despite_intern_order() {
        let later = Value::text("value-order-zz");
        let middle = Value::text("value-order-mm");
        let first = Value::text("value-order-aa");
        // Intern order was zz, mm, aa — ids ascend in that order.
        assert_eq!(first.total_cmp(&later), Ordering::Less);
        assert_eq!(middle.total_cmp(&later), Ordering::Less);
        assert_eq!(first.sql_cmp(&middle), Some(Ordering::Less));
        let mut v = vec![later, first, Value::Null, middle];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::Null,
                Value::text("value-order-aa"),
                Value::text("value-order-mm"),
                Value::text("value-order-zz"),
            ]
        );
    }

    /// Pin: ORDER BY / GROUP BY keys built from mixed types keep the
    /// `Null < numbers < text < bool` rank order with interned text.
    #[test]
    fn mixed_type_sort_keys_keep_rank_order() {
        let mut v = vec![
            Value::Bool(false),
            Value::text("value-rank-b"),
            Value::Float(2.5),
            Value::Null,
            Value::text("value-rank-a"),
            Value::Int(9),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::Null,
                Value::Float(2.5),
                Value::Int(9),
                Value::text("value-rank-a"),
                Value::text("value-rank-b"),
                Value::Bool(false),
            ]
        );
    }

    /// Pin: a rank-decorated sort is byte-for-byte the `total_cmp` order,
    /// including text interned in adversarial (reverse) order, mixed types
    /// and NULLs — and never consults the arena inside the comparator.
    #[test]
    fn sort_cell_order_equals_total_cmp() {
        let values = vec![
            Value::text("cell-order-zz"),
            Value::Bool(true),
            Value::text("cell-order-mm"),
            Value::Null,
            Value::Float(1.5),
            Value::text("cell-order-aa"),
            Value::Int(2),
            Value::text("cell-order-mm"),
        ];
        let ranks = crate::intern::rank_map();
        let mut by_cell: Vec<SortCell> = values.iter().map(|&v| SortCell::new(v, &ranks)).collect();
        by_cell.sort_by(|&a, &b| SortCell::total_cmp(a, b));
        let mut by_value = values.clone();
        by_value.sort();
        assert_eq!(
            by_cell.into_iter().map(SortCell::value).collect::<Vec<_>>(),
            by_value
        );
    }

    #[test]
    fn value_is_copy_and_small() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Value>();
        assert!(std::mem::size_of::<Value>() <= 16);
    }
}
