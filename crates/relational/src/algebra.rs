//! Relational algebra over materialized relations.
//!
//! These operators power the SQL executor and the "Navicat-style" baseline
//! used in the evaluation: plain joins that exhibit the duplication blowup
//! the paper's introduction motivates (Figure 1 caption).

use crate::expr::Expr;
use crate::table::Row;
use crate::value::{DataType, Value};
use crate::{Error, Result};
use std::collections::HashMap;

/// A column of an intermediate relation: optional table qualifier + name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelColumn {
    /// Table alias or name this column came from, if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl RelColumn {
    /// Creates a qualified column.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>, ty: DataType) -> Self {
        RelColumn {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            data_type: ty,
        }
    }

    /// Creates an unqualified column.
    pub fn bare(name: impl Into<String>, ty: DataType) -> Self {
        RelColumn {
            qualifier: None,
            name: name.into(),
            data_type: ty,
        }
    }

    /// `qualifier.name` or just `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether this column is referred to by `name`, which may be
    /// `column` or `qualifier.column`.
    pub fn matches_name(&self, name: &str) -> bool {
        if let Some((q, c)) = name.split_once('.') {
            self.qualifier.as_deref() == Some(q) && self.name == c
        } else {
            self.name == name
        }
    }
}

/// A fully materialized intermediate relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Output columns.
    pub columns: Vec<RelColumn>,
    /// Tuples.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Creates a relation.
    pub fn new(columns: Vec<RelColumn>, rows: Vec<Row>) -> Self {
        Relation { columns, rows }
    }

    /// The qualified output columns a scan of `table` under `alias`
    /// produces. Single source for [`Relation::from_table`], the columnar
    /// scans ([`crate::colrel::ColRelation`]) and the executor's zero-row
    /// predicate-resolution shapes, so name resolution can never diverge
    /// from the columns a scan actually yields.
    pub fn table_columns(table: &crate::table::Table, alias: &str) -> Vec<RelColumn> {
        table
            .schema()
            .columns
            .iter()
            .map(|c| RelColumn::qualified(alias, &c.name, c.data_type))
            .collect()
    }

    /// Builds a relation from a stored table, qualifying columns with `alias`.
    /// Rows are materialized from the table's columnar storage.
    pub fn from_table(table: &crate::table::Table, alias: &str) -> Self {
        Relation {
            columns: Self::table_columns(table, alias),
            rows: table.to_rows(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolves a (possibly qualified) column name to its position.
    ///
    /// Errors on unknown and on ambiguous unqualified names.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        resolve_name(&self.columns, name)
    }

    /// σ — keeps rows satisfying `pred`.
    pub fn select(&self, pred: &Expr) -> Result<Relation> {
        let mut rows = Vec::new();
        for r in &self.rows {
            if pred.matches(r)? {
                rows.push(r.clone());
            }
        }
        Ok(Relation::new(self.columns.clone(), rows))
    }

    /// π — keeps the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Relation> {
        for &i in indices {
            if i >= self.columns.len() {
                return Err(Error::Eval(format!("projection index {i} out of range")));
            }
        }
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i]).collect())
            .collect();
        Ok(Relation::new(columns, rows))
    }

    /// Removes duplicate rows (set semantics), preserving first occurrence.
    pub fn distinct(&self) -> Relation {
        let mut seen = std::collections::HashSet::new();
        let rows = self
            .rows
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        Relation::new(self.columns.clone(), rows)
    }

    /// Equi-join on `self[left_col] = other[right_col]` using a
    /// row-at-a-time hash join over materialized rows.
    ///
    /// The optimizing executor no longer goes through this path — its joins
    /// run on selection vectors ([`crate::colrel::ColRelation::hash_join`])
    /// and never copy intermediate rows. This implementation stays as the
    /// independent row-oriented reference the join edge-case tests compare
    /// the columnar kernels against. Output columns are
    /// `self.columns ++ other.columns`.
    pub fn hash_join(
        &self,
        other: &Relation,
        left_col: usize,
        right_col: usize,
    ) -> Result<Relation> {
        if left_col >= self.columns.len() || right_col >= other.columns.len() {
            return Err(Error::Eval("join column out of range".into()));
        }
        // Build on the smaller side.
        let (build, probe, build_col, probe_col, build_is_left) = if self.len() <= other.len() {
            (self, other, left_col, right_col, true)
        } else {
            (other, self, right_col, left_col, false)
        };
        // `Value` is `Copy` and text hashes by interned symbol id, so the
        // build index keys on word-sized copies (a text join key is a `u32`
        // symbol, not a heap string).
        let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, r) in build.rows.iter().enumerate() {
            if !r[build_col].is_null() {
                index.entry(r[build_col]).or_default().push(i);
            }
        }
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut rows = Vec::new();
        for pr in &probe.rows {
            let key = pr[probe_col];
            if key.is_null() {
                continue;
            }
            if let Some(hits) = index.get(&key) {
                for &bi in hits {
                    let br = &build.rows[bi];
                    let mut out = Vec::with_capacity(self.columns.len() + other.columns.len());
                    if build_is_left {
                        out.extend_from_slice(br);
                        out.extend_from_slice(pr);
                    } else {
                        out.extend_from_slice(pr);
                        out.extend_from_slice(br);
                    }
                    rows.push(out);
                }
            }
        }
        Ok(Relation::new(columns, rows))
    }

    /// Nested-loop join with an arbitrary predicate over the concatenated row.
    pub fn nl_join(&self, other: &Relation, pred: &Expr) -> Result<Relation> {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut rows = Vec::new();
        for l in &self.rows {
            for r in &other.rows {
                let mut combined = Vec::with_capacity(l.len() + r.len());
                combined.extend_from_slice(l);
                combined.extend_from_slice(r);
                if pred.matches(&combined)? {
                    rows.push(combined);
                }
            }
        }
        Ok(Relation::new(columns, rows))
    }

    /// Cartesian product.
    pub fn cross(&self, other: &Relation) -> Relation {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut rows = Vec::with_capacity(self.len() * other.len());
        for l in &self.rows {
            for r in &other.rows {
                let mut combined = Vec::with_capacity(l.len() + r.len());
                combined.extend_from_slice(l);
                combined.extend_from_slice(r);
                rows.push(combined);
            }
        }
        Relation::new(columns, rows)
    }

    /// Sorts rows by the given keys (stable; ties keep input order).
    ///
    /// Sort-key cells are hoisted once into a flat rank-decorated key
    /// column ([`SortCell`] over one [`crate::intern::RankMap`] snapshot),
    /// so the comparator compares machine words and never touches the
    /// interner — there is no string-resolving fallback inside the sort.
    pub fn sort_by(&self, keys: &[SortKey]) -> Relation {
        use crate::value::SortCell;
        let ranks = crate::intern::rank_map();
        let stride = keys.len();
        let mut decorated: Vec<SortCell> = Vec::with_capacity(self.rows.len() * stride);
        for r in &self.rows {
            decorated.extend(keys.iter().map(|k| SortCell::new(r[k.column], &ranks)));
        }
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (ki, k) in keys.iter().enumerate() {
                let ord =
                    SortCell::total_cmp(decorated[a * stride + ki], decorated[b * stride + ki]);
                let ord = if k.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let rows = order.into_iter().map(|i| self.rows[i].clone()).collect();
        Relation::new(self.columns.clone(), rows)
    }

    /// Keeps the first `n` rows.
    pub fn limit(&self, n: usize) -> Relation {
        Relation::new(
            self.columns.clone(),
            self.rows.iter().take(n).cloned().collect(),
        )
    }

    /// Skips the first `n` rows (SQL OFFSET).
    pub fn offset(&self, n: usize) -> Relation {
        Relation::new(
            self.columns.clone(),
            self.rows.iter().skip(n).cloned().collect(),
        )
    }

    /// GROUP BY + aggregates over this (already materialized) relation.
    ///
    /// `group_cols` are the grouping key positions; each aggregate consumes
    /// an input column (or `None` for `COUNT(*)`). Output columns are the
    /// group keys followed by one column per aggregate; groups appear in
    /// first-occurrence order.
    pub fn group_by(&self, group_cols: &[usize], aggs: &[AggSpec]) -> Result<Relation> {
        group_core(
            self.rows.len(),
            |r, c| self.rows[r][c],
            &self.columns,
            group_cols,
            aggs,
        )
    }
}

/// Resolves a (possibly qualified) column name against a column list —
/// the single resolution rule shared by [`Relation`] and
/// [`crate::colrel::ColRelation`], so the materialized and selection-vector
/// pipelines can never disagree on what a name means.
///
/// Errors on unknown and on ambiguous unqualified names.
pub(crate) fn resolve_name(columns: &[RelColumn], name: &str) -> Result<usize> {
    let hits: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.matches_name(name))
        .map(|(i, _)| i)
        .collect();
    match hits.len() {
        0 => Err(Error::UnknownColumn(name.to_string())),
        1 => Ok(hits[0]),
        _ => Err(Error::Eval(format!("ambiguous column reference `{name}`"))),
    }
}

/// A packed grouping key. Single- and two-column keys (the overwhelmingly
/// common shapes) are inline `Copy` data; only wider keys heap-allocate.
/// Equality and hashing delegate to [`Value`], so `Int(2)` and
/// `Float(2.0)` land in the same group exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    One(Value),
    Two([Value; 2]),
    Wide(Box<[Value]>),
}

impl GroupKey {
    fn read(group_cols: &[usize], cell: impl Fn(usize) -> Value) -> GroupKey {
        match group_cols {
            [a] => GroupKey::One(cell(*a)),
            [a, b] => GroupKey::Two([cell(*a), cell(*b)]),
            wide => GroupKey::Wide(wide.iter().map(|&c| cell(c)).collect()),
        }
    }

    /// The packed key cells, for filling the group-key arena without
    /// re-reading the input columns.
    fn values(&self) -> &[Value] {
        match self {
            GroupKey::One(v) => std::slice::from_ref(v),
            GroupKey::Two(vs) => vs,
            GroupKey::Wide(vs) => vs,
        }
    }
}

/// Whether `aggs` contains MIN/MAX — the aggregates whose running state
/// compares through rank-decorated cells and therefore needs one
/// [`crate::intern::RankMap`] snapshot shared across every partial table.
pub(crate) fn aggs_need_ranks(aggs: &[AggSpec]) -> bool {
    aggs.iter()
        .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max))
}

/// The output columns of a grouped aggregation: the group-key columns (in
/// `group_cols` order) followed by one column per aggregate. Takes the
/// **original** (un-remapped) column positions, so the parallel path —
/// which feeds [`GroupAcc`] dense remapped indexes — still derives output
/// names and types from the real input schema.
pub(crate) fn group_output_columns(
    in_columns: &[RelColumn],
    group_cols: &[usize],
    aggs: &[AggSpec],
) -> Vec<RelColumn> {
    let mut columns: Vec<RelColumn> = group_cols.iter().map(|&i| in_columns[i].clone()).collect();
    for spec in aggs {
        let ty = match spec.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => spec
                .input
                .map(|c| in_columns[c].data_type)
                .unwrap_or(DataType::Int),
        };
        columns.push(RelColumn::bare(spec.output_name.clone(), ty));
    }
    columns
}

/// A grouped-aggregation accumulator: the group index plus per-group
/// [`AggState`]s, fed one row at a time.
///
/// This is the unit of morsel parallelism for grouped aggregation: each
/// morsel builds its own `GroupAcc` (a *partial* table), and partials are
/// [`merged`](GroupAcc::merge) into one accumulator **in fixed chunk
/// order**, which preserves first-occurrence group order and makes the
/// result independent of pool size. The sequential path ([`group_core`]) is
/// the degenerate single-partial case of the same code.
///
/// Each row's key cells are packed into a [`GroupKey`] (no per-row
/// `Vec<Value>`), hashed into the group index via the entry API (one hash
/// per row), and every aggregate updates its per-group state vector
/// (`states[spec][group]`). Group key cells live in one flat arena; output
/// rows are only assembled by [`finish`](GroupAcc::finish), in
/// first-occurrence order.
pub(crate) struct GroupAcc {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    ranks: Option<crate::intern::RankMap>,
    index: HashMap<GroupKey, usize>,
    key_data: Vec<Value>,
    states: Vec<Vec<AggState>>,
    n_groups: usize,
}

impl GroupAcc {
    /// Creates an empty accumulator. `ranks` must be `Some` when `aggs`
    /// contains MIN/MAX ([`aggs_need_ranks`]); every partial that will later
    /// merge into the same accumulator must share the **same** snapshot.
    pub(crate) fn new(
        group_cols: &[usize],
        aggs: &[AggSpec],
        ranks: Option<crate::intern::RankMap>,
    ) -> GroupAcc {
        GroupAcc {
            group_cols: group_cols.to_vec(),
            aggs: aggs.to_vec(),
            ranks,
            index: HashMap::new(),
            key_data: Vec::new(),
            states: aggs.iter().map(|_| Vec::new()).collect(),
            n_groups: 0,
        }
    }

    /// Resolves (creating if new) the group index for a just-read key.
    fn group_of(&mut self, key: GroupKey) -> usize {
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let g = self.n_groups;
                // A new group's key cells are copied out of the just-built
                // key instead of re-read from the input columns.
                self.key_data.extend_from_slice(e.key().values());
                for (si, spec) in self.aggs.iter().enumerate() {
                    self.states[si].push(AggState::new(spec));
                }
                self.n_groups += 1;
                e.insert(g);
                g
            }
        }
    }

    /// Ensures the single implicit group of a key-less aggregation exists.
    fn global_group(&mut self) -> usize {
        if self.n_groups == 0 {
            for (si, spec) in self.aggs.iter().enumerate() {
                self.states[si].push(AggState::new(spec));
            }
            self.n_groups = 1;
        }
        0
    }

    /// Feeds one input row; `cell` reads that row's value at a column
    /// position (in whatever index space `group_cols`/agg inputs use).
    pub(crate) fn update(&mut self, cell: impl Fn(usize) -> Value) -> Result<()> {
        let gi = if self.group_cols.is_empty() {
            self.global_group()
        } else {
            let key = GroupKey::read(&self.group_cols, &cell);
            self.group_of(key)
        };
        for si in 0..self.aggs.len() {
            let v = self.aggs[si].input.map(&cell);
            self.states[si][gi].update(v.as_ref(), self.ranks.as_ref())?;
        }
        Ok(())
    }

    /// Folds a partial accumulator into `self`. Call in **fixed chunk
    /// order**: a group first seen in chunk *k* keeps that position in the
    /// output, exactly where a sequential pass would have discovered it.
    pub(crate) fn merge(&mut self, other: GroupAcc) -> Result<()> {
        let n_keys = self.group_cols.len();
        let mut incoming: Vec<std::vec::IntoIter<AggState>> =
            other.states.into_iter().map(Vec::into_iter).collect();
        for g in 0..other.n_groups {
            let gi = if n_keys == 0 {
                self.global_group()
            } else {
                // Rebuild the packed key from the partial's key arena
                // (same shape rule as `GroupKey::read`).
                let key = match &other.key_data[g * n_keys..(g + 1) * n_keys] {
                    [a] => GroupKey::One(*a),
                    [a, b] => GroupKey::Two([*a, *b]),
                    wide => GroupKey::Wide(wide.to_vec().into_boxed_slice()),
                };
                self.group_of(key)
            };
            for (si, it) in incoming.iter_mut().enumerate() {
                let st = it.next().ok_or_else(|| {
                    Error::Eval("partial aggregate table missing a group state".into())
                })?;
                self.states[si][gi].merge(st)?;
            }
        }
        Ok(())
    }

    /// Assembles the output relation (groups in first-occurrence order).
    /// `columns` is the output schema from [`group_output_columns`].
    pub(crate) fn finish(mut self, columns: Vec<RelColumn>) -> Relation {
        let n_keys = self.group_cols.len();
        // Empty input with no grouping keys still yields a single group for
        // aggregates, matching SQL semantics.
        if n_groups_needs_seed(self.n_groups, n_keys, &self.aggs) {
            self.global_group();
        }
        let mut finishers: Vec<std::vec::IntoIter<AggState>> =
            self.states.into_iter().map(Vec::into_iter).collect();
        let mut rows: Vec<Row> = Vec::with_capacity(self.n_groups);
        for g in 0..self.n_groups {
            let mut out: Row = Vec::with_capacity(n_keys + self.aggs.len());
            out.extend_from_slice(&self.key_data[g * n_keys..(g + 1) * n_keys]);
            out.extend(finishers.iter_mut().map(|f| {
                f.next()
                    .expect("one state per group per aggregate")
                    .finish()
            }));
            rows.push(out);
        }
        Relation::new(columns, rows)
    }
}

/// True when a key-less aggregation over empty input still owes its single
/// implicit output group.
fn n_groups_needs_seed(n_groups: usize, n_keys: usize, aggs: &[AggSpec]) -> bool {
    n_groups == 0 && n_keys == 0 && !aggs.is_empty()
}

/// The shared sequential grouping kernel behind [`Relation::group_by`] and
/// [`crate::colrel::ColRelation::group_by`]'s fallback path: one
/// [`GroupAcc`] fed every row in order, then finished. The parallel path in
/// [`crate::colrel::ColRelation::group_by`] runs the same accumulator per
/// morsel and merges.
pub(crate) fn group_core<F>(
    n_rows: usize,
    cell: F,
    in_columns: &[RelColumn],
    group_cols: &[usize],
    aggs: &[AggSpec],
) -> Result<Relation>
where
    F: Fn(usize, usize) -> Value,
{
    // MIN/MAX compare through rank-decorated cells; snapshot the dictionary
    // ranks once per aggregation instead of locking the arena per update.
    let ranks = aggs_need_ranks(aggs).then(crate::intern::rank_map);
    let mut acc = GroupAcc::new(group_cols, aggs, ranks);
    for r in 0..n_rows {
        acc.update(|c| cell(r, c))?;
    }
    Ok(acc.finish(group_output_columns(in_columns, group_cols, aggs)))
}

/// One ORDER BY key.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column position.
    pub column: usize,
    /// Descending order?
    pub descending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: usize) -> Self {
        SortKey {
            column,
            descending: false,
        }
    }

    /// Descending key.
    pub fn desc(column: usize) -> Self {
        SortKey {
            column,
            descending: true,
        }
    }
}

/// Aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(col) or COUNT(*) when input is None.
    Count,
    /// SUM(col).
    Sum,
    /// AVG(col).
    Avg,
    /// MIN(col).
    Min,
    /// MAX(col).
    Max,
}

/// An aggregate over an input column.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Which aggregate.
    pub func: AggFunc,
    /// Input column position; `None` means `COUNT(*)`.
    pub input: Option<usize>,
    /// Name of the output column.
    pub output_name: String,
}

impl AggSpec {
    /// Builds a spec.
    pub fn new(func: AggFunc, input: Option<usize>, output_name: impl Into<String>) -> Self {
        AggSpec {
            func,
            input,
            output_name: output_name.into(),
        }
    }

    /// `COUNT(*)` spec.
    pub fn count_star(output_name: impl Into<String>) -> Self {
        Self::new(AggFunc::Count, None, output_name)
    }
}

/// Per-group running state of one aggregate.
///
/// SUM/AVG keep **integer inputs in an exact `i128` accumulator** and only
/// float inputs in the `f64` accumulator. Integer addition is associative,
/// so splitting a group across morsels and merging the partial states in
/// any grouping of chunks produces bit-identical results — the property the
/// parallel grouped-aggregation path ([`GroupAcc::merge`]) relies on.
#[derive(Debug)]
enum AggState {
    Count(i64),
    Sum {
        fsum: f64,
        isum: i128,
        any: bool,
        int_only: bool,
    },
    Avg {
        fsum: f64,
        isum: i128,
        n: i64,
    },
    // MIN/MAX keep the running best as a rank-decorated cell so text
    // candidates compare by dictionary rank, never through the arena lock.
    Min(Option<crate::value::SortCell>),
    Max(Option<crate::value::SortCell>),
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        match spec.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                fsum: 0.0,
                isum: 0,
                any: false,
                int_only: true,
            },
            AggFunc::Avg => AggState::Avg {
                fsum: 0.0,
                isum: 0,
                n: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>, ranks: Option<&crate::intern::RankMap>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    _ => {}
                }
            }
            AggState::Sum {
                fsum,
                isum,
                any,
                int_only,
            } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        match val {
                            Value::Int(i) => *isum += *i as i128,
                            _ => {
                                let f = val.as_float().ok_or_else(|| {
                                    Error::Eval(format!("SUM over non-number {val}"))
                                })?;
                                *fsum += f;
                                *int_only = false;
                            }
                        }
                        *any = true;
                    }
                }
            }
            AggState::Avg { fsum, isum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        match val {
                            Value::Int(i) => *isum += *i as i128,
                            _ => {
                                let f = val.as_float().ok_or_else(|| {
                                    Error::Eval(format!("AVG over non-number {val}"))
                                })?;
                                *fsum += f;
                            }
                        }
                        *n += 1;
                    }
                }
            }
            AggState::Min(best) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let cand = crate::value::SortCell::new(
                            *val,
                            ranks.expect("rank snapshot taken for MIN/MAX"),
                        );
                        Self::keep_best(best, cand, std::cmp::Ordering::Less);
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let cand = crate::value::SortCell::new(
                            *val,
                            ranks.expect("rank snapshot taken for MIN/MAX"),
                        );
                        Self::keep_best(best, cand, std::cmp::Ordering::Greater);
                    }
                }
            }
        }
        Ok(())
    }

    /// Replaces `best` with `cand` when `cand` strictly wins (`want` is
    /// `Less` for MIN, `Greater` for MAX). Ties keep the incumbent, so the
    /// earlier-in-row-order candidate survives — both sequentially and when
    /// merging partial states in chunk order.
    fn keep_best(
        best: &mut Option<crate::value::SortCell>,
        cand: crate::value::SortCell,
        want: std::cmp::Ordering,
    ) {
        let better = match best {
            Some(b) => crate::value::SortCell::total_cmp(cand, *b) == want,
            None => true,
        };
        if better {
            *best = Some(cand);
        }
    }

    /// Folds another partial state of the **same aggregate kind** into
    /// `self`. Partial states come from per-morsel [`GroupAcc`]s and are
    /// merged in fixed chunk order; both MIN/MAX candidates carry
    /// [`crate::value::SortCell`]s built from the *same* rank snapshot, so
    /// cross-partial comparisons are well-defined.
    fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (
                AggState::Sum {
                    fsum,
                    isum,
                    any,
                    int_only,
                },
                AggState::Sum {
                    fsum: f2,
                    isum: i2,
                    any: a2,
                    int_only: o2,
                },
            ) => {
                *fsum += f2;
                *isum += i2;
                *any |= a2;
                *int_only &= o2;
            }
            (
                AggState::Avg { fsum, isum, n },
                AggState::Avg {
                    fsum: f2,
                    isum: i2,
                    n: n2,
                },
            ) => {
                *fsum += f2;
                *isum += i2;
                *n += n2;
            }
            (AggState::Min(best), AggState::Min(cand)) => {
                if let Some(c) = cand {
                    Self::keep_best(best, c, std::cmp::Ordering::Less);
                }
            }
            (AggState::Max(best), AggState::Max(cand)) => {
                if let Some(c) = cand {
                    Self::keep_best(best, c, std::cmp::Ordering::Greater);
                }
            }
            _ => {
                return Err(Error::Eval(
                    "aggregate state kind mismatch while merging partials".into(),
                ))
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                fsum,
                isum,
                any,
                int_only,
            } => {
                if !any {
                    Value::Null
                } else if int_only {
                    Value::Int(clamp_i128(isum))
                } else {
                    Value::Float(isum as f64 + fsum)
                }
            }
            AggState::Avg { fsum, isum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float((isum as f64 + fsum) / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => {
                v.map(crate::value::SortCell::value).unwrap_or(Value::Null)
            }
        }
    }
}

/// Saturates an exact `i128` integer sum into the engine's `i64` value
/// domain (mirrors the saturating `f64 -> i64` cast the old float-based
/// accumulator performed at the same magnitudes).
fn clamp_i128(v: i128) -> i64 {
    i64::try_from(v).unwrap_or(if v < 0 { i64::MIN } else { i64::MAX })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(names: &[&str], rows: Vec<Row>) -> Relation {
        let columns = names
            .iter()
            .map(|n| RelColumn::bare(*n, DataType::Int))
            .collect();
        Relation::new(columns, rows)
    }

    #[test]
    fn select_filters() {
        let r = rel(&["a"], vec![vec![1.into()], vec![2.into()], vec![3.into()]]);
        let out = r.select(&Expr::col(0).gt(Expr::lit(1))).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_reorders() {
        let r = rel(&["a", "b"], vec![vec![1.into(), 2.into()]]);
        let out = r.project(&[1, 0]).unwrap();
        assert_eq!(out.columns[0].name, "b");
        assert_eq!(out.rows[0], vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left = rel(&["id"], (0..20).map(|i| vec![Value::Int(i % 5)]).collect());
        let right = rel(&["fk"], (0..10).map(|i| vec![Value::Int(i % 3)]).collect());
        let h = left.hash_join(&right, 0, 0).unwrap();
        let n = left
            .nl_join(&right, &Expr::col(0).eq(Expr::col(1)))
            .unwrap();
        let mut hr = h.rows.clone();
        let mut nr = n.rows.clone();
        hr.sort();
        nr.sort();
        assert_eq!(hr, nr);
    }

    #[test]
    fn hash_join_skips_nulls() {
        let left = rel(&["id"], vec![vec![Value::Null], vec![1.into()]]);
        let right = rel(&["fk"], vec![vec![Value::Null], vec![1.into()]]);
        let out = left.hash_join(&right, 0, 0).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let r = rel(&["a"], vec![vec![1.into()], vec![1.into()], vec![2.into()]]);
        assert_eq!(r.distinct().len(), 2);
    }

    #[test]
    fn sort_and_limit() {
        let r = rel(&["a"], vec![vec![3.into()], vec![1.into()], vec![2.into()]]);
        let out = r.sort_by(&[SortKey::desc(0)]).limit(2);
        assert_eq!(out.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    }

    #[test]
    fn group_by_count() {
        let r = rel(
            &["k", "v"],
            vec![
                vec![1.into(), 10.into()],
                vec![1.into(), Value::Null],
                vec![2.into(), 30.into()],
            ],
        );
        let out = r
            .group_by(
                &[0],
                &[
                    AggSpec::count_star("n"),
                    AggSpec::new(AggFunc::Count, Some(1), "nv"),
                    AggSpec::new(AggFunc::Sum, Some(1), "s"),
                    AggSpec::new(AggFunc::Avg, Some(1), "a"),
                    AggSpec::new(AggFunc::Min, Some(1), "mn"),
                    AggSpec::new(AggFunc::Max, Some(1), "mx"),
                ],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        let g1 = out.rows.iter().find(|r| r[0] == 1.into()).unwrap();
        assert_eq!(g1[1], Value::Int(2)); // COUNT(*)
        assert_eq!(g1[2], Value::Int(1)); // COUNT(v) skips NULL
        assert_eq!(g1[3], Value::Int(10)); // SUM
        assert_eq!(g1[4], Value::Float(10.0)); // AVG
        assert_eq!(g1[5], Value::Int(10)); // MIN
        assert_eq!(g1[6], Value::Int(10)); // MAX
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let r = rel(&["a"], vec![]);
        let out = r.group_by(&[], &[AggSpec::count_star("n")]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
    }

    #[test]
    fn resolve_qualified_and_ambiguous() {
        let columns = vec![
            RelColumn::qualified("p", "id", DataType::Int),
            RelColumn::qualified("a", "id", DataType::Int),
        ];
        let r = Relation::new(columns, vec![]);
        assert!(r.resolve("id").is_err()); // ambiguous
        assert_eq!(r.resolve("p.id").unwrap(), 0);
        assert_eq!(r.resolve("a.id").unwrap(), 1);
        assert!(r.resolve("x.id").is_err());
    }

    #[test]
    fn cross_product_size() {
        let a = rel(&["a"], vec![vec![1.into()], vec![2.into()]]);
        let b = rel(&["b"], vec![vec![3.into()], vec![4.into()], vec![5.into()]]);
        assert_eq!(a.cross(&b).len(), 6);
    }

    /// Splits `values` at `split` into two partial states, merges them,
    /// and returns (sequential result, merged result).
    fn seq_vs_merged(spec: &AggSpec, values: &[Value], split: usize) -> (Value, Value) {
        let ranks = Some(crate::intern::rank_map());
        let mut whole = AggState::new(spec);
        for v in values {
            whole.update(Some(v), ranks.as_ref()).unwrap();
        }
        let mut lo = AggState::new(spec);
        for v in &values[..split] {
            lo.update(Some(v), ranks.as_ref()).unwrap();
        }
        let mut hi = AggState::new(spec);
        for v in &values[split..] {
            hi.update(Some(v), ranks.as_ref()).unwrap();
        }
        lo.merge(hi).unwrap();
        (whole.finish(), lo.finish())
    }

    /// Every aggregate kind, every input flavour it can merge exactly
    /// over, every split point (including empty partials on either side):
    /// merged partials must equal one sequential pass bit-for-bit.
    #[test]
    fn agg_state_merge_matches_sequential_per_kind() {
        let ints: Vec<Value> = [3i64, 1, 4, 1, 5, 9, 2, 6]
            .iter()
            .map(|&i| Value::Int(i))
            .collect();
        let texts: Vec<Value> = ["algebra-mango", "algebra-apple", "algebra-pear"]
            .iter()
            .map(|&s| Value::text(s))
            .collect();
        let floats: Vec<Value> = [2.5f64, -1.25, 7.75]
            .iter()
            .map(|&f| Value::Float(f))
            .collect();
        let with_nulls: Vec<Value> = vec![Value::Int(4), Value::Null, Value::Int(6), Value::Null];
        let all_nulls: Vec<Value> = vec![Value::Null, Value::Null];
        let cases: Vec<(AggFunc, &Vec<Value>)> = vec![
            (AggFunc::Count, &ints),
            (AggFunc::Sum, &ints),
            (AggFunc::Avg, &ints),
            (AggFunc::Min, &ints),
            (AggFunc::Max, &ints),
            (AggFunc::Min, &texts),
            (AggFunc::Max, &texts),
            (AggFunc::Min, &floats),
            (AggFunc::Max, &floats),
            (AggFunc::Count, &with_nulls),
            (AggFunc::Sum, &with_nulls),
            (AggFunc::Avg, &with_nulls),
            (AggFunc::Sum, &all_nulls),
            (AggFunc::Min, &all_nulls),
        ];
        for (func, vals) in cases {
            let spec = AggSpec::new(func, Some(0), "x");
            for split in 0..=vals.len() {
                let (want, got) = seq_vs_merged(&spec, vals, split);
                assert_eq!(want, got, "{func:?} over {vals:?} split at {split}");
            }
        }
    }

    #[test]
    fn agg_state_merge_rejects_kind_mismatch() {
        let mut count = AggState::new(&AggSpec::count_star("n"));
        let sum = AggState::new(&AggSpec::new(AggFunc::Sum, Some(0), "s"));
        assert!(count.merge(sum).is_err());
    }

    /// Integer sums accumulate exactly in `i128` and saturate (never wrap)
    /// when the total leaves the `i64` value domain.
    #[test]
    fn int_sum_is_exact_and_saturating() {
        let spec = AggSpec::new(AggFunc::Sum, Some(0), "s");
        let ranks: Option<&crate::intern::RankMap> = None;
        let mut s = AggState::new(&spec);
        s.update(Some(&Value::Int(i64::MAX)), ranks).unwrap();
        s.update(Some(&Value::Int(i64::MAX)), ranks).unwrap();
        s.update(Some(&Value::Int(1)), ranks).unwrap();
        assert_eq!(s.finish(), Value::Int(i64::MAX));
        let mut s = AggState::new(&spec);
        s.update(Some(&Value::Int(i64::MIN)), ranks).unwrap();
        s.update(Some(&Value::Int(-1)), ranks).unwrap();
        assert_eq!(s.finish(), Value::Int(i64::MIN));
    }

    /// Merging partial group tables in chunk order preserves
    /// first-occurrence group order, exactly as a sequential pass over the
    /// concatenated inputs would produce.
    #[test]
    fn group_acc_merges_partials_in_first_occurrence_order() {
        let specs = [AggSpec::count_star("n")];
        let cols = [RelColumn::bare("k", DataType::Int)];
        let feed = |keys: &[i64]| {
            let mut acc = GroupAcc::new(&[0], &specs, None);
            for &k in keys {
                acc.update(|_| Value::Int(k)).unwrap();
            }
            acc
        };
        let mut acc = feed(&[7, 3]);
        acc.merge(feed(&[5, 3, 7])).unwrap();
        let out = acc.finish(group_output_columns(&cols, &[0], &specs));
        assert_eq!(
            out.rows,
            vec![
                vec![Value::Int(7), Value::Int(2)],
                vec![Value::Int(3), Value::Int(2)],
                vec![Value::Int(5), Value::Int(1)],
            ]
        );
    }

    /// Key-less (global) aggregation merges across empty and non-empty
    /// partials, and an all-empty merge still yields the single implicit
    /// group.
    #[test]
    fn group_acc_merges_global_and_empty_partials() {
        let specs = [AggSpec::new(AggFunc::Sum, Some(0), "s")];
        let cols = [RelColumn::bare("v", DataType::Int)];
        let mut acc = GroupAcc::new(&[], &specs, None);
        acc.merge(GroupAcc::new(&[], &specs, None)).unwrap();
        let mut part = GroupAcc::new(&[], &specs, None);
        part.update(|_| Value::Int(41)).unwrap();
        part.update(|_| Value::Int(1)).unwrap();
        acc.merge(part).unwrap();
        let out = acc.finish(group_output_columns(&cols, &[], &specs));
        assert_eq!(out.rows, vec![vec![Value::Int(42)]]);

        let empty = GroupAcc::new(&[], &specs, None);
        let out = empty.finish(group_output_columns(&cols, &[], &specs));
        assert_eq!(out.rows, vec![vec![Value::Null]]);
    }
}
