//! Columnar storage for a single table, with a primary-key hash index and
//! optional secondary indexes.
//!
//! Rows are stored as typed per-column vectors ([`ColumnData`]) plus a null
//! bitmap per column — text cells hold interned [`Sym`]bols, so a column of
//! titles is a flat `Vec<u32>`-sized array rather than a vector of heap
//! strings. The row-oriented API ([`Table::row`], [`Table::iter_rows`],
//! [`Table::insert`]) is a facade that materializes [`Value`]s on demand;
//! column-at-a-time consumers (the SQL executor's scans, the Appendix A
//! translation) read [`ColumnStore`]s directly and never materialize rows
//! they will discard.
//!
//! Column buffers are `Arc`-shared: cloning a [`ColumnStore`] is O(1), so
//! the morsel-driven executor ([`crate::exec::pool`]) can hand owned
//! `'static` column handles to persistent worker threads without copying
//! data. Mutation goes through `Arc::make_mut`, which is an uncloned
//! in-place write whenever the table holds the only reference (the common
//! case — query handles never outlive a statement).

use crate::intern::Sym;
use crate::schema::TableSchema;
use crate::storage::paged::ColumnPart;
use crate::value::{DataType, Value};
use crate::{Error, Result};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A tuple of values, positionally matching the table's columns.
///
/// `Value` is `Copy`, so a `Row` is a flat memcpy-able buffer; it is the
/// interchange format between the columnar store and row-oriented layers.
pub type Row = Vec<Value>;

/// Hard cap on rows per table: row ids are `u32` throughout the
/// selection-vector pipeline ([`crate::scan::filter_indices`],
/// [`crate::colrel::ColRelation`]), so a table may never outgrow the id
/// space. Inserts past the cap fail with a constraint error.
pub const MAX_ROWS: usize = u32::MAX as usize;

/// A packed null bitmap (one bit per row). Cloning shares the underlying
/// words (copy-on-write under mutation).
#[derive(Debug, Clone, Default)]
pub struct NullBitmap {
    bits: Arc<Vec<u64>>,
}

impl NullBitmap {
    /// Whether row `i` is NULL. Out-of-range reads are `false`.
    pub fn get(&self, i: usize) -> bool {
        self.bits
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    fn set(&mut self, i: usize, null: bool) {
        let word = i / 64;
        let bits = Arc::make_mut(&mut self.bits);
        if word >= bits.len() {
            bits.resize(word + 1, 0);
        }
        if null {
            bits[word] |= 1u64 << (i % 64);
        } else {
            bits[word] &= !(1u64 << (i % 64));
        }
    }

    /// The packed words backing the bitmap (may be shorter than
    /// `ceil(rows / 64)`: trailing all-valid words are never allocated).
    /// Used by the on-disk writer ([`crate::storage`]).
    pub(crate) fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a bitmap from packed words (the on-disk reader's path).
    pub(crate) fn from_words(words: Vec<u64>) -> Self {
        NullBitmap {
            bits: Arc::new(words),
        }
    }
}

/// The typed body of one column. NULL positions hold an arbitrary
/// placeholder; the [`NullBitmap`] is authoritative.
///
/// Each variant wraps its buffer in an [`Arc`] so clones share storage:
/// a cloned [`ColumnData`] (or whole [`ColumnStore`]) is a cheap handle
/// suitable for moving into `'static` worker-pool closures.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `INT` column.
    Int(Arc<Vec<i64>>),
    /// `FLOAT` column (also stores widened `INT` inserts).
    Float(Arc<Vec<f64>>),
    /// `TEXT` column of interned symbols.
    Sym(Arc<Vec<Sym>>),
    /// `BOOL` column.
    Bool(Arc<Vec<bool>>),
}

/// The physical residence of one column: today's Arc-backed vectors, or a
/// lazily-loaded handle into an on-disk table file ([`crate::storage`]).
///
/// `Paged` columns materialize on first touch — a checksummed chunked read
/// of the column's segment — and cache the result in an `Arc<OnceLock>`, so
/// every clone of the [`ColumnStore`] (scan handles, worker-pool closures)
/// shares the one materialization. Mutation always converts to `Resident`
/// first: the disk file is a snapshot, never a live write target.
#[derive(Debug, Clone)]
enum Backing {
    /// Fully in memory (the only state a mutated column can be in).
    Resident { data: ColumnData, nulls: NullBitmap },
    /// On disk, loaded on first touch and cached.
    Paged {
        part: Arc<ColumnPart>,
        cell: Arc<OnceLock<(ColumnData, NullBitmap)>>,
    },
}

/// One column of a table: typed data plus its null bitmap. `Clone` is
/// O(1): both the data buffer and the null bitmap are `Arc`-shared (and a
/// paged column's lazy-load cache is shared across clones too).
#[derive(Debug, Clone)]
pub struct ColumnStore {
    backing: Backing,
    len: usize,
}

impl ColumnStore {
    /// An empty column of the given declared type.
    pub fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Int => ColumnData::Int(Arc::default()),
            DataType::Float => ColumnData::Float(Arc::default()),
            DataType::Text => ColumnData::Sym(Arc::default()),
            DataType::Bool => ColumnData::Bool(Arc::default()),
        };
        ColumnStore {
            backing: Backing::Resident {
                data,
                nulls: NullBitmap::default(),
            },
            len: 0,
        }
    }

    /// A paged column: `part` describes the on-disk segment; nothing is
    /// read until the first touch.
    pub(crate) fn paged(part: Arc<ColumnPart>, len: usize) -> Self {
        ColumnStore {
            backing: Backing::Paged {
                part,
                cell: Arc::new(OnceLock::new()),
            },
            len,
        }
    }

    /// The typed body and null bitmap, materializing a paged column on
    /// first touch.
    fn parts(&self) -> (&ColumnData, &NullBitmap) {
        match &self.backing {
            Backing::Resident { data, nulls } => (data, nulls),
            Backing::Paged { part, cell } => {
                let (data, nulls) = cell.get_or_init(|| part.load_or_die());
                (data, nulls)
            }
        }
    }

    /// Converts a paged column to resident (an `Arc` handoff of the cached
    /// materialization, not a copy) so mutation never writes at the disk
    /// snapshot.
    fn ensure_resident(&mut self) {
        if let Backing::Paged { .. } = self.backing {
            let (data, nulls) = {
                let (d, n) = self.parts();
                (d.clone(), n.clone())
            };
            self.backing = Backing::Resident { data, nulls };
        }
    }

    fn parts_mut(&mut self) -> (&mut ColumnData, &mut NullBitmap) {
        self.ensure_resident();
        match &mut self.backing {
            Backing::Resident { data, nulls } => (data, nulls),
            Backing::Paged { .. } => unreachable!("ensure_resident converted the backing"),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the column's data is in memory — trivially for resident
    /// columns, or after the first touch of a paged one. Lets tests pin
    /// the laziness contract (`open` must not read column segments).
    pub fn is_materialized(&self) -> bool {
        match &self.backing {
            Backing::Resident { .. } => true,
            Backing::Paged { cell, .. } => cell.get().is_some(),
        }
    }

    /// Whether the cell at `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.parts().1.get(i)
    }

    /// The typed column body (column-at-a-time access). Check
    /// [`ColumnStore::is_null`] before trusting a position. Materializes a
    /// paged column on first touch.
    pub fn data(&self) -> &ColumnData {
        self.parts().0
    }

    /// The null bitmap alongside the body (single materialization for
    /// consumers that need both — the on-disk writer).
    pub(crate) fn raw_parts(&self) -> (&ColumnData, &NullBitmap) {
        self.parts()
    }

    /// Materializes the cell at `i` as a [`Value`].
    ///
    /// # Panics
    /// If `i >= len`.
    pub fn get(&self, i: usize) -> Value {
        assert!(
            i < self.len,
            "column row {i} out of range (len {})",
            self.len
        );
        let (data, nulls) = self.parts();
        if nulls.get(i) {
            return Value::Null;
        }
        match data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Sym(v) => Value::Text(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Iterates the column as materialized [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Appends a value. The caller has already validated `fits`.
    fn push(&mut self, v: &Value) {
        let i = self.len;
        self.len += 1;
        let (data, nulls) = self.parts_mut();
        if v.is_null() {
            nulls.set(i, true);
            match data {
                ColumnData::Int(d) => Arc::make_mut(d).push(0),
                ColumnData::Float(d) => Arc::make_mut(d).push(0.0),
                ColumnData::Sym(d) => Arc::make_mut(d).push(Sym::intern("")),
                ColumnData::Bool(d) => Arc::make_mut(d).push(false),
            }
            return;
        }
        match (data, v) {
            (ColumnData::Int(d), Value::Int(x)) => Arc::make_mut(d).push(*x),
            (ColumnData::Float(d), Value::Float(x)) => Arc::make_mut(d).push(*x),
            // Int widened into a FLOAT column (Value::Int(2) == Float(2.0),
            // so reads round-trip under value equality).
            (ColumnData::Float(d), Value::Int(x)) => Arc::make_mut(d).push(*x as f64),
            (ColumnData::Sym(d), Value::Text(s)) => Arc::make_mut(d).push(*s),
            (ColumnData::Bool(d), Value::Bool(b)) => Arc::make_mut(d).push(*b),
            _ => unreachable!("insert validated the value against the column type"),
        }
    }

    /// Overwrites the cell at `i`. The caller has already validated `fits`.
    fn set(&mut self, i: usize, v: &Value) {
        let (data, nulls) = self.parts_mut();
        if v.is_null() {
            nulls.set(i, true);
            return;
        }
        nulls.set(i, false);
        match (data, v) {
            (ColumnData::Int(d), Value::Int(x)) => Arc::make_mut(d)[i] = *x,
            (ColumnData::Float(d), Value::Float(x)) => Arc::make_mut(d)[i] = *x,
            (ColumnData::Float(d), Value::Int(x)) => Arc::make_mut(d)[i] = *x as f64,
            (ColumnData::Sym(d), Value::Text(s)) => Arc::make_mut(d)[i] = *s,
            (ColumnData::Bool(d), Value::Bool(b)) => Arc::make_mut(d)[i] = *b,
            _ => unreachable!("update validated the value against the column type"),
        }
    }

    /// Keeps only the rows whose `keep` flag is set, preserving order.
    fn retain_mask(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        fn retain<T: Copy>(d: &mut Vec<T>, keep: &[bool]) {
            let mut w = 0usize;
            for (r, &k) in keep.iter().enumerate() {
                if k {
                    d[w] = d[r];
                    w += 1;
                }
            }
            d.truncate(w);
        }
        let (data, nulls) = self.parts_mut();
        match data {
            ColumnData::Int(d) => retain(Arc::make_mut(d), keep),
            ColumnData::Float(d) => retain(Arc::make_mut(d), keep),
            ColumnData::Sym(d) => retain(Arc::make_mut(d), keep),
            ColumnData::Bool(d) => retain(Arc::make_mut(d), keep),
        }
        let mut packed = NullBitmap::default();
        let mut w = 0usize;
        for (r, &k) in keep.iter().enumerate() {
            if k {
                packed.set(w, nulls.get(r));
                w += 1;
            }
        }
        *nulls = packed;
        self.len = w;
    }
}

/// How primary-key lookups are answered.
///
/// Resident tables maintain a hash map incrementally. Tables opened from
/// a disk snapshot start in `Ordered` form instead: the snapshot stores
/// (and `open` verifies) a permutation of row indices in ascending PK
/// order, so uniqueness is already proven and lookups binary-search the
/// columns directly — no per-row hashing on the cold-start path. The
/// first mutation converts to `Hash` once.
#[derive(Debug, Clone)]
enum PkIndex {
    /// PK value(s) -> row index.
    Hash(HashMap<Vec<Value>, usize>),
    /// Row indices in ascending PK order; an empty vec means the rows are
    /// already ascending (identity permutation).
    Ordered(Vec<u32>),
}

/// In-memory columnar storage for one table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    cols: Vec<ColumnStore>,
    len: usize,
    /// Positions of the PK columns (cached from the schema).
    pk_cols: Vec<usize>,
    /// PK lookup structure. Only maintained when the schema has a PK.
    pk_index: PkIndex,
    /// column position -> (value -> row indices), built on demand.
    secondary: HashMap<usize, HashMap<Value, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table after validating the schema.
    pub fn new(schema: TableSchema) -> Result<Self> {
        schema.validate()?;
        let pk_cols = schema.primary_key_indices()?;
        let cols = schema
            .columns
            .iter()
            .map(|c| ColumnStore::new(c.data_type))
            .collect();
        Ok(Table {
            schema,
            cols,
            len: 0,
            pk_cols,
            pk_index: PkIndex::Hash(HashMap::new()),
            secondary: HashMap::new(),
        })
    }

    /// Rebuilds a table around already-constructed column stores (the
    /// on-disk reader's path). Validates the schema; PK lookups are
    /// answered through `pk_order` — a permutation of row indices in
    /// ascending PK order that the **caller must already have verified**
    /// (strictly ascending through the permutation, every index in
    /// bounds; strictness is what proves uniqueness). `open` does that
    /// verification with full path context, touching only the PK columns,
    /// so non-key paged columns stay unmaterialized until a query first
    /// reads them — and no hash index is built until the first mutation.
    pub(crate) fn from_parts(
        schema: TableSchema,
        cols: Vec<ColumnStore>,
        len: usize,
        pk_order: Vec<u32>,
    ) -> Result<Self> {
        schema.validate()?;
        let pk_cols = schema.primary_key_indices()?;
        let pk_index = if pk_cols.is_empty() {
            PkIndex::Hash(HashMap::new())
        } else {
            PkIndex::Ordered(pk_order)
        };
        Ok(Table {
            schema,
            cols,
            len,
            pk_cols,
            pk_index,
            secondary: HashMap::new(),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at position `col` (column-at-a-time access).
    ///
    /// # Panics
    /// If `col` is out of range.
    pub fn column(&self, col: usize) -> &ColumnStore {
        &self.cols[col]
    }

    /// Materializes the cell at (`row`, `col`).
    ///
    /// # Panics
    /// If either index is out of range.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols[col].get(row)
    }

    /// Materializes row `idx`, or `None` past the end.
    pub fn row(&self, idx: usize) -> Option<Row> {
        if idx >= self.len {
            return None;
        }
        Some(self.cols.iter().map(|c| c.get(idx)).collect())
    }

    /// Overwrites `buf` with row `idx` (a reusable-buffer variant of
    /// [`Table::row`] for scan loops).
    ///
    /// # Panics
    /// If `idx` is out of range.
    pub fn read_row(&self, idx: usize, buf: &mut Row) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c.get(idx)));
    }

    /// Iterates all rows in insertion order, materializing each.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(|i| self.cols.iter().map(|c| c.get(i)).collect())
    }

    /// Materializes the whole table as rows (tests, bulk exports).
    pub fn to_rows(&self) -> Vec<Row> {
        self.iter_rows().collect()
    }

    fn pk_key(&self, row: &[Value]) -> Option<Vec<Value>> {
        if self.pk_cols.is_empty() {
            return None;
        }
        Some(self.pk_cols.iter().map(|&i| row[i]).collect())
    }

    /// Validates a row against arity, type and nullability constraints,
    /// and enforces the [`MAX_ROWS`] row-id cap.
    fn validate_row(&self, row: &[Value]) -> Result<()> {
        if self.len >= MAX_ROWS {
            return Err(Error::Constraint(format!(
                "table `{}` is full: row ids are u32, so tables cap at {MAX_ROWS} rows",
                self.schema.name
            )));
        }
        if row.len() != self.schema.arity() {
            return Err(Error::Constraint(format!(
                "table `{}` expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            if v.is_null() && !c.nullable {
                return Err(Error::Constraint(format!(
                    "NULL in non-nullable column `{}.{}`",
                    self.schema.name, c.name
                )));
            }
            if !v.fits(c.data_type) {
                return Err(Error::Constraint(format!(
                    "value {v} does not fit column `{}.{}` of type {}",
                    self.schema.name, c.name, c.data_type
                )));
            }
        }
        Ok(())
    }

    /// Compares the stored PK of `row` against `key`, column by column.
    fn cmp_pk_row_key(&self, row: usize, key: &[Value]) -> std::cmp::Ordering {
        for (&c, kv) in self.pk_cols.iter().zip(key) {
            let ord = self.cols[c].get(row).total_cmp(kv);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Row index holding `key`, through whichever PK representation the
    /// table currently carries.
    fn pk_lookup(&self, key: &[Value]) -> Option<usize> {
        if key.len() != self.pk_cols.len() || self.pk_cols.is_empty() {
            return None;
        }
        match &self.pk_index {
            PkIndex::Hash(map) => map.get(key).copied(),
            PkIndex::Ordered(perm) => {
                let row_at = |i: usize| {
                    if perm.is_empty() {
                        i
                    } else {
                        perm[i] as usize
                    }
                };
                let (mut lo, mut hi) = (0usize, self.len);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    let row = row_at(mid);
                    match self.cmp_pk_row_key(row, key) {
                        std::cmp::Ordering::Less => lo = mid + 1,
                        std::cmp::Ordering::Greater => hi = mid,
                        std::cmp::Ordering::Equal => return Some(row),
                    }
                }
                None
            }
        }
    }

    /// The PK hash map, converting an opened snapshot's verified sort
    /// order into a map first (mutation needs a structure it can update
    /// incrementally; uniqueness was proven at open, so the build cannot
    /// collide).
    fn pk_hash_mut(&mut self) -> &mut HashMap<Vec<Value>, usize> {
        if matches!(self.pk_index, PkIndex::Ordered(_)) {
            let mut map = HashMap::with_capacity(self.len);
            for i in 0..self.len {
                let key: Vec<Value> = self.pk_cols.iter().map(|&c| self.cols[c].get(i)).collect();
                map.insert(key, i);
            }
            self.pk_index = PkIndex::Hash(map);
        }
        match &mut self.pk_index {
            PkIndex::Hash(map) => map,
            PkIndex::Ordered(_) => unreachable!("converted to Hash above"),
        }
    }

    /// Registers a row's PK in the index (uniqueness + non-NULL checks).
    fn index_pk(&mut self, row: &[Value], at: usize) -> Result<()> {
        if let Some(key) = self.pk_key(row) {
            if key.iter().any(Value::is_null) {
                return Err(Error::Constraint(format!(
                    "NULL primary key in table `{}`",
                    self.schema.name
                )));
            }
            if self.pk_lookup(&key).is_some() {
                return Err(Error::Constraint(format!(
                    "duplicate primary key {key:?} in table `{}`",
                    self.schema.name
                )));
            }
            self.pk_hash_mut().insert(key, at);
        }
        Ok(())
    }

    /// Inserts a row, enforcing arity, type, nullability and PK uniqueness.
    ///
    /// Foreign-key checks happen at the [`crate::database::Database`] level
    /// because they need access to other tables.
    pub fn insert(&mut self, row: Row) -> Result<usize> {
        self.validate_row(&row)?;
        self.index_pk(&row, self.len)?;
        // Secondary indexes are invalidated by mutation; drop them lazily.
        self.secondary.clear();
        for (c, v) in self.cols.iter_mut().zip(&row) {
            c.push(v);
        }
        self.len += 1;
        Ok(self.len - 1)
    }

    /// Bulk columnar append: validates and indexes every row, then pushes
    /// column-by-column. One secondary-index invalidation for the whole
    /// batch; constraint semantics are identical to repeated
    /// [`Table::insert`] (rows before the failing row stay inserted).
    pub fn append_rows(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<usize> {
        self.secondary.clear();
        let mut n = 0usize;
        for row in rows {
            self.validate_row(&row)?;
            self.index_pk(&row, self.len)?;
            for (c, v) in self.cols.iter_mut().zip(&row) {
                c.push(v);
            }
            self.len += 1;
            n += 1;
        }
        Ok(n)
    }

    /// Looks up a row by its (possibly composite) primary-key value.
    pub fn get_by_pk(&self, key: &[Value]) -> Option<Row> {
        self.pk_lookup(key).and_then(|i| self.row(i))
    }

    /// Position of the row with the given primary key.
    pub fn pk_row_index(&self, key: &[Value]) -> Option<usize> {
        self.pk_lookup(key)
    }

    /// Ensures a secondary hash index exists on the column at `col` and
    /// returns the row positions whose value equals `key`.
    pub fn lookup_indexed(&mut self, col: usize, key: &Value) -> &[usize] {
        if !self.secondary.contains_key(&col) {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, v) in self.cols[col].iter().enumerate() {
                map.entry(v).or_default().push(i);
            }
            self.secondary.insert(col, map);
        }
        self.secondary
            .get(&col)
            .and_then(|m| m.get(key))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Scans for rows whose column `col` equals `key` without an index.
    pub fn scan_eq<'a>(&'a self, col: usize, key: &Value) -> impl Iterator<Item = Row> + 'a {
        let key = *key;
        (0..self.len).filter_map(move |i| {
            if self.cols[col].get(i).sql_eq(&key) == Some(true) {
                self.row(i)
            } else {
                None
            }
        })
    }

    /// Deletes all rows satisfying `pred`; returns how many were removed.
    ///
    /// Indexes are rebuilt. Referential integrity is the caller's concern
    /// ([`crate::database::Database::delete_where`] enforces it).
    pub fn delete_where(&mut self, pred: &crate::expr::Expr) -> Result<usize> {
        let mut keep = Vec::with_capacity(self.len);
        let mut buf = Row::new();
        let mut removed = 0usize;
        for i in 0..self.len {
            self.read_row(i, &mut buf);
            let matched = pred.matches(&buf)?;
            keep.push(!matched);
            removed += matched as usize;
        }
        if removed > 0 {
            for c in &mut self.cols {
                c.retain_mask(&keep);
            }
            self.len -= removed;
            self.rebuild_indexes()?;
        }
        Ok(removed)
    }

    /// Updates columns of all rows satisfying `pred` to the given values;
    /// returns how many rows changed. Type/nullability/PK-uniqueness
    /// constraints are re-checked.
    pub fn update_where(
        &mut self,
        pred: &crate::expr::Expr,
        sets: &[(usize, Value)],
    ) -> Result<usize> {
        for (col, v) in sets {
            let c = self
                .schema
                .columns
                .get(*col)
                .ok_or_else(|| Error::Eval(format!("column index {col} out of range")))?;
            if v.is_null() && !c.nullable {
                return Err(Error::Constraint(format!(
                    "NULL in non-nullable column `{}.{}`",
                    self.schema.name, c.name
                )));
            }
            if !v.fits(c.data_type) {
                return Err(Error::Constraint(format!(
                    "value {v} does not fit column `{}.{}` of type {}",
                    self.schema.name, c.name, c.data_type
                )));
            }
        }
        let mut changed = 0usize;
        let before = self.cols.clone();
        let mut buf = Row::new();
        let applied: Result<()> = (|| {
            for i in 0..self.len {
                self.read_row(i, &mut buf);
                if pred.matches(&buf)? {
                    for (col, v) in sets {
                        self.cols[*col].set(i, v);
                    }
                    changed += 1;
                }
            }
            self.rebuild_indexes()
        })();
        if let Err(e) = applied {
            // Predicate evaluation error mid-scan or a PK collision
            // introduced by the update: roll back so a failed statement
            // never commits partial writes.
            self.cols = before;
            self.rebuild_indexes().expect("previous state was valid");
            return Err(e);
        }
        Ok(changed)
    }

    /// Rebuilds the PK index (checking uniqueness) and drops secondary
    /// indexes.
    fn rebuild_indexes(&mut self) -> Result<()> {
        self.secondary.clear();
        if self.pk_cols.is_empty() {
            self.pk_index = PkIndex::Hash(HashMap::new());
            return Ok(());
        }
        let mut map = HashMap::with_capacity(self.len);
        for i in 0..self.len {
            let key: Vec<Value> = self.pk_cols.iter().map(|&c| self.cols[c].get(i)).collect();
            if map.insert(key, i).is_some() {
                let key: Vec<Value> = self.pk_cols.iter().map(|&c| self.cols[c].get(i)).collect();
                return Err(Error::Constraint(format!(
                    "duplicate primary key {key:?} in table `{}`",
                    self.schema.name
                )));
            }
        }
        self.pk_index = PkIndex::Hash(map);
        Ok(())
    }

    /// Distinct values appearing in column `col` (used by the categorical
    /// attribute heuristic of Appendix A), in total order.
    ///
    /// Implemented as a rank-decorated sort + dedup
    /// ([`crate::value::SortCell`] over one dictionary-rank snapshot), so
    /// interned text compares as machine words and the arena lock is never
    /// taken inside the sort.
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        use crate::value::SortCell;
        let ranks = crate::intern::rank_map();
        let mut cells: Vec<SortCell> = self.cols[col]
            .iter()
            .map(|v| SortCell::new(v, &ranks))
            .collect();
        cells.sort_by(|&a, &b| SortCell::total_cmp(a, b));
        cells.dedup_by(|a, b| SortCell::total_cmp(*a, *b) == std::cmp::Ordering::Equal);
        cells.into_iter().map(SortCell::value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn make() -> Table {
        Table::new(
            TableSchema::new(
                "T",
                vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("name", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = make();
        t.insert(vec![1.into(), "a".into()]).unwrap();
        t.insert(vec![2.into(), Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_by_pk(&[1.into()]).unwrap()[1], "a".into());
        assert!(t.get_by_pk(&[3.into()]).is_none());
    }

    #[test]
    fn rejects_duplicate_pk() {
        let mut t = make();
        t.insert(vec![1.into(), "a".into()]).unwrap();
        assert!(t.insert(vec![1.into(), "b".into()]).is_err());
    }

    #[test]
    fn rejects_wrong_arity_and_type() {
        let mut t = make();
        assert!(t.insert(vec![1.into()]).is_err());
        assert!(t.insert(vec!["x".into(), "a".into()]).is_err());
    }

    #[test]
    fn rejects_null_in_non_nullable() {
        let mut t = make();
        assert!(t.insert(vec![Value::Null, "a".into()]).is_err());
    }

    #[test]
    fn secondary_index_matches_scan() {
        let mut t = make();
        for i in 0..10 {
            t.insert(vec![i.into(), Value::text(format!("n{}", i % 3))])
                .unwrap();
        }
        let via_index: Vec<usize> = t.lookup_indexed(1, &"n1".into()).to_vec();
        let via_scan: Vec<usize> = t
            .iter_rows()
            .enumerate()
            .filter(|(_, r)| r[1] == "n1".into())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn index_invalidated_on_insert() {
        let mut t = make();
        t.insert(vec![1.into(), "x".into()]).unwrap();
        assert_eq!(t.lookup_indexed(1, &"x".into()).len(), 1);
        t.insert(vec![2.into(), "x".into()]).unwrap();
        assert_eq!(t.lookup_indexed(1, &"x".into()).len(), 2);
    }

    #[test]
    fn distinct_values_sorted() {
        let mut t = make();
        t.insert(vec![1.into(), "b".into()]).unwrap();
        t.insert(vec![2.into(), "a".into()]).unwrap();
        t.insert(vec![3.into(), "a".into()]).unwrap();
        assert_eq!(
            t.distinct_values(1),
            vec![Value::from("a"), Value::from("b")]
        );
    }

    #[test]
    fn null_bitmap_round_trips_through_cells() {
        let mut t = make();
        t.insert(vec![1.into(), Value::Null]).unwrap();
        t.insert(vec![2.into(), "x".into()]).unwrap();
        t.insert(vec![3.into(), Value::Null]).unwrap();
        assert!(t.value(0, 1).is_null());
        assert_eq!(t.value(1, 1), "x".into());
        assert!(t.value(2, 1).is_null());
        assert!(t.column(1).is_null(0));
        assert!(!t.column(1).is_null(1));
        // NULLs participate in distinct_values (sorted first).
        assert_eq!(t.distinct_values(1)[0], Value::Null);
    }

    #[test]
    fn bulk_append_matches_repeated_insert() {
        let mut a = make();
        let mut b = make();
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                vec![
                    i.into(),
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::text(format!("v{}", i % 3))
                    },
                ]
            })
            .collect();
        for r in &rows {
            a.insert(r.clone()).unwrap();
        }
        b.append_rows(rows).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
        assert_eq!(a.pk_row_index(&[7.into()]), b.pk_row_index(&[7.into()]));
    }

    #[test]
    fn bulk_append_rejects_duplicate_pk_mid_batch() {
        let mut t = make();
        let err = t.append_rows(vec![
            vec![1.into(), "a".into()],
            vec![1.into(), "b".into()],
            vec![2.into(), "c".into()],
        ]);
        assert!(err.is_err());
        // Rows before the failure stayed, as with repeated insert.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut t = Table::new(TableSchema::new(
            "F",
            vec![Column::new("x", DataType::Float)],
        ))
        .unwrap();
        t.insert(vec![Value::Int(2)]).unwrap();
        t.insert(vec![Value::Float(2.5)]).unwrap();
        // The widened cell reads back as Float(2.0), which compares (and
        // hashes) equal to the Int(2) that was inserted.
        assert_eq!(t.value(0, 0), Value::Float(2.0));
        assert_eq!(t.value(0, 0), Value::Int(2));
        assert_eq!(t.value(1, 0), Value::Float(2.5));
    }

    #[test]
    fn update_where_rolls_back_on_predicate_error() {
        use crate::expr::Expr;
        let mut t = Table::new(
            TableSchema::new(
                "U",
                vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("y", DataType::Int),
                    Column::new("z", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        t.insert(vec![1.into(), Value::Null, 1.into()]).unwrap();
        t.insert(vec![2.into(), 5.into(), 0.into()]).unwrap();
        let before = t.to_rows();
        // Row 1 matches via `z = 1` (NULL LIKE is UNKNOWN, OR true = true)
        // and is updated before row 2's `y LIKE` errors on an INT; the
        // whole statement must then roll back.
        let pred = Expr::col(1).like("a%").or(Expr::col(2).eq(Expr::lit(1)));
        let err = t.update_where(&pred, &[(2, Value::Int(9))]);
        assert!(err.is_err());
        assert_eq!(
            t.to_rows(),
            before,
            "failed update must not commit partial writes"
        );
    }

    #[test]
    fn scan_eq_finds_matches() {
        let mut t = make();
        t.insert(vec![1.into(), "a".into()]).unwrap();
        t.insert(vec![2.into(), "b".into()]).unwrap();
        t.insert(vec![3.into(), "a".into()]).unwrap();
        let hits: Vec<Row> = t.scan_eq(1, &"a".into()).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0][0], 1.into());
        assert_eq!(hits[1][0], 3.into());
    }
}
