//! Row storage for a single table, with a primary-key hash index and
//! optional secondary indexes.

use crate::schema::TableSchema;
use crate::value::Value;
use crate::{Error, Result};
use std::collections::HashMap;

/// A tuple of values, positionally matching the table's columns.
pub type Row = Vec<Value>;

/// In-memory storage for one table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
    /// PK value(s) -> row index. Only maintained when the schema has a PK.
    pk_index: HashMap<Vec<Value>, usize>,
    /// column position -> (value -> row indices), built on demand.
    secondary: HashMap<usize, HashMap<Value, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table after validating the schema.
    pub fn new(schema: TableSchema) -> Result<Self> {
        schema.validate()?;
        Ok(Table {
            schema,
            rows: Vec::new(),
            pk_index: HashMap::new(),
            secondary: HashMap::new(),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row by position.
    pub fn row(&self, idx: usize) -> Option<&Row> {
        self.rows.get(idx)
    }

    fn pk_key(&self, row: &Row) -> Result<Option<Vec<Value>>> {
        if self.schema.primary_key.is_empty() {
            return Ok(None);
        }
        let idx = self.schema.primary_key_indices()?;
        Ok(Some(idx.iter().map(|&i| row[i].clone()).collect()))
    }

    /// Inserts a row, enforcing arity, type, nullability and PK uniqueness.
    ///
    /// Foreign-key checks happen at the [`crate::database::Database`] level
    /// because they need access to other tables.
    pub fn insert(&mut self, row: Row) -> Result<usize> {
        if row.len() != self.schema.arity() {
            return Err(Error::Constraint(format!(
                "table `{}` expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            if v.is_null() && !c.nullable {
                return Err(Error::Constraint(format!(
                    "NULL in non-nullable column `{}.{}`",
                    self.schema.name, c.name
                )));
            }
            if !v.fits(c.data_type) {
                return Err(Error::Constraint(format!(
                    "value {v} does not fit column `{}.{}` of type {}",
                    self.schema.name, c.name, c.data_type
                )));
            }
        }
        if let Some(key) = self.pk_key(&row)? {
            if key.iter().any(Value::is_null) {
                return Err(Error::Constraint(format!(
                    "NULL primary key in table `{}`",
                    self.schema.name
                )));
            }
            if self.pk_index.contains_key(&key) {
                return Err(Error::Constraint(format!(
                    "duplicate primary key {key:?} in table `{}`",
                    self.schema.name
                )));
            }
            self.pk_index.insert(key, self.rows.len());
        }
        // Secondary indexes are invalidated by mutation; drop them lazily.
        self.secondary.clear();
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    /// Looks up a row by its (possibly composite) primary-key value.
    pub fn get_by_pk(&self, key: &[Value]) -> Option<&Row> {
        self.pk_index.get(key).map(|&i| &self.rows[i])
    }

    /// Position of the row with the given primary key.
    pub fn pk_row_index(&self, key: &[Value]) -> Option<usize> {
        self.pk_index.get(key).copied()
    }

    /// Ensures a secondary hash index exists on the column at `col` and
    /// returns the row positions whose value equals `key`.
    pub fn lookup_indexed(&mut self, col: usize, key: &Value) -> &[usize] {
        if !self.secondary.contains_key(&col) {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, r) in self.rows.iter().enumerate() {
                map.entry(r[col].clone()).or_default().push(i);
            }
            self.secondary.insert(col, map);
        }
        self.secondary
            .get(&col)
            .and_then(|m| m.get(key))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Scans for rows whose column `col` equals `key` without an index.
    pub fn scan_eq(&self, col: usize, key: &Value) -> impl Iterator<Item = &Row> + '_ {
        let key = key.clone();
        self.rows
            .iter()
            .filter(move |r| r[col].sql_eq(&key) == Some(true))
    }

    /// Deletes all rows satisfying `pred`; returns how many were removed.
    ///
    /// Indexes are rebuilt. Referential integrity is the caller's concern
    /// ([`crate::database::Database::delete_where`] enforces it).
    pub fn delete_where(&mut self, pred: &crate::expr::Expr) -> Result<usize> {
        let mut kept = Vec::with_capacity(self.rows.len());
        let mut removed = 0usize;
        for row in self.rows.drain(..) {
            if pred.matches(&row)? {
                removed += 1;
            } else {
                kept.push(row);
            }
        }
        self.rows = kept;
        self.rebuild_indexes()?;
        Ok(removed)
    }

    /// Updates columns of all rows satisfying `pred` to the given values;
    /// returns how many rows changed. Type/nullability/PK-uniqueness
    /// constraints are re-checked.
    pub fn update_where(
        &mut self,
        pred: &crate::expr::Expr,
        sets: &[(usize, Value)],
    ) -> Result<usize> {
        for (col, v) in sets {
            let c = self
                .schema
                .columns
                .get(*col)
                .ok_or_else(|| Error::Eval(format!("column index {col} out of range")))?;
            if v.is_null() && !c.nullable {
                return Err(Error::Constraint(format!(
                    "NULL in non-nullable column `{}.{}`",
                    self.schema.name, c.name
                )));
            }
            if !v.fits(c.data_type) {
                return Err(Error::Constraint(format!(
                    "value {v} does not fit column `{}.{}` of type {}",
                    self.schema.name, c.name, c.data_type
                )));
            }
        }
        let mut changed = 0usize;
        let before = self.rows.clone();
        for row in &mut self.rows {
            if pred.matches(row)? {
                for (col, v) in sets {
                    row[*col] = v.clone();
                }
                changed += 1;
            }
        }
        if let Err(e) = self.rebuild_indexes() {
            // PK collision introduced by the update: roll back.
            self.rows = before;
            self.rebuild_indexes().expect("previous state was valid");
            return Err(e);
        }
        Ok(changed)
    }

    /// Rebuilds the PK index (checking uniqueness) and drops secondary
    /// indexes.
    fn rebuild_indexes(&mut self) -> Result<()> {
        self.secondary.clear();
        self.pk_index.clear();
        if self.schema.primary_key.is_empty() {
            return Ok(());
        }
        let idx = self.schema.primary_key_indices()?;
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<Value> = idx.iter().map(|&c| row[c].clone()).collect();
            if self.pk_index.insert(key.clone(), i).is_some() {
                return Err(Error::Constraint(format!(
                    "duplicate primary key {key:?} in table `{}`",
                    self.schema.name
                )));
            }
        }
        Ok(())
    }

    /// Distinct values appearing in column `col` (used by the categorical
    /// attribute heuristic of Appendix A).
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        let mut seen = std::collections::BTreeSet::new();
        for r in &self.rows {
            seen.insert(r[col].clone());
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn make() -> Table {
        Table::new(
            TableSchema::new(
                "T",
                vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("name", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = make();
        t.insert(vec![1.into(), "a".into()]).unwrap();
        t.insert(vec![2.into(), Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_by_pk(&[1.into()]).unwrap()[1], "a".into());
        assert!(t.get_by_pk(&[3.into()]).is_none());
    }

    #[test]
    fn rejects_duplicate_pk() {
        let mut t = make();
        t.insert(vec![1.into(), "a".into()]).unwrap();
        assert!(t.insert(vec![1.into(), "b".into()]).is_err());
    }

    #[test]
    fn rejects_wrong_arity_and_type() {
        let mut t = make();
        assert!(t.insert(vec![1.into()]).is_err());
        assert!(t.insert(vec!["x".into(), "a".into()]).is_err());
    }

    #[test]
    fn rejects_null_in_non_nullable() {
        let mut t = make();
        assert!(t.insert(vec![Value::Null, "a".into()]).is_err());
    }

    #[test]
    fn secondary_index_matches_scan() {
        let mut t = make();
        for i in 0..10 {
            t.insert(vec![i.into(), Value::Text(format!("n{}", i % 3))])
                .unwrap();
        }
        let via_index: Vec<usize> = t.lookup_indexed(1, &"n1".into()).to_vec();
        let via_scan: Vec<usize> = t
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, r)| r[1] == "n1".into())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn index_invalidated_on_insert() {
        let mut t = make();
        t.insert(vec![1.into(), "x".into()]).unwrap();
        assert_eq!(t.lookup_indexed(1, &"x".into()).len(), 1);
        t.insert(vec![2.into(), "x".into()]).unwrap();
        assert_eq!(t.lookup_indexed(1, &"x".into()).len(), 2);
    }

    #[test]
    fn distinct_values_sorted() {
        let mut t = make();
        t.insert(vec![1.into(), "b".into()]).unwrap();
        t.insert(vec![2.into(), "a".into()]).unwrap();
        t.insert(vec![3.into(), "a".into()]).unwrap();
        assert_eq!(
            t.distinct_values(1),
            vec![Value::from("a"), Value::from("b")]
        );
    }
}
