//! Disk-resident columnar storage: a versioned binary table format plus
//! the save/open entry points behind [`Database::save`] and
//! [`Database::open`].
//!
//! A saved database is a directory: one `MANIFEST.etb` mapping table names
//! to table files, and one `t<index>.etb` per table (index = position in
//! the catalog's deterministic order). Every file is magic + version +
//! checksummed, length-prefixed segments ([`format`]).
//!
//! `open` verifies **every** segment checksum up front (streamed in fixed
//! 64 KiB chunks, nothing decoded), then decodes only the schema and
//! string-arena segments eagerly; column segments come back as `Paged`
//! [`crate::table::ColumnStore`]s that load on first touch ([`paged`]).
//! The up-front sweep is what lets the lazy path stay infallible-looking
//! to the executor: any truncation, magic/version mismatch or bit flip
//! surfaces at `open` as a typed [`crate::Error::Storage`] naming the
//! offending path and segment — never a panic.
//!
//! Symbols rehydrate deterministically: each table file carries its own
//! string arena (distinct strings in first-use order), re-interned in
//! order at open through one bulk arena-lock acquisition
//! ([`crate::intern::intern_all`]).

pub mod codec;
pub mod format;
pub mod paged;
pub mod spill;

pub use format::{FORMAT_VERSION, MANIFEST_FILE};

use crate::database::Database;
use crate::intern::intern_all;
use crate::table::{ColumnStore, Table};
use crate::{Error, Result};
use format::{
    decode_arena, decode_manifest, decode_schema, encode_manifest, encode_table,
    manifest_segment_name, scan_file, table_segment_name, MAGIC_MANIFEST, MAGIC_TABLE,
};
use paged::ColumnPart;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// Saves every table of `db` under `dir` (created if missing): one
/// `t<index>.etb` per table in catalog order plus the manifest. Existing
/// files of the same names are overwritten; the write is deterministic,
/// so saving the same database twice produces byte-identical files.
pub fn save_database(db: &Database, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)
        .map_err(|e| Error::Storage(format!("{}: cannot create: {e}", dir.display())))?;
    let mut entries = Vec::new();
    for (i, table) in db.tables().enumerate() {
        let file = format!("t{i}.etb");
        let path = dir.join(&file);
        fs::write(&path, encode_table(table))
            .map_err(|e| Error::Storage(format!("{}: write failed: {e}", path.display())))?;
        entries.push((table.schema().name.clone(), file));
    }
    let mpath = dir.join(MANIFEST_FILE);
    fs::write(&mpath, encode_manifest(&entries))
        .map_err(|e| Error::Storage(format!("{}: write failed: {e}", mpath.display())))?;
    Ok(())
}

/// Opens a database saved by [`save_database`]. All file checksums are
/// verified now; column data is paged in lazily on first touch (only the
/// primary-key columns load eagerly, to rebuild the PK indexes).
pub fn open_database(dir: &Path) -> Result<Database> {
    let mpath = dir.join(MANIFEST_FILE);
    let scanned = scan_file(&mpath, MAGIC_MANIFEST, 1, manifest_segment_name)?;
    if scanned.segments.len() != 1 {
        return Err(Error::Storage(format!(
            "{}: expected exactly one segment, found {}",
            mpath.display(),
            scanned.segments.len()
        )));
    }
    let mctx = format!("{}: manifest segment", mpath.display());
    let entries = decode_manifest(&scanned.payloads[0], &mctx)?;
    let mut tables = BTreeMap::new();
    for (name, file) in entries {
        let tpath = dir.join(&file);
        let table = open_table(&tpath)?;
        if table.schema().name != name {
            return Err(Error::Storage(format!(
                "{}: holds table `{}` but the manifest maps it to `{name}`",
                tpath.display(),
                table.schema().name
            )));
        }
        if tables.insert(name.clone(), table).is_some() {
            return Err(Error::Storage(format!("{mctx}: duplicate table `{name}`")));
        }
    }
    Ok(Database::from_tables(tables))
}

fn open_table(path: &Path) -> Result<Table> {
    let scanned = scan_file(path, MAGIC_TABLE, 2, table_segment_name)?;
    let seg_ctx = |i: usize| format!("{}: {}", path.display(), table_segment_name(i));
    if scanned.segments.len() < 2 {
        return Err(Error::Storage(format!(
            "{}: only {} segment(s); a table file needs schema + arena + columns",
            path.display(),
            scanned.segments.len()
        )));
    }
    let (schema, rows, pk_order) = decode_schema(&scanned.payloads[0], &seg_ctx(0))?;
    if scanned.segments.len() != 2 + schema.arity() {
        return Err(Error::Storage(format!(
            "{}: {} segment(s) for {} schema column(s) (expected {})",
            path.display(),
            scanned.segments.len(),
            schema.arity(),
            2 + schema.arity()
        )));
    }
    let arena_strings = decode_arena(&scanned.payloads[1], &seg_ctx(1))?;
    let syms = Arc::new(intern_all(&arena_strings));
    let shared_path = Arc::new(path.to_path_buf());
    let cols: Vec<ColumnStore> = schema
        .columns
        .iter()
        .enumerate()
        .map(|(ci, col)| {
            let ctx = format!("{} (`{}.{}`)", seg_ctx(2 + ci), schema.name, col.name);
            let part = ColumnPart::new(
                Arc::clone(&shared_path),
                scanned.segments[2 + ci],
                ctx,
                col.data_type,
                rows,
                Arc::clone(&syms),
            );
            ColumnStore::paged(Arc::new(part), rows)
        })
        .collect();
    verify_pk_order(path, &schema, &cols, rows, &pk_order)?;
    Table::from_parts(schema, cols, rows, pk_order)
}

/// Proves the stored PK order before the table is allowed to trust it:
/// the key sequence read through the permutation (identity when empty)
/// must be **strictly** ascending. Strictness is the uniqueness proof —
/// a duplicate key or a repeated permutation entry both surface as a
/// non-ascending adjacent pair. Touches only the PK columns, so non-key
/// columns stay lazy; comparisons run over the typed column bodies
/// directly (same order as [`crate::value::Value::total_cmp`] on non-NULL
/// same-type cells, NULLs first) to keep open-time cost one linear sweep.
/// Entry bounds were checked by `decode_schema`.
fn verify_pk_order(
    path: &Path,
    schema: &crate::schema::TableSchema,
    cols: &[ColumnStore],
    rows: usize,
    pk_order: &[u32],
) -> Result<()> {
    use crate::intern::Sym;
    use crate::table::ColumnData;
    use std::cmp::Ordering;
    let pk_cols = schema.primary_key_indices().map_err(|e| {
        Error::Storage(format!(
            "{}: schema segment: invalid schema: {e}",
            path.display()
        ))
    })?;
    if pk_cols.is_empty() {
        if !pk_order.is_empty() {
            return Err(Error::Storage(format!(
                "{}: schema segment: pk order present but the table has no primary key",
                path.display()
            )));
        }
        return Ok(());
    }
    let parts: Vec<_> = pk_cols.iter().map(|&c| cols[c].raw_parts()).collect();
    let cmp_rows = |a: usize, b: usize| -> Ordering {
        for &(data, nulls) in &parts {
            let o = match (nulls.get(a), nulls.get(b)) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => match data {
                    ColumnData::Int(v) => v[a].cmp(&v[b]),
                    ColumnData::Float(v) => v[a].total_cmp(&v[b]),
                    ColumnData::Sym(v) => Sym::cmp_str(v[a], v[b]),
                    ColumnData::Bool(v) => v[a].cmp(&v[b]),
                },
            };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    };
    let row_at = |i: usize| {
        if pk_order.is_empty() {
            i
        } else {
            pk_order[i] as usize
        }
    };
    for i in 1..rows {
        if cmp_rows(row_at(i - 1), row_at(i)) != Ordering::Less {
            return Err(Error::Storage(format!(
                "{}: schema segment: pk order is not strictly ascending at position {i} \
                 (table `{}`: duplicate or misordered primary key)",
                path.display(),
                schema.name
            )));
        }
    }
    Ok(())
}
