//! Byte-level primitives for the on-disk table format: little-endian
//! encode/decode helpers and the CRC32 used to checksum every segment.
//!
//! Everything here is bounds-checked and returns typed [`Error::Storage`]
//! values naming the file and segment a malformed read came from — the
//! corrupt-input contract of [`crate::storage`] (never a panic) is enforced
//! at this layer, so the format layer above can decode without per-field
//! error plumbing.

use crate::{Error, Result};

/// Fixed chunk size for streaming file reads (checksum verification and
/// paged column loads). 64 KiB keeps peak transient memory independent of
/// segment size without paying a syscall per value.
pub const CHUNK: usize = 64 * 1024;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven and
/// incremental so large segments can be checksummed in streamed chunks.
/// Eight tables implement "slicing-by-8": the update loop folds eight
/// input bytes per iteration instead of one, which matters because `open`
/// checksums every byte of every snapshot file before trusting it — the
/// sweep sits directly on the cold-start path the snapshot cache exists
/// to shorten.
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[t][i]: the CRC of byte i followed by t zero bytes — lets the
    // slicing loop account for each input byte's final position at once.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Incremental CRC-32 state; feed bytes with [`Crc32::update`], read the
/// checksum with [`Crc32::finish`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum (slicing-by-8: eight bytes per
    /// loop iteration, identical checksums to the byte-at-a-time form).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ c;
            c = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][w[4] as usize]
                ^ CRC_TABLES[2][w[5] as usize]
                ^ CRC_TABLES[1][w[6] as usize]
                ^ CRC_TABLES[0][w[7] as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Little-endian payload builder for segment bodies.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        PayloadWriter::default()
    }

    /// The finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (spill writers use this to bound batch sizes).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (NaN payloads survive).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string exceeds u32 length"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Copies a length-checked slice into a fixed array (the slices come from
/// [`PayloadReader::take`], which already verified the length).
fn arr<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(b);
    a
}

/// Bounds-checked little-endian reader over one decoded segment payload.
///
/// Carries a context string (`"<path>: <segment> segment"`) so every
/// malformed-input error names exactly where in which file it tripped.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    ctx: &'a str,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload; `ctx` names the file and segment for errors.
    pub fn new(buf: &'a [u8], ctx: &'a str) -> Self {
        PayloadReader { buf, pos: 0, ctx }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(Error::Storage(format!(
                "{}: truncated payload reading {what} at offset {} (need {n} bytes, {} left)",
                self.ctx,
                self.pos,
                self.buf.len() - self.pos
            ))),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(arr(self.take(4, what)?)))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(arr(self.take(8, what)?)))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(arr(self.take(8, what)?)))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting counts that are
    /// absurd for the payload that holds them (a corrupted length would
    /// otherwise drive a giant allocation before the truncation check).
    pub fn count(&mut self, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if v > remaining {
            return Err(Error::Storage(format!(
                "{}: implausible {what} count {v} (only {remaining} payload bytes remain)",
                self.ctx
            )));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            Error::Storage(format!(
                "{}: invalid UTF-8 in {what} at offset {}",
                self.ctx,
                self.pos - n
            ))
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly (trailing bytes mean the
    /// declared lengths and the actual content disagree — corruption).
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Storage(format!(
                "{}: {} trailing bytes after payload end",
                self.ctx,
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_is_incremental() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn sliced_crc_matches_bytewise_at_every_alignment() {
        // The slicing-by-8 fast path must agree with the reference
        // byte-at-a-time recurrence for every length mod 8 and across
        // split points that land mid-word.
        let data: Vec<u8> = (0u32..257)
            .map(|i| (i.wrapping_mul(151) >> 3) as u8)
            .collect();
        let reference = |bytes: &[u8]| -> u32 {
            let mut c = !0u32;
            for &b in bytes {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        };
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
        for split in [1, 3, 7, 8, 9, 63] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), reference(&data), "split {split}");
        }
    }

    #[test]
    fn round_trips_every_primitive() {
        let mut w = PayloadWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes, "test");
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("d").unwrap(), -42);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("f").unwrap().is_nan());
        assert_eq!(r.str("g").unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_name_context_and_field() {
        let mut r = PayloadReader::new(&[1, 2], "f.etb: schema segment");
        let err = r.u32("row count").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("f.etb: schema segment"), "{msg}");
        assert!(msg.contains("row count"), "{msg}");
    }

    #[test]
    fn implausible_count_is_rejected() {
        let mut w = PayloadWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes, "f.etb: arena segment");
        let msg = r.count("string").unwrap_err().to_string();
        assert!(msg.contains("implausible"), "{msg}");
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = PayloadWriter::new();
        w.u32(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = PayloadReader::new(&bytes, "f.etb: schema segment");
        let msg = r.str("table name").unwrap_err().to_string();
        assert!(msg.contains("invalid UTF-8"), "{msg}");
    }
}
