//! The lazy half of the `Paged` column backing: a [`ColumnPart`] describes
//! where one column's segment lives on disk and how to decode it; the
//! first touch of the column (via `ColumnStore::data`/`get`) loads it with
//! fixed-size chunk reads, re-verifies the segment checksum, and caches
//! the decoded buffers for every clone of the store.
//!
//! Each load opens its **own** file handle on the shared table path and
//! drops it when the read finishes. Loads happen at most once per column
//! (the decoded buffers live in the store's `OnceLock` cell afterwards),
//! so the steady state costs zero descriptors — and, crucially for the
//! serving layer, two connections paging in different columns of the same
//! table never serialize on a shared descriptor lock: one slow cold read
//! cannot stall every other client. No `unsafe`/mmap is involved —
//! `#![forbid(unsafe_code)]` stands.

use super::format::{decode_column, read_segment_payload, SegmentRef};
use crate::intern::Sym;
use crate::table::{ColumnData, NullBitmap};
use crate::value::DataType;
use crate::{Error, Result};
use std::fs::File;
use std::path::PathBuf;
use std::sync::Arc;

/// One on-disk column: everything needed to load and decode its segment
/// on first touch. Built by `storage::open` after the whole file's
/// checksums have already been verified once.
#[derive(Debug)]
pub struct ColumnPart {
    /// The table file's path, shared by all the table's columns; every
    /// load opens an independent handle on it (see the module docs).
    path: Arc<PathBuf>,
    /// Where the column's payload lives and what it must hash to.
    seg: SegmentRef,
    /// `"<path>: column segment N (`Table.col`)"` — names the source in
    /// every load failure.
    ctx: String,
    /// Declared type from the schema segment (cross-checked on decode).
    ty: DataType,
    /// Row count from the schema segment (cross-checked on decode).
    rows: usize,
    /// File-local arena id -> process symbol, shared by all the table's
    /// columns (built once at open by interning the arena segment).
    syms: Arc<Vec<Sym>>,
}

impl ColumnPart {
    /// Describes one column segment of an opened table file.
    pub(crate) fn new(
        path: Arc<PathBuf>,
        seg: SegmentRef,
        ctx: String,
        ty: DataType,
        rows: usize,
        syms: Arc<Vec<Sym>>,
    ) -> Self {
        ColumnPart {
            path,
            seg,
            ctx,
            ty,
            rows,
            syms,
        }
    }

    /// Loads and decodes the column: open a private handle, chunked read,
    /// checksum re-verify, typed decode. Errors only if the file changed
    /// (moved, truncated, rewritten) since `open` verified it, or the
    /// medium failed.
    pub(crate) fn load(&self) -> Result<(ColumnData, NullBitmap)> {
        let mut f = File::open(self.path.as_ref())
            .map_err(|e| Error::Storage(format!("{}: cannot reopen: {e}", self.path.display())))?;
        let payload = read_segment_payload(&mut f, &self.seg, &self.ctx)?;
        decode_column(&payload, &self.ctx, self.ty, self.rows, &self.syms)
    }

    /// The infallible entry point `ColumnStore`'s lazy cell needs.
    ///
    /// # Panics
    /// Only when the table file was truncated, rewritten or bit-flipped
    /// *after* `storage::open` verified every segment checksum — external
    /// mutation of an open snapshot, which no query API can cause. The
    /// message names the path and segment.
    pub(crate) fn load_or_die(&self) -> (ColumnData, NullBitmap) {
        match self.load() {
            Ok(parts) => parts,
            Err(e) => panic!("paged column load failed after a verified open: {e}"),
        }
    }
}
