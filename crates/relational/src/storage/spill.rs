//! Grace hash-join spilling: disk partitioning for joins whose build side
//! exceeds the memory budget ([`crate::exec::budget`]).
//!
//! When [`crate::colrel`]'s budget check trips, both join inputs are
//! hash-partitioned into [`FANOUT`] spill files under a per-join temp
//! directory, then joined partition by partition: a partition whose build
//! side fits the budget runs through the exact same in-memory build/probe
//! kernel (and worker-pool morsel probe) as an unspilled join; an
//! oversized partition is re-partitioned recursively with a depth-salted
//! hash, and at [`MAX_DEPTH`] — where re-partitioning can no longer split
//! (e.g. one all-duplicate key) — a sort-based join takes over, so the
//! bound degrades to a different algorithm, never to an error.
//!
//! Results are **byte-identical** to the in-memory join at every budget,
//! fan-out and pool size: equal keys always share a partition, each
//! partition preserves input row order, and the concatenated per-partition
//! pairs are stably re-sorted by probe position — exactly the probe-major,
//! chain-minor (descending build position) sequence the resident kernel
//! emits.
//!
//! Spill files reuse the checksummed segment codec ([`super::codec`]):
//! an 8-byte magic, then length-prefixed CRC32-verified segments of
//! `(probe-or-build position, key)` records. Any truncation, bit flip or
//! bad magic surfaces as a typed [`Error::Storage`] naming the file —
//! never a panic. The per-join directory is removed when the join
//! finishes (RAII, panic-safe); record counts ride in memory, not on
//! disk, so a reader never trusts an unverified length beyond the
//! per-segment plausibility check.

use super::codec::{crc32, PayloadReader, PayloadWriter};
use crate::exec::hash::KeyHasher;
use crate::exec::{budget, pool};
use crate::intern::Sym;
use crate::value::Value;
use crate::{Error, Result};
use std::fs::{self, File};
use std::hash::{Hash, Hasher};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Partitions per level. 16 divides a build side that just missed the
/// budget comfortably below it in one level while keeping the number of
/// open spill files (2 sides × fan-out) small.
pub const FANOUT: usize = 16;

/// Maximum re-partitioning depth. 16^4 partitions already splits any
/// realistic skew; a partition still over budget here (an all-duplicate
/// key, or a budget smaller than one hash entry) falls back to the
/// sort-based join rather than erroring.
pub const MAX_DEPTH: u32 = 4;

/// Flush threshold for buffered spill segments: bounds both the writer's
/// resident batch and the reader's per-segment allocation.
const FLUSH_BYTES: usize = 32 * 1024;

/// Spill-file magic: identifies the transient join-spill format (not the
/// durable table format, which has its own magic and version).
const MAGIC: &[u8; 8] = b"ETSPILL1";

/// A key type that can ride through a spill file. Equality, hashing and
/// ordering must agree (equal keys must hash and sort together — the
/// partitioner and the sort-based fallback both rely on it), and the
/// encoding must round-trip within the process.
pub trait SpillKey: Hash + Eq + Ord + Clone + Send + Sync + 'static {
    /// Resident bytes per key, for the budget estimate
    /// ([`budget::join_build_estimate`]).
    const KEY_BYTES: usize;

    /// Appends this key to a spill segment.
    fn encode(&self, w: &mut PayloadWriter);

    /// Reads one key back; `ctx` names the file for error messages.
    fn decode(r: &mut PayloadReader<'_>, ctx: &str) -> Result<Self>;
}

impl SpillKey for i64 {
    const KEY_BYTES: usize = 8;

    fn encode(&self, w: &mut PayloadWriter) {
        w.i64(*self);
    }

    fn decode(r: &mut PayloadReader<'_>, _ctx: &str) -> Result<i64> {
        r.i64("spill key")
    }
}

impl SpillKey for u32 {
    const KEY_BYTES: usize = 4;

    fn encode(&self, w: &mut PayloadWriter) {
        w.u32(*self);
    }

    fn decode(r: &mut PayloadReader<'_>, _ctx: &str) -> Result<u32> {
        r.u32("spill key")
    }
}

impl SpillKey for Value {
    const KEY_BYTES: usize = 16;

    fn encode(&self, w: &mut PayloadWriter) {
        match self {
            Value::Null => w.u8(0),
            Value::Int(i) => {
                w.u8(1);
                w.i64(*i);
            }
            Value::Float(f) => {
                w.u8(2);
                w.f64(*f);
            }
            // Text spills as the string, not the symbol id: re-interning
            // on decode yields the same symbol in-process and keeps the
            // format meaningful even across processes.
            Value::Text(s) => {
                w.u8(3);
                w.str(s.as_str());
            }
            Value::Bool(b) => {
                w.u8(4);
                w.u8(u8::from(*b));
            }
        }
    }

    fn decode(r: &mut PayloadReader<'_>, ctx: &str) -> Result<Value> {
        Ok(match r.u8("spill key tag")? {
            0 => Value::Null,
            1 => Value::Int(r.i64("spill key")?),
            2 => Value::Float(r.f64("spill key")?),
            3 => Value::Text(Sym::intern(&r.str("spill key")?)),
            4 => Value::Bool(r.u8("spill key")? != 0),
            tag => {
                return Err(Error::Storage(format!(
                    "{ctx}: unknown spill key tag {tag}"
                )))
            }
        })
    }
}

/// Which of the [`FANOUT`] partitions `key` lands in at `depth`. The
/// depth salt is folded into the hash state *before* the key, so each
/// recursion level re-distributes a parent partition independently.
fn partition_of<K: Hash>(key: &K, depth: u32) -> usize {
    let mut h = KeyHasher::default();
    h.write_u64(0x5157_11A7_511A_11EDu64 ^ u64::from(depth).wrapping_mul(0x9E37_79B9_97F4_A7C5));
    key.hash(&mut h);
    (h.finish() % FANOUT as u64) as usize
}

/// Monotonic per-process counter naming per-join spill directories.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Default root for spill directories: `$TMPDIR/etable-spill`.
fn default_root() -> PathBuf {
    std::env::temp_dir().join("etable-spill")
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{}: {what}: {e}", path.display()))
}

/// A per-join spill directory, removed (best-effort, panic-safe) when the
/// join finishes.
struct SpillDir {
    path: PathBuf,
    /// Names spill files uniquely across recursion levels.
    file_seq: AtomicU64,
}

impl SpillDir {
    fn create_in(root: &Path) -> Result<SpillDir> {
        let path = root.join(format!(
            "{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ));
        fs::create_dir_all(&path).map_err(|e| io_err(&path, "cannot create spill dir", e))?;
        Ok(SpillDir {
            path,
            file_seq: AtomicU64::new(0),
        })
    }

    fn next_file(&self) -> PathBuf {
        self.path.join(format!(
            "s{}.spill",
            self.file_seq.fetch_add(1, AtomicOrdering::Relaxed)
        ))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
        // Leave no empty root behind; fails (and is ignored) while other
        // joins still have live spill dirs.
        if let Some(root) = self.path.parent() {
            let _ = fs::remove_dir(root);
        }
    }
}

/// Buffered writer for one partition's spill file. The file is created
/// lazily on the first record, so empty partitions cost nothing.
struct PartWriter {
    path: PathBuf,
    file: Option<BufWriter<File>>,
    batch: PayloadWriter,
    count: u64,
}

impl PartWriter {
    fn new(path: PathBuf) -> PartWriter {
        PartWriter {
            path,
            file: None,
            batch: PayloadWriter::new(),
            count: 0,
        }
    }

    fn push<K: SpillKey>(&mut self, pos: u32, key: &K) -> Result<()> {
        self.batch.u32(pos);
        key.encode(&mut self.batch);
        self.count += 1;
        if self.batch.len() >= FLUSH_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let payload = std::mem::take(&mut self.batch).into_bytes();
        let file = match self.file.as_mut() {
            Some(f) => f,
            None => {
                let f = File::create(&self.path)
                    .map_err(|e| io_err(&self.path, "cannot create spill file", e))?;
                let mut w = BufWriter::new(f);
                w.write_all(MAGIC)
                    .map_err(|e| io_err(&self.path, "spill write failed", e))?;
                self.file.insert(w)
            }
        };
        file.write_all(&(payload.len() as u64).to_le_bytes())
            .and_then(|()| file.write_all(&payload))
            .and_then(|()| file.write_all(&crc32(&payload).to_le_bytes()))
            .map_err(|e| io_err(&self.path, "spill write failed", e))
    }

    /// Flushes and closes; returns the file (with its record count) or
    /// `None` for an empty partition.
    fn finish(mut self) -> Result<Option<PartFile>> {
        self.flush()?;
        match self.file.take() {
            None => Ok(None),
            Some(mut f) => {
                f.flush()
                    .map_err(|e| io_err(&self.path, "spill flush failed", e))?;
                Ok(Some(PartFile {
                    path: self.path,
                    count: self.count,
                }))
            }
        }
    }
}

/// One written (non-empty) partition file and its record count.
struct PartFile {
    path: PathBuf,
    count: u64,
}

/// Streams a spill file segment by segment, handing each decoded record
/// batch to `f`. Verifies the magic and every segment CRC; any mismatch
/// is a typed [`Error::Storage`] naming the file.
fn for_each_segment<K: SpillKey>(
    path: &Path,
    mut f: impl FnMut(Vec<(u32, K)>) -> Result<()>,
) -> Result<()> {
    let total = fs::metadata(path)
        .map_err(|e| io_err(path, "cannot stat spill file", e))?
        .len();
    let mut file = File::open(path).map_err(|e| io_err(path, "cannot open spill file", e))?;
    let ctx = path.display().to_string();
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)
        .map_err(|e| io_err(path, "truncated spill header", e))?;
    if &magic != MAGIC {
        return Err(Error::Storage(format!("{ctx}: bad spill magic")));
    }
    let mut offset = MAGIC.len() as u64;
    while offset < total {
        let remaining = total - offset;
        if remaining < 12 {
            return Err(Error::Storage(format!(
                "{ctx}: truncated spill segment header at offset {offset}"
            )));
        }
        let mut len_bytes = [0u8; 8];
        file.read_exact(&mut len_bytes)
            .map_err(|e| io_err(path, "spill read failed", e))?;
        let len = u64::from_le_bytes(len_bytes);
        if len > remaining - 12 {
            return Err(Error::Storage(format!(
                "{ctx}: implausible spill segment length {len} at offset {offset}"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload)
            .map_err(|e| io_err(path, "spill read failed", e))?;
        let mut crc_bytes = [0u8; 4];
        file.read_exact(&mut crc_bytes)
            .map_err(|e| io_err(path, "spill read failed", e))?;
        if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
            return Err(Error::Storage(format!(
                "{ctx}: spill segment checksum mismatch at offset {offset}"
            )));
        }
        offset += 12 + len;
        let mut r = PayloadReader::new(&payload, &ctx);
        let mut records = Vec::new();
        while r.remaining() > 0 {
            let pos = r.u32("spill record position")?;
            let key = K::decode(&mut r, &ctx)?;
            records.push((pos, key));
        }
        f(records)?;
    }
    Ok(())
}

/// Reads a whole partition file into memory (used once the partition's
/// build side is known to fit the budget, and by the sort fallback).
fn read_records<K: SpillKey>(part: &PartFile) -> Result<Vec<(u32, K)>> {
    let mut out = Vec::with_capacity(usize::try_from(part.count).unwrap_or(0));
    for_each_segment(&part.path, |batch| {
        out.extend(batch);
        Ok(())
    })?;
    Ok(out)
}

/// Partitions one side: scans `0..n`, skipping `None` (NULL) keys, and
/// scatters `(position, key)` records across [`FANOUT`] spill files.
fn partition_side<K: SpillKey>(
    dir: &SpillDir,
    n: usize,
    key_of: impl Fn(usize) -> Option<K>,
    depth: u32,
) -> Result<Vec<Option<PartFile>>> {
    let mut writers: Vec<PartWriter> = (0..FANOUT)
        .map(|_| PartWriter::new(dir.next_file()))
        .collect();
    for i in 0..n {
        if let Some(k) = key_of(i) {
            writers[partition_of(&k, depth)].push(i as u32, &k)?;
        }
    }
    writers.into_iter().map(PartWriter::finish).collect()
}

/// Re-partitions an on-disk partition one level deeper, streaming segment
/// by segment (bounded memory), then drops the parent file.
fn repartition<K: SpillKey>(
    dir: &SpillDir,
    parent: PartFile,
    depth: u32,
) -> Result<Vec<Option<PartFile>>> {
    let mut writers: Vec<PartWriter> = (0..FANOUT)
        .map(|_| PartWriter::new(dir.next_file()))
        .collect();
    for_each_segment::<K>(&parent.path, |batch| {
        for (pos, k) in batch {
            writers[partition_of(&k, depth)].push(pos, &k)?;
        }
        Ok(())
    })?;
    let _ = fs::remove_file(&parent.path);
    writers.into_iter().map(PartWriter::finish).collect()
}

/// Joins one partition pair, appending `(build, probe)` position pairs to
/// `out`. Fits-in-budget partitions run the resident kernel; oversized
/// ones recurse; at the depth bound the sort-based fallback takes over.
fn join_partition<K: SpillKey>(
    dir: &SpillDir,
    bpart: Option<PartFile>,
    ppart: Option<PartFile>,
    depth: u32,
    limit: u64,
    out: &mut Vec<(u32, u32)>,
) -> Result<()> {
    let (Some(bp), Some(pp)) = (bpart, ppart) else {
        // An empty side means no matches; drop whichever file exists.
        return Ok(());
    };
    let build_n = usize::try_from(bp.count).unwrap_or(usize::MAX);
    if budget::join_build_estimate(build_n, K::KEY_BYTES) > limit {
        if depth <= MAX_DEPTH {
            let children_b = repartition::<K>(dir, bp, depth)?;
            let children_p = repartition::<K>(dir, pp, depth)?;
            for (cb, cp) in children_b.into_iter().zip(children_p) {
                join_partition::<K>(dir, cb, cp, depth + 1, limit, out)?;
            }
            return Ok(());
        }
        return sorted_join::<K>(&bp, &pp, out);
    }
    let brecs = read_records::<K>(&bp)?;
    let precs: Arc<Vec<(u32, K)>> = Arc::new(read_records::<K>(&pp)?);
    let _ = fs::remove_file(&bp.path);
    let _ = fs::remove_file(&pp.path);
    // The exact resident kernel (chained index + pool-morselized probe)
    // over partition-local indices; records are in original row order, so
    // local chain order maps to the same descending-position chain order
    // the unspilled join emits.
    let probe = Arc::clone(&precs);
    let (lb, lp) = crate::colrel::join_positions_resident(
        brecs.len(),
        |i| Some(brecs[i].1.clone()),
        precs.len(),
        move |i| Some(probe[i].1.clone()),
    )?;
    out.extend(
        lb.into_iter()
            .zip(lp)
            .map(|(b, p)| (brecs[b as usize].0, precs[p as usize].0)),
    );
    Ok(())
}

/// Sort-based fallback at the recursion bound: build records sort by
/// `(key, position)`; each probe record binary-searches its equal range
/// and emits matches in *descending* build position — the resident
/// kernel's chain order. Probing is morselized on the worker pool like
/// every other probe loop.
fn sorted_join<K: SpillKey>(bp: &PartFile, pp: &PartFile, out: &mut Vec<(u32, u32)>) -> Result<()> {
    let mut brecs = read_records::<K>(bp)?;
    brecs.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    let build = Arc::new(brecs);
    let precs = Arc::new(read_records::<K>(pp)?);
    let _ = fs::remove_file(&bp.path);
    let _ = fs::remove_file(&pp.path);
    let (b2, p2) = (Arc::clone(&build), Arc::clone(&precs));
    let pairs: Vec<(u32, u32)> = pool::current().run_chunks(precs.len(), move |range| {
        let mut part = Vec::new();
        for i in range {
            let (pos, ref key) = p2[i];
            let lo = b2.partition_point(|(_, k)| k < key);
            let hi = b2.partition_point(|(_, k)| k <= key);
            for &(bpos, _) in b2[lo..hi].iter().rev() {
                part.push((bpos, pos));
            }
        }
        Ok(part)
    })?;
    out.extend(pairs);
    Ok(())
}

/// The Grace hash join: both sides partitioned to disk under `limit`
/// bytes of build-side budget, joined partition by partition, pairs
/// re-sorted into the resident kernel's probe-major order. The returned
/// vectors are byte-identical to
/// [`join_positions_resident`](crate::colrel::join_positions_resident)
/// on the same inputs.
pub(crate) fn grace_join<K, B, P>(
    limit: u64,
    build_n: usize,
    build_key: B,
    probe_n: usize,
    probe_key: P,
) -> Result<(Vec<u32>, Vec<u32>)>
where
    K: SpillKey,
    B: Fn(usize) -> Option<K>,
    P: Fn(usize) -> Option<K>,
{
    grace_join_in(
        &default_root(),
        limit,
        build_n,
        build_key,
        probe_n,
        probe_key,
    )
}

/// [`grace_join`] with an explicit spill root (tests use a scratch root
/// so cleanup can be asserted without cross-test interference).
fn grace_join_in<K, B, P>(
    root: &Path,
    limit: u64,
    build_n: usize,
    build_key: B,
    probe_n: usize,
    probe_key: P,
) -> Result<(Vec<u32>, Vec<u32>)>
where
    K: SpillKey,
    B: Fn(usize) -> Option<K>,
    P: Fn(usize) -> Option<K>,
{
    let dir = SpillDir::create_in(root)?;
    let bparts = partition_side(&dir, build_n, build_key, 0)?;
    let pparts = partition_side(&dir, probe_n, probe_key, 0)?;
    let mut pairs = Vec::new();
    for (bp, pp) in bparts.into_iter().zip(pparts) {
        join_partition::<K>(&dir, bp, pp, 1, limit, &mut pairs)?;
    }
    // Equal keys share a partition, so every pair for one probe row sits
    // in exactly one partition, already in chain order; a stable sort by
    // probe position therefore reconstructs the resident kernel's exact
    // emission sequence.
    pairs.sort_by_key(|&(_, p)| p);
    Ok(pairs.into_iter().unzip())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colrel::join_positions_resident;
    use crate::exec::pool::{with_pool, Pool, PoolConfig};

    static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_root() -> PathBuf {
        std::env::temp_dir().join(format!(
            "etable-spill-test-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ))
    }

    fn write_part<K: SpillKey>(dir: &SpillDir, records: &[(u32, K)]) -> PartFile {
        let mut w = PartWriter::new(dir.next_file());
        for (pos, key) in records {
            w.push(*pos, key).unwrap();
        }
        w.finish().unwrap().expect("nonempty")
    }

    #[test]
    fn records_round_trip_through_spill_files() {
        let root = scratch_root();
        let dir = SpillDir::create_in(&root).unwrap();
        let vals = vec![
            (0u32, Value::Int(i64::MIN)),
            (1, Value::Float(-0.0)),
            (2, Value::Float(9_223_372_036_854_775_808.0)),
            (3, Value::text("spill-round-trip")),
            (4, Value::Bool(true)),
            (5, Value::Null),
        ];
        let part = write_part(&dir, &vals);
        assert_eq!(part.count, vals.len() as u64);
        let back: Vec<(u32, Value)> = read_records(&part).unwrap();
        assert_eq!(back.len(), vals.len());
        for ((pa, va), (pb, vb)) in vals.iter().zip(&back) {
            assert_eq!(pa, pb);
            // Compare through total order incl. float bits via Display to
            // keep -0.0 distinguishable from 0.0 in the assertion.
            assert_eq!(va.to_string(), vb.to_string());
        }
        drop(dir);
        assert!(!root.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn corrupted_spill_segment_is_a_typed_storage_error() {
        let root = scratch_root();
        let dir = SpillDir::create_in(&root).unwrap();
        let records: Vec<(u32, i64)> = (0..100).map(|i| (i, i as i64 * 3)).collect();
        let part = write_part(&dir, &records);
        // Flip one payload byte past the magic + segment length header.
        let mut bytes = fs::read(&part.path).unwrap();
        bytes[20] ^= 0x40;
        fs::write(&part.path, &bytes).unwrap();
        let err = read_records::<i64>(&part).unwrap_err();
        let Error::Storage(msg) = &err else {
            panic!("wrong error kind: {err:?}");
        };
        assert!(msg.contains("checksum mismatch"), "{msg}");
        assert!(msg.contains("s0.spill"), "{msg}");
    }

    #[test]
    fn truncated_spill_file_is_a_typed_storage_error() {
        let root = scratch_root();
        let dir = SpillDir::create_in(&root).unwrap();
        let records: Vec<(u32, i64)> = (0..50).map(|i| (i, 7)).collect();
        let part = write_part(&dir, &records);
        let bytes = fs::read(&part.path).unwrap();
        fs::write(&part.path, &bytes[..bytes.len() - 3]).unwrap();
        let err = read_records::<i64>(&part).unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err:?}");
    }

    /// Builds the (build, probe) key tables used by the equivalence tests:
    /// duplicate-heavy, NULL-sprinkled, with boundary values in the pool.
    fn keys(n: usize, salt: i64) -> Vec<Option<i64>> {
        (0..n)
            .map(|i| {
                let x = (i as i64).wrapping_mul(2654435761).wrapping_add(salt);
                match x % 7 {
                    0 => None,
                    1 => Some(i64::MAX),
                    2 => Some(i64::MIN),
                    _ => Some(x % 13),
                }
            })
            .collect()
    }

    #[test]
    fn grace_join_is_byte_identical_to_resident_at_every_budget_and_pool() {
        let build = keys(700, 1);
        let probe = keys(900, 2);
        let b2 = build.clone();
        let p2 = probe.clone();
        let expected =
            join_positions_resident(build.len(), |i| b2[i], probe.len(), move |i| p2[i]).unwrap();
        // Budget 1 forces recursion to the bound (nothing ever fits) and
        // exercises the sort fallback; larger budgets stop at level 1.
        for budget_bytes in [1u64, 64, 600, 4096] {
            for threads in [1usize, 4] {
                let pool = Pool::new(PoolConfig::fixed(threads));
                let root = scratch_root();
                let (b3, p3) = (build.clone(), probe.clone());
                let got = with_pool(&pool, || {
                    grace_join_in(
                        &root,
                        budget_bytes,
                        b3.len(),
                        |i| b3[i],
                        p3.len(),
                        move |i| p3[i],
                    )
                })
                .unwrap();
                assert_eq!(
                    got, expected,
                    "budget {budget_bytes}, pool {threads}: spilled join diverged"
                );
                assert!(!root.exists(), "spill scratch not cleaned up");
            }
        }
    }

    #[test]
    fn all_duplicate_keys_hit_the_sort_fallback_and_agree() {
        // One key everywhere: no re-partitioning level can split it, so a
        // tiny budget rides recursion to MAX_DEPTH and must take the
        // sort-based path (never an error).
        let n = 300;
        let expected =
            join_positions_resident(n, |_| Some(42i64), n, move |_| Some(42i64)).unwrap();
        let root = scratch_root();
        let got = grace_join_in(&root, 1, n, |_| Some(42i64), n, move |_| Some(42i64)).unwrap();
        assert_eq!(got, expected);
        assert!(!root.exists());
    }

    #[test]
    fn value_keys_spill_and_agree_including_boundary_floats() {
        let build: Vec<Option<Value>> = vec![
            Some(Value::Int(i64::MAX)),
            Some(Value::Int(i64::MAX - 1)),
            Some(Value::Int(i64::MIN)),
            Some(Value::Float(9_223_372_036_854_775_808.0)),
            Some(Value::Float(-0.0)),
            Some(Value::Int(0)),
            None,
            Some(Value::text("spill-k")),
        ];
        let probe: Vec<Option<Value>> = vec![
            Some(Value::Float(9_223_372_036_854_775_808.0)),
            Some(Value::Int(i64::MAX)),
            Some(Value::Float(0.0)),
            Some(Value::Float(-9_223_372_036_854_775_808.0)),
            Some(Value::text("spill-k")),
            None,
        ];
        let (b2, p2) = (build.clone(), probe.clone());
        let expected =
            join_positions_resident(build.len(), |i| b2[i], probe.len(), move |i| p2[i]).unwrap();
        let root = scratch_root();
        let (b3, p3) = (build.clone(), probe.clone());
        let got = grace_join_in(&root, 1, b3.len(), |i| b3[i], p3.len(), move |i| p3[i]).unwrap();
        assert_eq!(got, expected);
        // Sanity on the semantics themselves: probe 0 (the 2^63 float)
        // matches only build 3 (the same float) — in particular not
        // Int(i64::MAX) or Int(i64::MAX - 1), which the old widening
        // comparison conflated with it; Float(0.0) matches both -0.0 and
        // Int(0).
        let matches: Vec<(u32, u32)> = got.0.iter().copied().zip(got.1.iter().copied()).collect();
        assert!(matches.contains(&(5, 2)) && matches.contains(&(4, 2)));
        assert!(matches.iter().all(|&(b, p)| p != 0 || b == 3));
        assert!(matches.contains(&(3, 0)));
        assert!(matches.contains(&(0, 1)), "Int(i64::MAX) = Int(i64::MAX)");
        assert!(matches.contains(&(2, 3)), "Int(i64::MIN) = Float(-2^63)");
        assert!(!root.exists());
    }

    #[test]
    fn empty_sides_spill_cleanly() {
        let root = scratch_root();
        let got = grace_join_in::<i64, _, _>(&root, 1, 0, |_| None, 5, move |_| Some(1)).unwrap();
        assert_eq!(got, (Vec::new(), Vec::new()));
        assert!(!root.exists());
    }
}
