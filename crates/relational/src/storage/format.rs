//! The versioned binary table format: file headers, checksummed
//! length-prefixed segments, and the encoders/decoders for each segment
//! kind (schema, string arena, typed columns).
//!
//! ## File layout (all integers little-endian)
//!
//! A table file (`t<index>.etb`) is:
//!
//! ```text
//! magic "ETBL" (4 bytes) | format version u32 (4 bytes)
//! segment*                                   (then exactly EOF)
//! segment := payload_len u64 | payload | crc32(payload) u32
//! ```
//!
//! Segments appear in fixed order: one **schema** segment, one **arena**
//! segment, then one **column** segment per schema column. The manifest
//! file (`MANIFEST.etb`, magic `"ETBM"`) holds a single segment mapping
//! table names to table files. See DESIGN.md §On-disk format for the
//! byte-exact payload layouts.
//!
//! Decoding is hostile-input-safe: every length is bounds-checked against
//! what the file actually holds before any allocation sized by it, and
//! every failure is a typed [`Error::Storage`] naming the path and segment.

use super::codec::{Crc32, PayloadReader, PayloadWriter, CHUNK};
use crate::intern::Sym;
use crate::schema::{Column, ForeignKey, TableSchema};
use crate::table::{ColumnData, NullBitmap, Table};
use crate::value::DataType;
use crate::{Error, Result};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// Magic bytes opening every table file.
pub const MAGIC_TABLE: [u8; 4] = *b"ETBL";
/// Magic bytes opening the manifest file.
pub const MAGIC_MANIFEST: [u8; 4] = *b"ETBM";
/// Current format version; files written by this build carry it, and
/// [`scan_file`] rejects any other value (no cross-version reads in v1).
pub const FORMAT_VERSION: u32 = 1;
/// File-local arena id written at NULL positions of a `Sym` column
/// (canonical placeholder: NULL cells never reference the arena).
pub const NULL_SYM_SENTINEL: u32 = u32::MAX;

/// Manifest file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST.etb";

fn type_code(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
    }
}

fn type_from_code(code: u8, ctx: &str) -> Result<DataType> {
    match code {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Text),
        3 => Ok(DataType::Bool),
        other => Err(Error::Storage(format!(
            "{ctx}: unknown column type code {other}"
        ))),
    }
}

/// Semantic name of segment `index` in a table file (error messages).
pub fn table_segment_name(index: usize) -> String {
    match index {
        0 => "schema segment".to_string(),
        1 => "arena segment".to_string(),
        n => format!("column segment {}", n - 2),
    }
}

/// Semantic name of segment `index` in the manifest (error messages).
pub fn manifest_segment_name(_index: usize) -> String {
    "manifest segment".to_string()
}

/// Location and checksum of one segment's payload inside its file.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef {
    /// Byte offset of the payload (past the length prefix).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload, as stored in the file.
    pub crc: u32,
}

/// Result of [`scan_file`]: every segment's location, plus the decoded
/// payload bytes of the first `keep_payloads` segments.
#[derive(Debug)]
pub struct ScannedFile {
    /// All segments, in file order.
    pub segments: Vec<SegmentRef>,
    /// Payload bytes of segments `0..keep_payloads`.
    pub payloads: Vec<Vec<u8>>,
}

/// Opens `path`, validates magic and version, then walks every segment
/// verifying its CRC in fixed-size chunk reads — without decoding — so all
/// corruption classes (truncation anywhere, bad magic, wrong version, bit
/// flips in any segment) surface here as typed errors, never later as a
/// panic. Payloads of the first `keep_payloads` segments are returned;
/// `name_of` maps a segment index to its semantic name for errors.
pub fn scan_file(
    path: &Path,
    magic: [u8; 4],
    keep_payloads: usize,
    name_of: fn(usize) -> String,
) -> Result<ScannedFile> {
    let ctx = path.display();
    let mut f = File::open(path).map_err(|e| Error::Storage(format!("{ctx}: cannot open: {e}")))?;
    let file_len = f
        .metadata()
        .map_err(|e| Error::Storage(format!("{ctx}: cannot stat: {e}")))?
        .len();
    let mut header = [0u8; 8];
    f.read_exact(&mut header).map_err(|_| {
        Error::Storage(format!(
            "{ctx}: truncated header ({file_len} bytes, need at least 8)"
        ))
    })?;
    if header[..4] != magic {
        return Err(Error::Storage(format!(
            "{ctx}: bad magic {:02x?} (expected {:02x?})",
            &header[..4],
            magic
        )));
    }
    let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if version != FORMAT_VERSION {
        return Err(Error::Storage(format!(
            "{ctx}: unsupported format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let mut segments = Vec::new();
    let mut payloads = Vec::new();
    let mut offset = 8u64;
    while offset < file_len {
        let name = name_of(segments.len());
        if file_len - offset < 8 {
            return Err(Error::Storage(format!(
                "{ctx}: {name}: truncated length prefix at offset {offset}"
            )));
        }
        let mut lenbuf = [0u8; 8];
        f.read_exact(&mut lenbuf)
            .map_err(|e| Error::Storage(format!("{ctx}: {name}: read failed: {e}")))?;
        let len = u64::from_le_bytes(lenbuf);
        offset += 8;
        let needed = len.checked_add(4);
        if needed.is_none() || needed.unwrap_or(u64::MAX) > file_len - offset {
            return Err(Error::Storage(format!(
                "{ctx}: {name}: declared payload of {len} bytes overruns the file \
                 ({} bytes remain)",
                file_len - offset
            )));
        }
        let keep = payloads.len() < keep_payloads;
        // `len` was just bounds-checked against the real file size, so this
        // capacity cannot be driven past the file length by corruption.
        let mut kept: Vec<u8> = Vec::with_capacity(if keep { len as usize } else { 0 });
        let mut crc = Crc32::new();
        let mut left = len;
        let mut chunk = vec![0u8; CHUNK.min(len as usize).max(1)];
        while left > 0 {
            let n = CHUNK.min(left as usize);
            f.read_exact(&mut chunk[..n])
                .map_err(|e| Error::Storage(format!("{ctx}: {name}: read failed: {e}")))?;
            crc.update(&chunk[..n]);
            if keep {
                kept.extend_from_slice(&chunk[..n]);
            }
            left -= n as u64;
        }
        let mut crcbuf = [0u8; 4];
        f.read_exact(&mut crcbuf)
            .map_err(|e| Error::Storage(format!("{ctx}: {name}: read failed: {e}")))?;
        let stored = u32::from_le_bytes(crcbuf);
        let computed = crc.finish();
        if stored != computed {
            return Err(Error::Storage(format!(
                "{ctx}: {name}: checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            )));
        }
        segments.push(SegmentRef {
            offset,
            len,
            crc: stored,
        });
        if keep {
            payloads.push(kept);
        }
        offset += len + 4;
    }
    Ok(ScannedFile { segments, payloads })
}

/// Re-reads and re-verifies one segment's payload (the paged column load
/// path; a mismatch here means the file changed after a successful open).
pub fn read_segment_payload(f: &mut File, seg: &SegmentRef, ctx: &str) -> Result<Vec<u8>> {
    f.seek(SeekFrom::Start(seg.offset))
        .map_err(|e| Error::Storage(format!("{ctx}: seek failed: {e}")))?;
    let mut payload = Vec::with_capacity(seg.len as usize);
    let mut left = seg.len;
    let mut chunk = vec![0u8; CHUNK.min(seg.len as usize).max(1)];
    while left > 0 {
        let n = CHUNK.min(left as usize);
        f.read_exact(&mut chunk[..n])
            .map_err(|e| Error::Storage(format!("{ctx}: read failed: {e}")))?;
        payload.extend_from_slice(&chunk[..n]);
        left -= n as u64;
    }
    let computed = super::codec::crc32(&payload);
    if computed != seg.crc {
        return Err(Error::Storage(format!(
            "{ctx}: checksum mismatch on lazy load (stored {:08x}, computed {computed:08x})",
            seg.crc
        )));
    }
    Ok(payload)
}

/// Appends one `payload_len | payload | crc` segment to a file image.
pub fn append_segment(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&super::codec::crc32(payload).to_le_bytes());
}

/// The null bitmap as exactly `ceil(rows / 64)` words, zero-extended and
/// with bits past `rows` masked off — the canonical on-disk shape, so the
/// encoding never depends on a bitmap's allocation history.
fn packed_words(nulls: &NullBitmap, rows: usize) -> Vec<u64> {
    let nwords = rows.div_ceil(64);
    let mut words = nulls.words().to_vec();
    words.resize(nwords, 0);
    words.truncate(nwords);
    if !rows.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (rows % 64)) - 1;
        }
    }
    words
}

/// The row indices of `table` in ascending primary-key order, or an empty
/// vec when rows are already ascending (the common case for generated
/// corpora) or the table has no PK. Stored in the schema segment so `open`
/// can prove PK uniqueness with one O(rows) comparison pass instead of
/// building a hash index on the cold-start path.
fn pk_order(table: &Table) -> Vec<u32> {
    let pk_cols = table.schema().primary_key_indices().unwrap_or_default();
    if pk_cols.is_empty() || table.is_empty() {
        return Vec::new();
    }
    let rows = table.len();
    let key = |i: usize| -> Vec<crate::value::Value> {
        pk_cols.iter().map(|&c| table.column(c).get(i)).collect()
    };
    let ascending = (1..rows).all(|i| {
        key(i - 1)
            .iter()
            .zip(key(i).iter())
            .map(|(a, b)| a.total_cmp(b))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
            == std::cmp::Ordering::Less
    });
    if ascending {
        return Vec::new();
    }
    let keys: Vec<Vec<crate::value::Value>> = (0..rows).map(key).collect();
    let mut perm: Vec<u32> = (0..rows as u32).collect();
    perm.sort_unstable_by(|&a, &b| {
        keys[a as usize]
            .iter()
            .zip(keys[b as usize].iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    perm
}

/// Encodes a whole table into its file image: header, then schema, arena
/// and column segments. Deterministic for a given table: NULL positions
/// are written as canonical placeholders, the arena holds each distinct
/// string once, in first-use (column-major, row-ascending) order, and the
/// PK order section is a pure function of the key values.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let rows = table.len();
    let schema = table.schema();

    // One pass over the Sym columns builds the file-local arena while
    // encoding each column body; payload assembly order is irrelevant to
    // the file order, which stays schema, arena, columns.
    let mut local: HashMap<Sym, u32> = HashMap::new();
    let mut arena: Vec<&'static str> = Vec::new();
    let mut column_payloads: Vec<Vec<u8>> = Vec::with_capacity(schema.arity());
    for (ci, col) in schema.columns.iter().enumerate() {
        let store = table.column(ci);
        let (data, nulls) = store.raw_parts();
        let mut w = PayloadWriter::new();
        w.u8(type_code(col.data_type));
        w.u64(rows as u64);
        let words = packed_words(nulls, rows);
        w.u32(words.len() as u32);
        for word in &words {
            w.u64(*word);
        }
        match data {
            ColumnData::Int(v) => {
                for i in 0..rows {
                    w.i64(if nulls.get(i) { 0 } else { v[i] });
                }
            }
            ColumnData::Float(v) => {
                for i in 0..rows {
                    w.f64(if nulls.get(i) { 0.0 } else { v[i] });
                }
            }
            ColumnData::Sym(v) => {
                for i in 0..rows {
                    if nulls.get(i) {
                        w.u32(NULL_SYM_SENTINEL);
                    } else {
                        let id = *local.entry(v[i]).or_insert_with(|| {
                            arena.push(v[i].as_str());
                            (arena.len() - 1) as u32
                        });
                        w.u32(id);
                    }
                }
            }
            ColumnData::Bool(v) => {
                for i in 0..rows {
                    w.u8(u8::from(!nulls.get(i) && v[i]));
                }
            }
        }
        column_payloads.push(w.into_bytes());
    }

    let mut sw = PayloadWriter::new();
    sw.str(&schema.name);
    sw.u64(rows as u64);
    sw.u32(schema.arity() as u32);
    for col in &schema.columns {
        sw.str(&col.name);
        sw.u8(type_code(col.data_type));
        sw.u8(u8::from(col.nullable));
    }
    sw.u32(schema.primary_key.len() as u32);
    for pk in &schema.primary_key {
        sw.str(pk);
    }
    sw.u32(schema.foreign_keys.len() as u32);
    for fk in &schema.foreign_keys {
        sw.u32(fk.columns.len() as u32);
        for c in &fk.columns {
            sw.str(c);
        }
        sw.str(&fk.referenced_table);
        sw.u32(fk.referenced_columns.len() as u32);
        for c in &fk.referenced_columns {
            sw.str(c);
        }
    }
    let order = pk_order(table);
    sw.u32(order.len() as u32);
    for i in &order {
        sw.u32(*i);
    }

    let mut aw = PayloadWriter::new();
    aw.u64(arena.len() as u64);
    for s in &arena {
        aw.str(s);
    }

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_TABLE);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    append_segment(&mut out, &sw.into_bytes());
    append_segment(&mut out, &aw.into_bytes());
    for p in &column_payloads {
        append_segment(&mut out, p);
    }
    out
}

/// Decodes the schema segment into a [`TableSchema`], the row count, and
/// the stored PK order (empty = rows already ascending, or no PK). Entries
/// are bounds-checked here; strict-ascending verification — which needs
/// the column data — happens in [`crate::storage`]'s open path.
pub fn decode_schema(payload: &[u8], ctx: &str) -> Result<(TableSchema, usize, Vec<u32>)> {
    let mut r = PayloadReader::new(payload, ctx);
    let name = r.str("table name")?;
    let rows = r.u64("row count")?;
    let rows = usize::try_from(rows)
        .ok()
        .filter(|&n| n <= crate::table::MAX_ROWS)
        .ok_or_else(|| Error::Storage(format!("{ctx}: implausible row count {rows}")))?;
    let n_cols = r.u32("column count")?;
    let mut columns = Vec::new();
    for _ in 0..n_cols {
        let cname = r.str("column name")?;
        let ty = type_from_code(r.u8("column type")?, ctx)?;
        let nullable = r.u8("column nullability")? != 0;
        columns.push(Column {
            name: cname,
            data_type: ty,
            nullable,
        });
    }
    let n_pk = r.u32("primary-key count")?;
    let mut primary_key = Vec::new();
    for _ in 0..n_pk {
        primary_key.push(r.str("primary-key column")?);
    }
    let n_fk = r.u32("foreign-key count")?;
    let mut foreign_keys = Vec::new();
    for _ in 0..n_fk {
        let n = r.u32("foreign-key column count")?;
        let mut cols = Vec::new();
        for _ in 0..n {
            cols.push(r.str("foreign-key column")?);
        }
        let referenced_table = r.str("referenced table")?;
        let n = r.u32("referenced column count")?;
        let mut ref_cols = Vec::new();
        for _ in 0..n {
            ref_cols.push(r.str("referenced column")?);
        }
        foreign_keys.push(ForeignKey {
            columns: cols,
            referenced_table,
            referenced_columns: ref_cols,
        });
    }
    let n_order = r.u32("pk-order count")? as usize;
    if n_order != 0 && n_order != rows {
        return Err(Error::Storage(format!(
            "{ctx}: pk order lists {n_order} rows, table has {rows}"
        )));
    }
    let mut pk_order = Vec::new();
    for _ in 0..n_order {
        let idx = r.u32("pk-order entry")?;
        if idx as usize >= rows {
            return Err(Error::Storage(format!(
                "{ctx}: pk-order entry {idx} out of range for {rows} rows"
            )));
        }
        pk_order.push(idx);
    }
    r.expect_end()?;
    Ok((
        TableSchema {
            name,
            columns,
            primary_key,
            foreign_keys,
        },
        rows,
        pk_order,
    ))
}

/// Decodes the arena segment: the table's distinct strings in file-local
/// id order.
pub fn decode_arena(payload: &[u8], ctx: &str) -> Result<Vec<String>> {
    let mut r = PayloadReader::new(payload, ctx);
    let count = r.count("arena string")?;
    let mut strings = Vec::new();
    for _ in 0..count {
        strings.push(r.str("arena string")?);
    }
    r.expect_end()?;
    Ok(strings)
}

/// Decodes one column segment into its typed body and null bitmap.
///
/// `syms` maps file-local arena ids to process symbols (built by interning
/// the arena segment in order); `expected` and `rows` come from the schema
/// segment and are cross-checked against the column's own header.
pub fn decode_column(
    payload: &[u8],
    ctx: &str,
    expected: DataType,
    rows: usize,
    syms: &[Sym],
) -> Result<(ColumnData, NullBitmap)> {
    let mut r = PayloadReader::new(payload, ctx);
    let ty = type_from_code(r.u8("column type")?, ctx)?;
    if ty != expected {
        return Err(Error::Storage(format!(
            "{ctx}: column type {ty:?} disagrees with the schema segment ({expected:?})"
        )));
    }
    let declared = r.u64("row count")?;
    if declared != rows as u64 {
        return Err(Error::Storage(format!(
            "{ctx}: column row count {declared} disagrees with the schema segment ({rows})"
        )));
    }
    let nwords = r.u32("null-word count")? as usize;
    if nwords != rows.div_ceil(64) {
        return Err(Error::Storage(format!(
            "{ctx}: null bitmap holds {nwords} words, expected {} for {rows} rows",
            rows.div_ceil(64)
        )));
    }
    // Exact-size check before any allocation sized by the counts above:
    // the remaining payload must be precisely the bitmap plus the body.
    let width = match ty {
        DataType::Int | DataType::Float => 8usize,
        DataType::Text => 4,
        DataType::Bool => 1,
    };
    let expected_bytes = nwords * 8 + rows * width;
    if r.remaining() != expected_bytes {
        return Err(Error::Storage(format!(
            "{ctx}: body is {} bytes, expected {expected_bytes} for {rows} rows",
            r.remaining()
        )));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(r.u64("null word")?);
    }
    let nulls = NullBitmap::from_words(words);
    let data = match ty {
        DataType::Int => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.i64("int cell")?);
            }
            ColumnData::Int(v.into())
        }
        DataType::Float => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.f64("float cell")?);
            }
            ColumnData::Float(v.into())
        }
        DataType::Text => {
            let mut v = Vec::with_capacity(rows);
            for i in 0..rows {
                let id = r.u32("sym cell")?;
                if id == NULL_SYM_SENTINEL {
                    if !nulls.get(i) {
                        return Err(Error::Storage(format!(
                            "{ctx}: non-NULL row {i} holds the NULL sym sentinel"
                        )));
                    }
                    v.push(Sym::intern(""));
                } else {
                    let sym = syms.get(id as usize).copied().ok_or_else(|| {
                        Error::Storage(format!(
                            "{ctx}: row {i} references arena id {id}, arena holds {}",
                            syms.len()
                        ))
                    })?;
                    v.push(sym);
                }
            }
            ColumnData::Sym(v.into())
        }
        DataType::Bool => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.u8("bool cell")? != 0);
            }
            ColumnData::Bool(v.into())
        }
    };
    r.expect_end()?;
    Ok((data, nulls))
}

/// Encodes the manifest: `(table name, file name)` pairs in catalog order.
pub fn encode_manifest(entries: &[(String, String)]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u32(entries.len() as u32);
    for (name, file) in entries {
        w.str(name);
        w.str(file);
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC_MANIFEST);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    append_segment(&mut out, &w.into_bytes());
    out
}

/// Decodes the manifest segment into `(table name, file name)` pairs.
pub fn decode_manifest(payload: &[u8], ctx: &str) -> Result<Vec<(String, String)>> {
    let mut r = PayloadReader::new(payload, ctx);
    let count = r.u32("table count")?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let name = r.str("table name")?;
        let file = r.str("table file")?;
        entries.push((name, file));
    }
    r.expect_end()?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_names_follow_layout() {
        assert_eq!(table_segment_name(0), "schema segment");
        assert_eq!(table_segment_name(1), "arena segment");
        assert_eq!(table_segment_name(2), "column segment 0");
        assert_eq!(table_segment_name(5), "column segment 3");
        assert_eq!(manifest_segment_name(0), "manifest segment");
    }

    #[test]
    fn type_codes_round_trip() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
        ] {
            assert_eq!(type_from_code(type_code(ty), "t").unwrap(), ty);
        }
        assert!(type_from_code(9, "t")
            .unwrap_err()
            .to_string()
            .contains("type code 9"));
    }

    #[test]
    fn manifest_round_trips() {
        let entries = vec![
            ("Authors".to_string(), "t0.etb".to_string()),
            ("Papers".to_string(), "t1.etb".to_string()),
        ];
        let bytes = encode_manifest(&entries);
        assert_eq!(&bytes[..4], &MAGIC_MANIFEST);
        // Single segment: skip header + length prefix, take payload.
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let payload = &bytes[16..16 + len];
        assert_eq!(decode_manifest(payload, "m").unwrap(), entries);
    }

    #[test]
    fn schema_payload_round_trips() {
        let schema = TableSchema::new(
            "Papers",
            vec![
                Column::new("id", DataType::Int),
                Column::nullable("title", DataType::Text),
            ],
        )
        .with_primary_key(&["id"])
        .with_foreign_key(ForeignKey::single("id", "Other", "id"));
        let table = Table::new(schema.clone()).unwrap();
        let bytes = encode_table(&table);
        let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let payload = &bytes[16..16 + len];
        let (decoded, rows, order) = decode_schema(payload, "t").unwrap();
        assert_eq!(decoded, schema);
        assert_eq!(rows, 0);
        assert!(order.is_empty());
    }

    #[test]
    fn pk_order_is_empty_for_sorted_rows_and_a_permutation_otherwise() {
        let schema = TableSchema::new(
            "T",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ],
        )
        .with_primary_key(&["a", "b"]);
        let mut sorted = Table::new(schema.clone()).unwrap();
        for (a, b) in [(1, 1), (1, 2), (2, 0)] {
            sorted.insert(vec![a.into(), b.into()]).unwrap();
        }
        assert!(pk_order(&sorted).is_empty());
        let mut shuffled = Table::new(schema).unwrap();
        for (a, b) in [(2, 0), (1, 2), (1, 1)] {
            shuffled.insert(vec![a.into(), b.into()]).unwrap();
        }
        assert_eq!(pk_order(&shuffled), vec![2, 1, 0]);
    }
}
