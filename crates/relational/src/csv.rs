//! Loading external data from CSV text (RFC-4180-style quoting) into
//! tables, with values coerced to the column types. This is how a
//! downstream user brings their own database into the engine before
//! translating it to a typed graph.

use crate::database::Database;
use crate::table::Row;
use crate::value::{DataType, Value};
use crate::{Error, Result};

/// Parses one CSV record (no trailing newline), honoring double-quoted
/// fields with `""` escapes.
pub fn parse_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => in_quotes = false,
                c => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Parse("unterminated quoted CSV field".into()));
    }
    fields.push(cur);
    Ok(fields)
}

/// Coerces a CSV field into a typed value. Empty fields become NULL.
pub fn coerce(field: &str, ty: DataType) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::Parse(format!("`{field}` is not an integer"))),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::Parse(format!("`{field}` is not a number"))),
        DataType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
            other => Err(Error::Parse(format!("`{other}` is not a boolean"))),
        },
        DataType::Text => Ok(Value::text(field)),
    }
}

/// Loads CSV text into an existing table. The first record must be a header
/// naming a subset (or reordering) of the table's columns; columns absent
/// from the header are filled with NULL. Returns the number of inserted
/// rows. Foreign keys are enforced per row.
pub fn load_csv(db: &mut Database, table: &str, csv: &str) -> Result<usize> {
    let schema = db.table(table)?.schema().clone();
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| Error::Parse("empty CSV input".into()))?;
    let header_fields = parse_record(header)?;
    let mapping: Vec<usize> = header_fields
        .iter()
        .map(|name| {
            schema
                .column_index(name.trim())
                .ok_or_else(|| Error::UnknownColumn(name.trim().to_string()))
        })
        .collect::<Result<_>>()?;

    let mut inserted = 0usize;
    for (lineno, line) in lines.enumerate() {
        let fields = parse_record(line)?;
        if fields.len() != mapping.len() {
            return Err(Error::Parse(format!(
                "record {} has {} fields, header has {}",
                lineno + 2,
                fields.len(),
                mapping.len()
            )));
        }
        let mut row: Row = vec![Value::Null; schema.arity()];
        for (field, &col) in fields.iter().zip(&mapping) {
            row[col] = coerce(field, schema.columns[col].data_type)?;
        }
        db.insert(table, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ForeignKey, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "Conferences",
                vec![
                    Column::new("id", DataType::Int),
                    Column::new("acronym", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Papers",
                vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("conference_id", DataType::Int),
                    Column::new("title", DataType::Text),
                    Column::nullable("year", DataType::Int),
                ],
            )
            .with_primary_key(&["id"])
            .with_foreign_key(ForeignKey::single("conference_id", "Conferences", "id")),
        )
        .unwrap();
        db
    }

    #[test]
    fn record_parsing_with_quotes() {
        assert_eq!(parse_record("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            parse_record("1,\"a, b\",\"he said \"\"hi\"\"\"").unwrap(),
            vec!["1", "a, b", "he said \"hi\""]
        );
        assert_eq!(parse_record("x,,z").unwrap(), vec!["x", "", "z"]);
        assert!(parse_record("\"open").is_err());
    }

    #[test]
    fn loads_with_header_mapping_and_nulls() {
        let mut d = db();
        load_csv(&mut d, "Conferences", "id,acronym\n1,SIGMOD\n2,KDD\n").unwrap();
        // Reordered + partial header: year omitted -> NULL.
        let n = load_csv(
            &mut d,
            "Papers",
            "title,id,conference_id\n\"Usable, very\",10,1\nPlain title,11,2\n",
        )
        .unwrap();
        assert_eq!(n, 2);
        let papers = d.table("Papers").unwrap();
        let first = papers.row(0).unwrap();
        assert_eq!(first[2], "Usable, very".into());
        assert_eq!(first[3], Value::Null);
    }

    #[test]
    fn type_and_fk_errors_surface() {
        let mut d = db();
        load_csv(&mut d, "Conferences", "id,acronym\n1,SIGMOD\n").unwrap();
        // Bad int.
        assert!(load_csv(&mut d, "Papers", "id,title\nxyz,T\n").is_err());
        // Dangling FK.
        assert!(load_csv(&mut d, "Papers", "id,conference_id,title\n10,99,T\n").is_err());
        // Unknown header column.
        assert!(load_csv(&mut d, "Papers", "id,nope\n1,2\n").is_err());
        // Arity mismatch.
        assert!(load_csv(&mut d, "Papers", "id,title\n1\n").is_err());
    }

    #[test]
    fn empty_field_nullability_enforced() {
        let mut d = db();
        load_csv(&mut d, "Conferences", "id,acronym\n1,SIGMOD\n").unwrap();
        // title is NOT NULL; an empty field must be rejected.
        assert!(load_csv(&mut d, "Papers", "id,title\n1,\n").is_err());
    }

    #[test]
    fn bool_coercion() {
        assert_eq!(coerce("yes", DataType::Bool).unwrap(), Value::Bool(true));
        assert_eq!(coerce("F", DataType::Bool).unwrap(), Value::Bool(false));
        assert!(coerce("maybe", DataType::Bool).is_err());
    }

    #[test]
    fn loads_into_a_reopened_database() {
        // CSV ingest composes with disk snapshots: loading into a
        // reopened (paged-backend) database behaves exactly like loading
        // into the resident original — inserts force the touched columns
        // resident and FK enforcement still sees the on-disk rows.
        let mut resident = db();
        load_csv(
            &mut resident,
            "Conferences",
            "id,acronym\n1,SIGMOD\n2,KDD\n",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("etable-csv-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        resident.save(&dir).unwrap();
        let mut reopened = Database::open(&dir).unwrap();
        let csv = "title,id,conference_id\n\"Usable, very\",10,1\nPlain title,11,2\n";
        assert_eq!(load_csv(&mut reopened, "Papers", csv).unwrap(), 2);
        // FK enforcement consults the reopened Conferences rows.
        assert!(load_csv(&mut reopened, "Papers", "id,conference_id,title\n12,99,T\n").is_err());
        load_csv(&mut resident, "Papers", csv).unwrap();
        assert_eq!(
            reopened.table("Papers").unwrap().row(1).unwrap(),
            resident.table("Papers").unwrap().row(1).unwrap()
        );
        reopened.check_integrity().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_csv_translates_to_tgm() {
        // The promised end-to-end: CSV -> relational -> typed graph.
        let mut d = db();
        load_csv(&mut d, "Conferences", "id,acronym\n1,SIGMOD\n").unwrap();
        load_csv(
            &mut d,
            "Papers",
            "id,conference_id,title,year\n10,1,Usable DBs,2007\n",
        )
        .unwrap();
        // (Translation itself is exercised in etable-tgm tests; here we just
        // confirm the loaded data satisfies its preconditions.)
        d.check_integrity().unwrap();
    }
}
