//! Parallel base-table scans on the persistent worker pool.
//!
//! A scan splits the row range of a [`Table`] into fixed [`CHUNK_ROWS`]-row
//! morsels and evaluates them on the persistent executor pool
//! ([`crate::exec::pool`]); per-chunk selection vectors are merged in chunk
//! order, so output row order — and which error is reported when a
//! predicate fails — is byte-identical to a sequential scan at any pool
//! size. The pool size is resolved **once**, at pool construction
//! (`ETABLE_SCAN_THREADS`, clamped, else available parallelism capped at
//! [`MAX_DEFAULT_THREADS`]); the per-scan hot path never touches the
//! environment. Predicates are compiled once per scan
//! ([`crate::exec::pred::CompiledPred`]), so LIKE/equality/IN over text
//! columns test dictionary bitmaps instead of re-matching strings per row.

use crate::exec::pool;
use crate::exec::pred::CompiledPred;
use crate::expr::Expr;
use crate::table::{ColumnStore, Row, Table};
use crate::value::Value;
use crate::Result;

pub use crate::exec::pool::{CHUNK_ROWS, MAX_DEFAULT_THREADS};

/// The deduplicated column positions `pred` actually reads (ascending).
/// Shared with [`crate::colrel::ColRelation::select`], which evaluates
/// residual predicates over only these columns.
pub(crate) fn pred_columns(pred: &Expr) -> Vec<usize> {
    let mut cols = pred.referenced_columns();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Row ids of `table` satisfying `pred`, ascending.
///
/// This is the parallel pushdown scan: its output is the selection vector
/// the executor's columnar pipeline
/// ([`ColRelation`](crate::colrel::ColRelation)) carries end to end, so a
/// filtered-out row is never touched again after the scan — no row is
/// materialized, not even for hits. Each morsel evaluates the compiled
/// predicate over **only the columns it references** (one reusable
/// full-width buffer, untouched slots stay NULL), so a selective filter
/// over a wide table never pays per-row work proportional to the table
/// width. Morsel closures capture `Arc`-shared column handles
/// ([`ColumnStore`] clones are O(1)), which is what lets them run on
/// persistent `'static` workers without copying data. Row ids are `u32`
/// across the selection-vector pipeline ([`Table`]s are capped at
/// `u32::MAX` rows).
pub fn filter_indices(table: &Table, pred: &Expr) -> Result<Vec<u32>> {
    let schema = table.schema();
    let width = schema.columns.len();
    let compiled = CompiledPred::compile(pred, |c| schema.columns.get(c).map(|col| col.data_type));
    let stores: Vec<(usize, ColumnStore)> = pred_columns(pred)
        .into_iter()
        .filter(|&c| c < width)
        .map(|c| (c, table.column(c).clone()))
        .collect();
    pool::current().run_chunks(table.len(), move |range| {
        let mut buf: Row = vec![Value::Null; width];
        let mut out = Vec::new();
        for i in range {
            for (c, store) in &stores {
                buf[*c] = store.get(i);
            }
            if compiled.matches(&buf)? {
                out.push(i as u32);
            }
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::pool::{with_pool, Pool, PoolConfig};
    use crate::schema::{Column, TableSchema};
    use crate::value::{DataType, Value};

    fn table(rows: usize) -> Table {
        let mut t = Table::new(
            TableSchema::new(
                "S",
                vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("v", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        t.append_rows((0..rows as i64).map(|i| {
            vec![
                i.into(),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    (i % 10).into()
                },
            ]
        }))
        .unwrap();
        t
    }

    #[test]
    fn sharded_filter_matches_sequential() {
        // 3 chunks worth of rows, so the pool genuinely shards.
        let t = table(3 * CHUNK_ROWS + 17);
        let pred = Expr::col(1).ge(Expr::lit(5));
        let mut seq = Vec::new();
        let mut buf = Row::new();
        for i in 0..t.len() {
            t.read_row(i, &mut buf);
            if pred.matches(&buf).unwrap() {
                seq.push(i as u32);
            }
        }
        for threads in [1, 2, 8] {
            let pool = Pool::new(PoolConfig::fixed(threads));
            let got = with_pool(&pool, || filter_indices(&t, &pred).unwrap());
            assert_eq!(got, seq, "pool size {threads}");
        }
    }

    #[test]
    fn error_reporting_is_deterministic() {
        // `v LIKE` errors on INT; the reported error must be the first
        // failing row in row order even though later chunks also fail.
        let t = table(4 * CHUNK_ROWS);
        let pred = Expr::col(1).like("a%");
        let mut buf = Row::new();
        let seq_err = (0..t.len())
            .find_map(|i| {
                t.read_row(i, &mut buf);
                pred.matches(&buf).err()
            })
            .unwrap()
            .to_string();
        for threads in [1, 2, 8] {
            let pool = Pool::new(PoolConfig::fixed(threads));
            let err = with_pool(&pool, || filter_indices(&t, &pred).unwrap_err());
            assert_eq!(err.to_string(), seq_err, "pool size {threads}");
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let t = table(10);
        let pred = Expr::col(0).lt(Expr::lit(5));
        assert_eq!(filter_indices(&t, &pred).unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
