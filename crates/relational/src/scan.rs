//! Sharded parallel base-table scans.
//!
//! A scan splits the row range of a [`Table`] into fixed-size chunks of
//! [`CHUNK_ROWS`] rows and evaluates them on a small pool of scoped worker
//! threads. Workers pull chunk indices from a shared atomic counter (so a
//! slow chunk never stalls the others), and the per-chunk results are
//! merged **in chunk order** afterwards — output row order, and which error
//! is reported when a predicate fails, are therefore byte-identical to a
//! sequential scan regardless of the pool size. The pool size comes from
//! the `ETABLE_SCAN_THREADS` environment variable (clamped to 1..=64),
//! defaulting to the machine's available parallelism capped at
//! [`MAX_DEFAULT_THREADS`]; `ETABLE_SCAN_THREADS=1` or inputs of at most
//! one chunk run inline on the calling thread.

use crate::expr::Expr;
use crate::table::{Row, Table};
use crate::value::Value;
use crate::Result;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Rows per scan shard. Fixed so chunk boundaries (and thus the merge
/// order) never depend on the pool size.
pub const CHUNK_ROWS: usize = 2048;

/// Default cap on the worker pool when `ETABLE_SCAN_THREADS` is unset.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Resolves the scan worker-pool size.
///
/// Reads `ETABLE_SCAN_THREADS` on every call (not cached) so tests can
/// exercise different pool sizes within one process; the variable only
/// affects how work is distributed, never the result.
pub fn scan_threads() -> usize {
    pool_size(std::env::var("ETABLE_SCAN_THREADS").ok().as_deref())
}

/// The pool-size policy behind [`scan_threads`], pure so it can be tested
/// without mutating the process environment: a parseable override is
/// clamped to 1..=64; anything else falls back to the machine's available
/// parallelism capped at [`MAX_DEFAULT_THREADS`].
fn pool_size(override_var: Option<&str>) -> usize {
    if let Some(v) = override_var {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 64);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Runs `per_chunk` over every [`CHUNK_ROWS`]-sized shard of `0..n_rows`
/// and concatenates the chunk outputs in chunk order.
///
/// The first `Err` in chunk order wins (within a chunk, the first failing
/// row), exactly as a sequential left-to-right scan would report it.
fn run_sharded<T, F>(n_rows: usize, per_chunk: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> Result<Vec<T>> + Sync,
{
    let n_chunks = n_rows.div_ceil(CHUNK_ROWS).max(1);
    let workers = scan_threads().min(n_chunks);
    if workers <= 1 {
        return per_chunk(0..n_rows);
    }
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    // Each worker drains chunks off the shared counter and tags its output
    // with the chunk index; determinism comes from the merge, not from the
    // (racy) execution order. Once any chunk errors, workers stop claiming
    // new chunks — the counter hands chunks out in index order, so every
    // chunk below the erroring one was already claimed and completes, and
    // the merge still reports the first error in chunk order.
    let mut tagged: Vec<(usize, Result<Vec<T>>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !failed.load(Ordering::Relaxed) {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * CHUNK_ROWS;
                        let hi = ((c + 1) * CHUNK_ROWS).min(n_rows);
                        let res = per_chunk(lo..hi);
                        if res.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        local.push((c, res));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(c, _)| *c);
    let mut merged = Vec::new();
    for (_, chunk) in tagged {
        merged.extend(chunk?);
    }
    Ok(merged)
}

/// The deduplicated column positions `pred` actually reads (ascending).
/// Shared with [`crate::colrel::ColRelation::select`], which evaluates
/// residual predicates over only these columns.
pub(crate) fn pred_columns(pred: &Expr) -> Vec<usize> {
    let mut cols = pred.referenced_columns();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// Fills only `cols` of row `i` into the full-width buffer `buf` (other
/// slots keep their previous contents — the predicate never reads them).
fn fill_cells(table: &Table, i: usize, cols: &[usize], buf: &mut [Value]) {
    for &c in cols {
        buf[c] = table.value(i, c);
    }
}

/// Row ids of `table` satisfying `pred`, ascending.
///
/// This is the parallel pushdown scan: its output is the selection vector
/// the executor's columnar pipeline
/// ([`ColRelation`](crate::colrel::ColRelation)) carries end to end, so a
/// filtered-out row is never touched again after the scan — no row is
/// materialized, not even for hits. Each shard evaluates the predicate
/// over **only the columns it references** (one reusable full-width
/// buffer, untouched slots stay NULL), so a selective filter over a wide
/// table never pays per-row work proportional to the table width. Row ids
/// are `u32` across the selection-vector pipeline ([`Table`]s are capped
/// at `u32::MAX` rows).
pub fn filter_indices(table: &Table, pred: &Expr) -> Result<Vec<u32>> {
    let cols = pred_columns(pred);
    let width = table.schema().columns.len();
    run_sharded(table.len(), |range| {
        let mut buf: Row = vec![Value::Null; width];
        let mut out = Vec::new();
        for i in range {
            fill_cells(table, i, &cols, &mut buf);
            if pred.matches(&buf)? {
                out.push(i as u32);
            }
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::{DataType, Value};

    fn table(rows: usize) -> Table {
        let mut t = Table::new(
            TableSchema::new(
                "S",
                vec![
                    Column::new("id", DataType::Int),
                    Column::nullable("v", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        t.append_rows((0..rows as i64).map(|i| {
            vec![
                i.into(),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    (i % 10).into()
                },
            ]
        }))
        .unwrap();
        t
    }

    #[test]
    fn sharded_filter_matches_sequential() {
        // 3 chunks worth of rows, so the pool genuinely shards.
        let t = table(3 * CHUNK_ROWS + 17);
        let pred = Expr::col(1).ge(Expr::lit(5));
        let mut seq = Vec::new();
        let mut buf = Row::new();
        for i in 0..t.len() {
            t.read_row(i, &mut buf);
            if pred.matches(&buf).unwrap() {
                seq.push(i as u32);
            }
        }
        assert_eq!(filter_indices(&t, &pred).unwrap(), seq);
    }

    #[test]
    fn error_reporting_is_deterministic() {
        // `v LIKE` errors on INT; the reported error must be the first
        // failing row in row order even though later chunks also fail.
        let t = table(4 * CHUNK_ROWS);
        let pred = Expr::col(1).like("a%");
        let err = filter_indices(&t, &pred).unwrap_err().to_string();
        let mut buf = Row::new();
        let seq_err = (0..t.len())
            .find_map(|i| {
                t.read_row(i, &mut buf);
                pred.matches(&buf).err()
            })
            .unwrap()
            .to_string();
        assert_eq!(err, seq_err);
    }

    #[test]
    fn single_chunk_runs_inline() {
        let t = table(10);
        let pred = Expr::col(0).lt(Expr::lit(5));
        assert_eq!(filter_indices(&t, &pred).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    // Tested through the pure policy function, NOT by std::env::set_var:
    // lib tests run multi-threaded and sibling tests scan (reading the
    // variable via getenv) concurrently — concurrent setenv/getenv is
    // undefined behavior on glibc. The places that do set the variable
    // are safe by construction: tests/parallel_scan.rs is a binary with a
    // single #[test], and the sql bench sets it before any iteration runs.
    #[test]
    fn pool_size_policy_clamps() {
        assert_eq!(pool_size(Some("0")), 1);
        assert_eq!(pool_size(Some("999")), 64);
        assert_eq!(pool_size(Some("3")), 3);
        assert_eq!(pool_size(Some(" 5 ")), 5);
        // Unparseable overrides and no override fall back to the default.
        assert!(pool_size(Some("lots")) >= 1);
        assert!(pool_size(None) >= 1);
        assert!(pool_size(None) <= MAX_DEFAULT_THREADS);
    }
}
