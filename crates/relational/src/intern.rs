//! A process-wide string interner backing [`crate::value::Value::Text`].
//!
//! Every distinct text value in the engine is stored exactly once in a
//! leaked arena and referred to by a compact [`Sym`] (a `u32`). This is what
//! makes [`crate::value::Value`] `Copy`: rows are plain memcpys, hash-join
//! and GROUP BY keys on text hash a machine word instead of a heap string,
//! and the relational, TGM and presentation layers all share one arena, so
//! translating a database re-uses the exact symbols the tables hold.
//!
//! Interned strings live for the rest of the process (`Box::leak`), which is
//! the right trade-off for this workload: the corpus vocabulary (titles,
//! names, keywords) is bounded and read many orders of magnitude more often
//! than it is created.
//!
//! Ordering caveat: symbol ids are assigned in *first-intern* order, which
//! has no relation to lexicographic order. [`Sym`] therefore deliberately
//! does not implement `Ord`; ordered comparisons go through
//! [`Sym::cmp_str`] (used by `Value::total_cmp`/`sql_cmp`), so ORDER BY and
//! grouping results are identical to the pre-interning engine. Equality and
//! hashing, by contrast, are safe on the id alone because the arena holds
//! each string exactly once.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, RwLock};

/// An interned string: a dense `u32` handle into the global arena.
///
/// `Sym` is `Copy`; equality and hashing compare ids (equal strings always
/// receive equal ids). Resolve with [`Sym::as_str`]; display renders the
/// underlying text.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Arena {
    /// id -> string. Entries are never removed or mutated.
    strings: Vec<&'static str>,
    /// string -> id, for intern lookups.
    ids: HashMap<&'static str, u32>,
}

static ARENA: LazyLock<RwLock<Arena>> = LazyLock::new(|| {
    RwLock::new(Arena {
        strings: Vec::new(),
        ids: HashMap::new(),
    })
});

impl Sym {
    /// Interns `s`, returning its symbol. Equal strings always return equal
    /// symbols; a string is copied into the arena only on first sight.
    pub fn intern(s: &str) -> Sym {
        if let Some(&id) = ARENA.read().expect("interner poisoned").ids.get(s) {
            return Sym(id);
        }
        let mut arena = ARENA.write().expect("interner poisoned");
        // Double-checked: another thread may have interned between locks.
        if let Some(&id) = arena.ids.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(arena.strings.len()).expect("interner capacity exceeded");
        arena.strings.push(leaked);
        arena.ids.insert(leaked, id);
        Sym(id)
    }

    /// The interned text. `'static` because arena entries are never freed.
    ///
    /// Lock-free in steady state: resolution goes through a thread-local
    /// clone of the string snapshot (see [`strings_snapshot`]), so parallel
    /// scan workers evaluating text predicates (`LIKE`, rendering) never
    /// contend on the arena lock per row. A thread only touches the lock
    /// when it meets a symbol newer than its snapshot, which re-syncs it to
    /// the current arena.
    pub fn as_str(self) -> &'static str {
        let id = self.0 as usize;
        TLS_STRINGS.with(|tls| {
            if let Some(&s) = tls.borrow().get(id) {
                return s;
            }
            // `self` exists, so the arena holds it and the snapshot built
            // now must cover it.
            let snap = strings_snapshot();
            let s = snap[id];
            *tls.borrow_mut() = snap;
            s
        })
    }

    /// The raw arena id (stable for the life of the process).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Lexicographic comparison of the *strings* behind two symbols, with a
    /// fast path for identical ids; resolution is lock-free via
    /// [`Sym::as_str`]'s thread-local snapshot.
    pub fn cmp_str(a: Sym, b: Sym) -> std::cmp::Ordering {
        if a.0 == b.0 {
            return std::cmp::Ordering::Equal;
        }
        a.as_str().cmp(b.as_str())
    }
}

/// Cached immutable snapshot of the arena's `id -> string` table, rebuilt
/// (a plain `O(n)` copy of the slice of leaked `&'static str`s) whenever the
/// arena has grown — the same length-as-version-stamp invalidation rule as
/// the rank table. Lock order is always `STRINGS` before `ARENA`, and
/// [`Sym::intern`] never touches `STRINGS`, so the two can never deadlock.
static STRINGS: LazyLock<RwLock<Arc<Vec<&'static str>>>> =
    LazyLock::new(|| RwLock::new(Arc::new(Vec::new())));

thread_local! {
    /// Per-thread clone of the latest string snapshot this thread has
    /// needed; lets [`Sym::as_str`] resolve without any atomics or locks.
    static TLS_STRINGS: RefCell<Arc<Vec<&'static str>>> = RefCell::new(Arc::new(Vec::new()));
}

/// Returns a snapshot covering every string interned so far, indexed by
/// symbol id.
///
/// Arena entries are append-only, so a snapshot's length is its complete
/// version stamp: ids `< snapshot.len()` resolve through it forever, and a
/// longer arena only ever *extends* a previous snapshot. Dictionary-encoded
/// predicate evaluation ([`crate::exec::pred`]) leans on exactly that to
/// build (and incrementally extend) per-pattern membership bitmaps over the
/// whole vocabulary instead of re-matching text per row.
pub fn strings_snapshot() -> Arc<Vec<&'static str>> {
    let arena_len = interned_count();
    {
        let cached = STRINGS.read().expect("string snapshot poisoned");
        if cached.len() == arena_len {
            return Arc::clone(&cached);
        }
    }
    let mut slot = STRINGS.write().expect("string snapshot poisoned");
    let arena = ARENA.read().expect("interner poisoned");
    // Double-checked: another thread may have rebuilt between locks (and
    // the arena may have grown past `arena_len`; copy what it holds now).
    if slot.len() != arena.strings.len() {
        *slot = Arc::new(arena.strings.clone());
    }
    Arc::clone(&slot)
}

/// Number of distinct strings interned so far (diagnostics/tests).
pub fn interned_count() -> usize {
    ARENA.read().expect("interner poisoned").strings.len()
}

/// Interns a batch of strings, taking the arena write lock once instead of
/// once per string. Returns the symbols in input order.
///
/// This is the arena-rehydration path for [`crate::storage`]: reopening a
/// saved database re-interns every string a table's arena segment holds, and
/// a per-string [`Sym::intern`] would pay the read-then-write lock dance for
/// each of them. Semantics are identical to interning each string in order.
pub fn intern_all<S: AsRef<str>>(strings: &[S]) -> Vec<Sym> {
    if strings.is_empty() {
        return Vec::new();
    }
    let mut arena = ARENA.write().expect("interner poisoned");
    strings
        .iter()
        .map(|s| {
            let s = s.as_ref();
            if let Some(&id) = arena.ids.get(s) {
                return Sym(id);
            }
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            let id = u32::try_from(arena.strings.len()).expect("interner capacity exceeded");
            arena.strings.push(leaked);
            arena.ids.insert(leaked, id);
            Sym(id)
        })
        .collect()
}

/// The lazily-maintained dictionary-rank table: `ranks[id]` is the position
/// of symbol `id` in the lexicographic order of every string interned when
/// the snapshot was built. Guarded separately from [`ARENA`]; the lock order
/// is always `RANKS` before `ARENA` (and [`Sym::intern`] never touches
/// `RANKS`), so the two can never deadlock.
static RANKS: LazyLock<RwLock<Arc<Vec<u32>>>> = LazyLock::new(|| RwLock::new(Arc::new(Vec::new())));

/// An immutable snapshot of the dictionary-order rank table.
///
/// For any two symbols `a`, `b` covered by the same snapshot,
/// `snapshot.rank(a) < snapshot.rank(b)` iff `a.as_str() < b.as_str()` —
/// so ORDER BY, MIN/MAX and dedup over interned text can compare two `u32`s
/// instead of taking the arena lock and walking both strings per
/// comparison. Interning more strings after a snapshot is taken changes the
/// *absolute* ranks a fresh snapshot would assign, but never the relative
/// order of the symbols this snapshot covers, so a held snapshot stays
/// valid for the symbols that existed when it was built.
#[derive(Debug, Clone)]
pub struct RankMap(Arc<Vec<u32>>);

impl RankMap {
    /// Dictionary rank of `s` within this snapshot.
    ///
    /// # Panics
    /// If `s` was interned after the snapshot was built. Callers obtain the
    /// snapshot *after* the values they compare exist (the SQL executor
    /// takes it per sort/aggregation over already-stored data), so this is
    /// an internal ordering bug, never a data-dependent condition.
    pub fn rank(&self, s: Sym) -> u32 {
        match self.0.get(s.0 as usize) {
            Some(&r) => r,
            None => panic!(
                "symbol id {} interned after the rank snapshot ({} entries)",
                s.0,
                self.0.len()
            ),
        }
    }

    /// Whether `s` existed when this snapshot was built.
    pub fn covers(&self, s: Sym) -> bool {
        (s.0 as usize) < self.0.len()
    }

    /// Number of symbols covered by the snapshot.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the snapshot covers no symbols.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Returns a rank snapshot covering every symbol interned so far.
///
/// Invalidation rule: the cached table is rebuilt (an `O(n log n)` argsort
/// of the arena) whenever the arena has **grown** since the last build —
/// entries are never removed or mutated, so arena length is the complete
/// version stamp. With the bounded vocabulary of this workload the rebuild
/// amortizes to one sort after each load phase; steady-state queries take
/// the read-lock fast path and clone an `Arc`.
pub fn rank_map() -> RankMap {
    let arena_len = interned_count();
    {
        let cached = RANKS.read().expect("rank table poisoned");
        if cached.len() == arena_len {
            return RankMap(Arc::clone(&cached));
        }
    }
    let mut slot = RANKS.write().expect("rank table poisoned");
    let arena = ARENA.read().expect("interner poisoned");
    // Double-checked: another thread may have rebuilt between locks (and
    // the arena may have grown past `arena_len`; build for what it holds
    // now).
    if slot.len() != arena.strings.len() {
        let mut order: Vec<u32> = (0..arena.strings.len() as u32).collect();
        order.sort_unstable_by_key(|&id| arena.strings[id as usize]);
        let mut ranks = vec![0u32; order.len()];
        for (rank, &id) in order.iter().enumerate() {
            ranks[id as usize] = rank as u32;
        }
        *slot = Arc::new(ranks);
    }
    RankMap(Arc::clone(&slot))
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render the text, not the id: ids vary with intern order and would
        // make test failure output unreadable.
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_get_equal_symbols() {
        let a = Sym::intern("interner-test-alpha");
        let b = Sym::intern("interner-test-alpha");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "interner-test-alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Sym::intern("interner-test-one");
        let b = Sym::intern("interner-test-two");
        assert_ne!(a, b);
    }

    #[test]
    fn cmp_str_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order so id order and string
        // order disagree; cmp_str must follow the strings.
        let z = Sym::intern("interner-test-zzz");
        let a = Sym::intern("interner-test-aaa");
        assert_eq!(Sym::cmp_str(a, z), std::cmp::Ordering::Less);
        assert_eq!(Sym::cmp_str(z, a), std::cmp::Ordering::Greater);
        assert_eq!(Sym::cmp_str(a, a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn interning_is_idempotent_for_count() {
        let s = Sym::intern("interner-test-count");
        let after_first = interned_count();
        let t = Sym::intern("interner-test-count");
        assert_eq!(s, t);
        assert_eq!(interned_count(), after_first);
    }

    #[test]
    fn debug_and_display_show_text() {
        let s = Sym::intern("interner-test-show");
        assert_eq!(format!("{s}"), "interner-test-show");
        assert_eq!(format!("{s:?}"), "Sym(\"interner-test-show\")");
    }

    #[test]
    fn rank_map_orders_like_strings_despite_intern_order() {
        // Reverse lexicographic intern order: id order and rank order must
        // disagree, and ranks must follow the strings.
        let z = Sym::intern("rank-test-zz");
        let m = Sym::intern("rank-test-mm");
        let a = Sym::intern("rank-test-aa");
        let ranks = rank_map();
        assert!(ranks.covers(z) && ranks.covers(m) && ranks.covers(a));
        assert!(ranks.rank(a) < ranks.rank(m));
        assert!(ranks.rank(m) < ranks.rank(z));
        // Rank comparisons agree with cmp_str on every pair.
        for &(x, y) in &[(a, m), (m, z), (a, z), (a, a)] {
            assert_eq!(ranks.rank(x).cmp(&ranks.rank(y)), Sym::cmp_str(x, y));
        }
    }

    #[test]
    fn rank_map_rebuilds_after_arena_growth() {
        let first = Sym::intern("rank-grow-bb");
        let before = rank_map();
        assert!(before.covers(first));
        // Interning a lexicographically-smaller string invalidates the
        // cached table; a fresh snapshot must cover it and re-rank.
        let smaller = Sym::intern("rank-grow-aa");
        let after = rank_map();
        assert!(after.covers(smaller));
        assert!(after.rank(smaller) < after.rank(first));
        // The old snapshot still orders the symbols it covers correctly.
        assert!(before.covers(first));
    }

    #[test]
    fn snapshots_are_consistent_across_threads() {
        let syms: Vec<Sym> = (0..16)
            .map(|i| Sym::intern(&format!("rank-thread-{i:02}")))
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let syms = syms.clone();
                std::thread::spawn(move || {
                    let ranks = rank_map();
                    for w in syms.windows(2) {
                        assert!(ranks.rank(w[0]) < ranks.rank(w[1]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn as_str_resolves_symbols_newer_than_the_thread_snapshot() {
        // Warm this thread's snapshot, then intern more strings (growing
        // the arena past it); resolution must transparently re-sync.
        let old = Sym::intern("strs-snap-old");
        assert_eq!(old.as_str(), "strs-snap-old");
        let fresh: Vec<Sym> = (0..32)
            .map(|i| Sym::intern(&format!("strs-snap-new-{i:02}")))
            .collect();
        for (i, s) in fresh.iter().enumerate() {
            assert_eq!(s.as_str(), format!("strs-snap-new-{i:02}"));
        }
        // A different thread starts cold and must also resolve everything.
        let handle = std::thread::spawn(move || {
            assert_eq!(old.as_str(), "strs-snap-old");
            fresh.iter().map(|s| s.as_str().len()).sum::<usize>()
        });
        assert_eq!(handle.join().unwrap(), 32 * "strs-snap-new-00".len());
    }

    #[test]
    fn threads_agree_on_symbols() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let shared = Sym::intern("interner-test-shared");
                    let own = Sym::intern(&format!("interner-test-thread-{i}"));
                    (shared, own)
                })
            })
            .collect();
        let results: Vec<(Sym, Sym)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let first = results[0].0;
        assert!(results.iter().all(|(s, _)| *s == first));
        let mut own: Vec<u32> = results.iter().map(|(_, o)| o.id()).collect();
        own.sort_unstable();
        own.dedup();
        assert_eq!(own.len(), 8, "per-thread strings must stay distinct");
    }
}
