//! A process-wide string interner backing [`crate::value::Value::Text`].
//!
//! Every distinct text value in the engine is stored exactly once in a
//! leaked arena and referred to by a compact [`Sym`] (a `u32`). This is what
//! makes [`crate::value::Value`] `Copy`: rows are plain memcpys, hash-join
//! and GROUP BY keys on text hash a machine word instead of a heap string,
//! and the relational, TGM and presentation layers all share one arena, so
//! translating a database re-uses the exact symbols the tables hold.
//!
//! Interned strings live for the rest of the process (`Box::leak`), which is
//! the right trade-off for this workload: the corpus vocabulary (titles,
//! names, keywords) is bounded and read many orders of magnitude more often
//! than it is created.
//!
//! Ordering caveat: symbol ids are assigned in *first-intern* order, which
//! has no relation to lexicographic order. [`Sym`] therefore deliberately
//! does not implement `Ord`; ordered comparisons go through
//! [`Sym::cmp_str`] (used by `Value::total_cmp`/`sql_cmp`), so ORDER BY and
//! grouping results are identical to the pre-interning engine. Equality and
//! hashing, by contrast, are safe on the id alone because the arena holds
//! each string exactly once.

use std::collections::HashMap;
use std::sync::{LazyLock, RwLock};

/// An interned string: a dense `u32` handle into the global arena.
///
/// `Sym` is `Copy`; equality and hashing compare ids (equal strings always
/// receive equal ids). Resolve with [`Sym::as_str`]; display renders the
/// underlying text.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Arena {
    /// id -> string. Entries are never removed or mutated.
    strings: Vec<&'static str>,
    /// string -> id, for intern lookups.
    ids: HashMap<&'static str, u32>,
}

static ARENA: LazyLock<RwLock<Arena>> = LazyLock::new(|| {
    RwLock::new(Arena {
        strings: Vec::new(),
        ids: HashMap::new(),
    })
});

impl Sym {
    /// Interns `s`, returning its symbol. Equal strings always return equal
    /// symbols; a string is copied into the arena only on first sight.
    pub fn intern(s: &str) -> Sym {
        if let Some(&id) = ARENA.read().expect("interner poisoned").ids.get(s) {
            return Sym(id);
        }
        let mut arena = ARENA.write().expect("interner poisoned");
        // Double-checked: another thread may have interned between locks.
        if let Some(&id) = arena.ids.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(arena.strings.len()).expect("interner capacity exceeded");
        arena.strings.push(leaked);
        arena.ids.insert(leaked, id);
        Sym(id)
    }

    /// The interned text. `'static` because arena entries are never freed.
    pub fn as_str(self) -> &'static str {
        ARENA.read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// The raw arena id (stable for the life of the process).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Lexicographic comparison of the *strings* behind two symbols, with a
    /// fast path for identical ids and a single arena read for the rest.
    pub fn cmp_str(a: Sym, b: Sym) -> std::cmp::Ordering {
        if a.0 == b.0 {
            return std::cmp::Ordering::Equal;
        }
        let arena = ARENA.read().expect("interner poisoned");
        arena.strings[a.0 as usize].cmp(arena.strings[b.0 as usize])
    }
}

/// Number of distinct strings interned so far (diagnostics/tests).
pub fn interned_count() -> usize {
    ARENA.read().expect("interner poisoned").strings.len()
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render the text, not the id: ids vary with intern order and would
        // make test failure output unreadable.
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_get_equal_symbols() {
        let a = Sym::intern("interner-test-alpha");
        let b = Sym::intern("interner-test-alpha");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "interner-test-alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Sym::intern("interner-test-one");
        let b = Sym::intern("interner-test-two");
        assert_ne!(a, b);
    }

    #[test]
    fn cmp_str_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order so id order and string
        // order disagree; cmp_str must follow the strings.
        let z = Sym::intern("interner-test-zzz");
        let a = Sym::intern("interner-test-aaa");
        assert_eq!(Sym::cmp_str(a, z), std::cmp::Ordering::Less);
        assert_eq!(Sym::cmp_str(z, a), std::cmp::Ordering::Greater);
        assert_eq!(Sym::cmp_str(a, a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn interning_is_idempotent_for_count() {
        let s = Sym::intern("interner-test-count");
        let after_first = interned_count();
        let t = Sym::intern("interner-test-count");
        assert_eq!(s, t);
        assert_eq!(interned_count(), after_first);
    }

    #[test]
    fn debug_and_display_show_text() {
        let s = Sym::intern("interner-test-show");
        assert_eq!(format!("{s}"), "interner-test-show");
        assert_eq!(format!("{s:?}"), "Sym(\"interner-test-show\")");
    }

    #[test]
    fn threads_agree_on_symbols() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let shared = Sym::intern("interner-test-shared");
                    let own = Sym::intern(&format!("interner-test-thread-{i}"));
                    (shared, own)
                })
            })
            .collect();
        let results: Vec<(Sym, Sym)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let first = results[0].0;
        assert!(results.iter().all(|(s, _)| *s == first));
        let mut own: Vec<u32> = results.iter().map(|(_, o)| o.id()).collect();
        own.sort_unstable();
        own.dedup();
        assert_eq!(own.len(), 8, "per-thread strings must stay distinct");
    }
}
