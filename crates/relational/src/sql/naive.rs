//! A deliberately naive reference evaluator for SELECT queries: cross
//! product of all FROM/JOIN tables, then filter, then the query tail over
//! naive row-at-a-time kernels.
//!
//! It shares no planning logic with [`super::executor`] — no predicate
//! pushdown, no join ordering, no hash joins — and none of the executor's
//! data-movement kernels either: grouping here is a linear key scan with
//! per-group recomputation (no `group_core`, no `AggState` vectors, no
//! dictionary-rank snapshots), sorting compares values through
//! [`Value::total_cmp`] directly (no rank-decorated key columns), and
//! DISTINCT is a quadratic first-occurrence scan (no hashing). The
//! [`TypedPlan`](super::analyze::TypedPlan) *is* shared (the analyzer's
//! name resolution, typing and output shaping are the query's
//! specification, not an optimization), so both engines accept and
//! reject exactly the same statements, a differential mismatch always
//! points at an execution-kernel bug, and a kernel bug can never cancel
//! out by running on both sides. The oracle simply applies every typed
//! predicate — scan pushdowns, join edges, residuals alike — as plain
//! filters over the cross product, in syntactic column order
//! ([`TypedPlan::flat_pos`](super::analyze::TypedPlan::flat_pos)).

use super::analyze::{analyze, ColumnId};
use super::ast::{Query, Statement};
use super::executor::TailKernels;
use crate::algebra::{AggFunc, AggSpec, Relation, SortKey};
use crate::database::Database;
use crate::expr::Expr;
use crate::table::Row;
use crate::value::Value;
use crate::{Error, Result};

/// Executes a SELECT with the naive strategy.
pub fn execute_naive(db: &Database, sql: &str) -> Result<Relation> {
    match super::parser::parse_statement(sql)? {
        Statement::Select(q) => execute_query_naive(db, &q),
        _ => Err(Error::Parse("naive evaluator only supports SELECT".into())),
    }
}

/// Executes a parsed SELECT with the naive strategy: analyze into the
/// same [`TypedPlan`] the optimizing executor consumes, then evaluate it
/// with no planning at all.
pub fn execute_query_naive(db: &Database, q: &Query) -> Result<Relation> {
    let plan = analyze(db, q)?;

    // Cross product of every table, in syntactic order — the layout
    // `TypedPlan::flat_pos` describes.
    let mut current: Option<Relation> = None;
    for t in &plan.tables {
        let rel = Relation::from_table(db.table(&t.name)?, &t.alias);
        current = Some(match current {
            None => rel,
            Some(acc) => acc.cross(&rel),
        });
    }
    let mut current = current.ok_or_else(|| Error::Parse("empty FROM".into()))?;

    // Apply every typed predicate post hoc: pushed-down scan filters,
    // join edges (as plain equality filters), residuals.
    let pos = |c: ColumnId| Some(plan.flat_pos(c));
    for preds in &plan.scans {
        for p in preds {
            current = current.select(&p.expr.to_expr(&pos)?)?;
        }
    }
    for e in &plan.edges {
        let l = plan.flat_pos(e.left);
        let r = plan.flat_pos(e.right);
        current = current.select(&Expr::col(l).eq(Expr::col(r)))?;
    }
    for p in &plan.residual {
        current = current.select(&p.expr.to_expr(&pos)?)?;
    }

    // Run the tail (grouping, HAVING, ORDER BY, projection, DISTINCT,
    // LIMIT) on the filtered cross product, over this module's independent
    // row-at-a-time kernels.
    super::executor::finish_query_with(&plan, current, &NAIVE_KERNELS)
}

/// The oracle's kernels: independent reimplementations of grouping,
/// sorting and DISTINCT (see the module docs for what they deliberately do
/// *not* share with the engine).
const NAIVE_KERNELS: TailKernels = TailKernels {
    group: naive_group,
    sort: naive_sort,
    distinct: naive_distinct,
};

/// GROUP BY + aggregates by linear key scan: groups are discovered in
/// first-occurrence order with `Vec<Value>` keys compared by value
/// equality, and each aggregate is recomputed per group from the member
/// rows. Output shape (keys, then one column per aggregate, `COUNT` ->
/// INT, `AVG` -> FLOAT, `SUM`/`MIN`/`MAX` -> input type) mirrors the
/// engine's documented semantics.
fn naive_group(rel: &Relation, group_cols: &[usize], aggs: &[AggSpec]) -> Result<Relation> {
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (ri, row) in rel.rows.iter().enumerate() {
        let key: Vec<Value> = group_cols.iter().map(|&c| row[c]).collect();
        match keys.iter().position(|k| *k == key) {
            Some(g) => members[g].push(ri),
            None => {
                keys.push(key);
                members.push(vec![ri]);
            }
        }
    }
    // Empty input with no grouping keys still yields one (empty) group for
    // aggregates, matching SQL semantics.
    if keys.is_empty() && group_cols.is_empty() && !aggs.is_empty() {
        keys.push(Vec::new());
        members.push(Vec::new());
    }
    let mut columns: Vec<crate::algebra::RelColumn> =
        group_cols.iter().map(|&i| rel.columns[i].clone()).collect();
    for spec in aggs {
        let ty = match spec.func {
            AggFunc::Count => crate::value::DataType::Int,
            AggFunc::Avg => crate::value::DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => spec
                .input
                .map(|c| rel.columns[c].data_type)
                .unwrap_or(crate::value::DataType::Int),
        };
        columns.push(crate::algebra::RelColumn::bare(
            spec.output_name.clone(),
            ty,
        ));
    }
    let mut rows: Vec<Row> = Vec::with_capacity(keys.len());
    for (key, idxs) in keys.iter().zip(&members) {
        let mut out = key.clone();
        for spec in aggs {
            out.push(naive_agg(rel, idxs, spec)?);
        }
        rows.push(out);
    }
    Ok(Relation::new(columns, rows))
}

/// One aggregate over one group's member rows, recomputed from scratch.
fn naive_agg(rel: &Relation, idxs: &[usize], spec: &AggSpec) -> Result<Value> {
    // Non-NULL input values for the column-fed aggregates; an input-less
    // aggregate other than COUNT(*) sees no values (and yields NULL),
    // matching the engine.
    let values = |col: Option<usize>| -> Vec<Value> {
        col.map_or_else(Vec::new, |c| {
            idxs.iter()
                .map(|&r| rel.rows[r][c])
                .filter(|v| !v.is_null())
                .collect()
        })
    };
    match spec.func {
        AggFunc::Count => {
            let n = match spec.input {
                None => idxs.len(),
                Some(_) => values(spec.input).len(),
            };
            Ok(Value::Int(n as i64))
        }
        AggFunc::Sum => {
            let vals = values(spec.input);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0f64;
            let mut int_only = true;
            for v in vals {
                sum += v
                    .as_float()
                    .ok_or_else(|| Error::Eval(format!("SUM over non-number {v}")))?;
                if !matches!(v, Value::Int(_)) {
                    int_only = false;
                }
            }
            Ok(if int_only {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            })
        }
        AggFunc::Avg => {
            let vals = values(spec.input);
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum = 0.0f64;
            for v in &vals {
                sum += v
                    .as_float()
                    .ok_or_else(|| Error::Eval(format!("AVG over non-number {v}")))?;
            }
            Ok(Value::Float(sum / vals.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let want = if spec.func == AggFunc::Min {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            };
            let mut best: Option<Value> = None;
            for v in values(spec.input) {
                let better = match best {
                    Some(b) => v.total_cmp(&b) == want,
                    None => true,
                };
                if better {
                    best = Some(v);
                }
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Stable multi-key sort comparing through [`Value::total_cmp`] per probe —
/// ties keep input order, exactly the engine's ties policy.
fn naive_sort(rel: &Relation, keys: &[SortKey]) -> Relation {
    let mut rows = rel.rows.clone();
    rows.sort_by(|a, b| {
        for k in keys {
            let ord = a[k.column].total_cmp(&b[k.column]);
            let ord = if k.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Relation::new(rel.columns.clone(), rows)
}

/// First-occurrence DISTINCT by quadratic value-equality scan.
fn naive_distinct(rel: &Relation) -> Relation {
    let mut rows: Vec<Row> = Vec::new();
    for r in &rel.rows {
        if !rows.iter().any(|seen| seen == r) {
            rows.push(r.clone());
        }
    }
    Relation::new(rel.columns.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::execute;

    fn db() -> Database {
        let mut db = Database::new();
        for stmt in [
            "CREATE TABLE a (id INT PRIMARY KEY, x INT NOT NULL)",
            "CREATE TABLE b (id INT PRIMARY KEY, a_id INT REFERENCES a(id), y TEXT)",
            "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)",
            "INSERT INTO b VALUES (1, 1, 'p'), (2, 1, 'q'), (3, 2, 'r')",
        ] {
            execute(&mut db, stmt).unwrap();
        }
        db
    }

    fn sorted(rel: Relation) -> Vec<Vec<crate::value::Value>> {
        let mut rows = rel.rows;
        rows.sort();
        rows
    }

    #[test]
    fn naive_matches_planner_on_join() {
        let d = db();
        let sql = "SELECT a.x, b.y FROM a, b WHERE a.id = b.a_id AND a.x >= 10";
        let mut d2 = d.clone();
        let planned = execute(&mut d2, sql).unwrap();
        let naive = execute_naive(&d, sql).unwrap();
        assert_eq!(sorted(planned), sorted(naive));
    }

    #[test]
    fn naive_matches_planner_on_group_by() {
        let d = db();
        let sql = "SELECT a.x, COUNT(*) AS n FROM a, b WHERE a.id = b.a_id \
                   GROUP BY a.x ORDER BY n DESC, a.x";
        let mut d2 = d.clone();
        let planned = execute(&mut d2, sql).unwrap();
        let naive = execute_naive(&d, sql).unwrap();
        assert_eq!(planned.rows, naive.rows); // fully ordered
    }

    #[test]
    fn naive_rejects_non_select() {
        let d = db();
        assert!(execute_naive(&d, "INSERT INTO a VALUES (9, 9)").is_err());
    }
}
