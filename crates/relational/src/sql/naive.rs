//! A deliberately naive reference evaluator for SELECT queries: cross
//! product of all FROM/JOIN tables, then filter, then the shared
//! grouping/projection tail.
//!
//! It shares no planning logic with [`super::executor`] — no predicate
//! pushdown, no join ordering, no hash joins — which makes it a trustworthy
//! oracle for differential testing: for any supported query, the optimized
//! executor must return the same bag of rows (up to ORDER BY ties).

use super::ast::{Query, Statement};
use crate::algebra::Relation;
use crate::database::Database;
use crate::{Error, Result};

/// Executes a SELECT with the naive strategy.
pub fn execute_naive(db: &Database, sql: &str) -> Result<Relation> {
    match super::parser::parse_statement(sql)? {
        Statement::Select(q) => execute_query_naive(db, &q),
        _ => Err(Error::Parse("naive evaluator only supports SELECT".into())),
    }
}

/// Executes a parsed SELECT with the naive strategy.
pub fn execute_query_naive(db: &Database, q: &Query) -> Result<Relation> {
    // Cross product of every table in FROM + JOIN, in syntactic order.
    let mut refs = q.from.clone();
    refs.extend(q.joins.iter().map(|j| j.table.clone()));
    let mut current: Option<Relation> = None;
    for r in &refs {
        let rel = Relation::from_table(db.table(&r.table)?, r.effective_alias());
        current = Some(match current {
            None => rel,
            Some(acc) => acc.cross(&rel),
        });
    }
    let mut current = current.ok_or_else(|| Error::Parse("empty FROM".into()))?;

    // Apply every predicate (JOIN..ON and WHERE) post hoc.
    for j in &q.joins {
        let e = super::executor::resolve_row_expr(&j.on, &current)?;
        current = current.select(&e)?;
    }
    if let Some(w) = &q.where_clause {
        let e = super::executor::resolve_row_expr(w, &current)?;
        current = current.select(&e)?;
    }

    // Reuse the executor's tail (grouping, HAVING, ORDER BY, projection,
    // DISTINCT, LIMIT) on the filtered cross product: the tail contains no
    // join planning, which is what this oracle is checking.
    super::executor::finish_query(q, current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::execute;

    fn db() -> Database {
        let mut db = Database::new();
        for stmt in [
            "CREATE TABLE a (id INT PRIMARY KEY, x INT NOT NULL)",
            "CREATE TABLE b (id INT PRIMARY KEY, a_id INT REFERENCES a(id), y TEXT)",
            "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)",
            "INSERT INTO b VALUES (1, 1, 'p'), (2, 1, 'q'), (3, 2, 'r')",
        ] {
            execute(&mut db, stmt).unwrap();
        }
        db
    }

    fn sorted(rel: Relation) -> Vec<Vec<crate::value::Value>> {
        let mut rows = rel.rows;
        rows.sort();
        rows
    }

    #[test]
    fn naive_matches_planner_on_join() {
        let d = db();
        let sql = "SELECT a.x, b.y FROM a, b WHERE a.id = b.a_id AND a.x >= 10";
        let mut d2 = d.clone();
        let planned = execute(&mut d2, sql).unwrap();
        let naive = execute_naive(&d, sql).unwrap();
        assert_eq!(sorted(planned), sorted(naive));
    }

    #[test]
    fn naive_matches_planner_on_group_by() {
        let d = db();
        let sql = "SELECT a.x, COUNT(*) AS n FROM a, b WHERE a.id = b.a_id \
                   GROUP BY a.x ORDER BY n DESC, a.x";
        let mut d2 = d.clone();
        let planned = execute(&mut d2, sql).unwrap();
        let naive = execute_naive(&d, sql).unwrap();
        assert_eq!(planned.rows, naive.rows); // fully ordered
    }

    #[test]
    fn naive_rejects_non_select() {
        let d = db();
        assert!(execute_naive(&d, "INSERT INTO a VALUES (9, 9)").is_err());
    }
}
