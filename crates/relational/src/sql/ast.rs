//! SQL abstract syntax tree.

use crate::value::{DataType, Value};
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Query),
    /// `EXPLAIN SELECT ...` — returns the optimizer's plan as text rows.
    Explain(Query),
    /// `CREATE TABLE name (cols...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// Primary key column names.
        primary_key: Vec<String>,
        /// Foreign keys: (columns, referenced table, referenced columns).
        foreign_keys: Vec<(Vec<String>, String, Vec<String>)>,
    },
    /// `INSERT INTO name VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM name [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Row predicate; `None` deletes everything.
        where_clause: Option<SqlExpr>,
    },
    /// `UPDATE name SET col = lit [, ...] [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// Column assignments (literals only).
        sets: Vec<(String, Value)>,
        /// Row predicate; `None` updates everything.
        where_clause: Option<SqlExpr>,
    },
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// First FROM table.
    pub from: Vec<TableRef>,
    /// JOIN clauses applied in order after `from`.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY column references.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate (references output columns or aggregates).
    pub having: Option<SqlExpr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET (rows skipped before LIMIT applies).
    pub offset: usize,
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// Effective name used to qualify columns.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An `INNER JOIN <table> ON <pred>` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The ON predicate.
    pub on: SqlExpr,
}

/// One item in the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// Expression with optional output alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression (column reference or output-column name).
    pub expr: SqlExpr,
    /// Descending?
    pub descending: bool,
}

/// A SQL scalar expression (name-based; resolved to positional
/// [`crate::expr::Expr`] during execution).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Possibly-qualified column reference.
    Column(String),
    /// Literal.
    Literal(Value),
    /// Aggregate call; input `None` means `COUNT(*)`.
    Aggregate {
        /// Which function.
        func: crate::algebra::AggFunc,
        /// Input column reference.
        input: Option<Box<SqlExpr>>,
    },
    /// Binary comparison.
    Cmp(crate::expr::CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// LIKE.
    Like(Box<SqlExpr>, String),
    /// NOT LIKE.
    NotLike(Box<SqlExpr>, String),
    /// IN list.
    InList(Box<SqlExpr>, Vec<Value>),
    /// IS NULL.
    IsNull(Box<SqlExpr>),
    /// IS NOT NULL.
    IsNotNull(Box<SqlExpr>),
    /// AND.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// OR.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// NOT.
    Not(Box<SqlExpr>),
}

impl SqlExpr {
    /// Splits a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&SqlExpr> {
        match self {
            SqlExpr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// True when the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Aggregate { .. } => true,
            SqlExpr::Column(_) | SqlExpr::Literal(_) => false,
            SqlExpr::Cmp(_, a, b) | SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            SqlExpr::Like(e, _)
            | SqlExpr::NotLike(e, _)
            | SqlExpr::InList(e, _)
            | SqlExpr::IsNull(e)
            | SqlExpr::IsNotNull(e)
            | SqlExpr::Not(e) => e.contains_aggregate(),
        }
    }

    /// Qualified column names referenced (excluding aggregate internals).
    pub fn referenced_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SqlExpr::Column(n) => out.push(n),
            SqlExpr::Literal(_) => {}
            SqlExpr::Aggregate { input, .. } => {
                if let Some(e) = input {
                    e.collect_names(out);
                }
            }
            SqlExpr::Cmp(_, a, b) | SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            SqlExpr::Like(e, _)
            | SqlExpr::NotLike(e, _)
            | SqlExpr::InList(e, _)
            | SqlExpr::IsNull(e)
            | SqlExpr::IsNotNull(e)
            | SqlExpr::Not(e) => e.collect_names(out),
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column(n) => write!(f, "{n}"),
            SqlExpr::Literal(Value::Text(s)) => write!(f, "'{s}'"),
            SqlExpr::Literal(v) => write!(f, "{v}"),
            SqlExpr::Aggregate { func, input } => {
                let name = match func {
                    crate::algebra::AggFunc::Count => "COUNT",
                    crate::algebra::AggFunc::Sum => "SUM",
                    crate::algebra::AggFunc::Avg => "AVG",
                    crate::algebra::AggFunc::Min => "MIN",
                    crate::algebra::AggFunc::Max => "MAX",
                };
                match input {
                    Some(e) => write!(f, "{name}({e})"),
                    None => write!(f, "{name}(*)"),
                }
            }
            SqlExpr::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            SqlExpr::Like(e, p) => write!(f, "{e} LIKE '{p}'"),
            SqlExpr::NotLike(e, p) => write!(f, "{e} NOT LIKE '{p}'"),
            SqlExpr::InList(e, l) => {
                write!(f, "{e} IN (")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Text(s) => write!(f, "'{s}'")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, ")")
            }
            SqlExpr::IsNull(e) => write!(f, "{e} IS NULL"),
            SqlExpr::IsNotNull(e) => write!(f, "{e} IS NOT NULL"),
            SqlExpr::And(a, b) => write!(f, "{a} AND {b}"),
            SqlExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            SqlExpr::Not(e) => write!(f, "NOT ({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten() {
        let e = SqlExpr::And(
            Box::new(SqlExpr::And(
                Box::new(SqlExpr::Column("a".into())),
                Box::new(SqlExpr::Column("b".into())),
            )),
            Box::new(SqlExpr::Column("c".into())),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn aggregate_detection() {
        let agg = SqlExpr::Aggregate {
            func: crate::algebra::AggFunc::Count,
            input: None,
        };
        assert!(agg.contains_aggregate());
        let cmp = SqlExpr::Cmp(
            crate::expr::CmpOp::Gt,
            Box::new(agg),
            Box::new(SqlExpr::Literal(Value::Int(3))),
        );
        assert!(cmp.contains_aggregate());
        assert!(!SqlExpr::Column("x".into()).contains_aggregate());
    }

    #[test]
    fn display_round_trip_shape() {
        let e = SqlExpr::Cmp(
            crate::expr::CmpOp::Ge,
            Box::new(SqlExpr::Column("Papers.year".into())),
            Box::new(SqlExpr::Literal(Value::Int(2005))),
        );
        assert_eq!(e.to_string(), "Papers.year >= 2005");
    }
}
