//! A small SQL dialect: lexer, AST, recursive-descent parser, and executor
//! with a greedy hash-join planner.
//!
//! The dialect covers what the paper's §8 expressiveness bridge needs —
//! `SELECT` / `FROM` / `JOIN..ON` / `WHERE` / `GROUP BY` / `HAVING` /
//! `ORDER BY` / `LIMIT`, aggregates, `LIKE`, `IN`, `IS NULL` — plus
//! `CREATE TABLE` and `INSERT` for completeness.

pub mod ast;
pub mod executor;
pub mod lexer;
pub mod naive;
pub mod parser;

pub use ast::{ColumnDef, JoinClause, OrderItem, Query, SelectItem, SqlExpr, Statement, TableRef};
pub use executor::execute;
pub use lexer::{tokenize, Token};
pub use parser::parse_statement;
