//! A small SQL dialect: lexer, AST, recursive-descent parser, static
//! semantic analyzer, and executor with a greedy hash-join planner.
//!
//! The dialect covers what the paper's §8 expressiveness bridge needs —
//! `SELECT` / `FROM` / `JOIN..ON` / `WHERE` / `GROUP BY` / `HAVING` /
//! `ORDER BY` / `LIMIT`, aggregates, `LIKE`, `IN`, `IS NULL` — plus
//! `CREATE TABLE` and `INSERT` for completeness.
//!
//! Every statement flows parser → [`analyze`] → executor: the analyzer
//! resolves names, infers types and validates aggregates/DML against
//! the schema, producing the [`TypedPlan`] both the optimizing executor
//! ([`executor`]) and the naive differential oracle ([`naive`]) consume
//! — so semantic errors are reported before any data is touched, and
//! the two engines cannot disagree on what a query means.

pub mod analyze;
pub mod ast;
pub mod executor;
pub mod lexer;
pub mod naive;
pub mod parser;

pub use analyze::{analyze, TypedPlan};
pub use ast::{ColumnDef, JoinClause, OrderItem, Query, SelectItem, SqlExpr, Statement, TableRef};
pub use executor::{execute, execute_read, execute_statement, is_read_only};
pub use lexer::{tokenize, Token};
pub use parser::parse_statement;
