//! SQL tokenizer.

use crate::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal with `''` escapes resolved.
    Str(String),
    /// Punctuation / operator symbol.
    Symbol(Symbol),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

impl Token {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl Symbol {
    /// The symbol's source spelling (the canonical one where several are
    /// accepted, e.g. `<>` for [`Symbol::Ne`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            Symbol::LParen => "(",
            Symbol::RParen => ")",
            Symbol::Comma => ",",
            Symbol::Dot => ".",
            Symbol::Star => "*",
            Symbol::Eq => "=",
            Symbol::Ne => "<>",
            Symbol::Lt => "<",
            Symbol::Le => "<=",
            Symbol::Gt => ">",
            Symbol::Ge => ">=",
            Symbol::Semi => ";",
        }
    }
}

/// Renders a token stream back to SQL text that re-tokenizes to the same
/// stream (round-trip tests rely on this; keywords keep their original
/// spelling, strings re-escape `'` as `''`).
pub fn render_tokens(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(|t| match t {
            Token::Ident(s) => s.clone(),
            Token::Int(i) => i.to_string(),
            Token::Float(x) => format!("{x:?}"),
            Token::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Token::Symbol(sym) => sym.as_str().to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Tokenizes `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Symbol::Dot));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Symbol::Semi));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected `!`".into()));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Symbol(Symbol::Le));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Symbol(Symbol::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(Error::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            // Numeric literal, optionally negative: the dialect has no
            // binary arithmetic operators, so a `-` directly followed by a
            // digit can only introduce a signed literal.
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(char::is_ascii_digit)) =>
            {
                let start = i;
                if chars[i] == '-' {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Optional exponent (`1e-5`, `2.5E8`). The dialect has no
                // `-`/`+` symbols, so the sign can only belong to the
                // exponent; consuming it here also keeps [`render_tokens`]'
                // `{:?}` float rendering (which uses scientific notation
                // for small/large magnitudes) re-tokenizable.
                if i < chars.len()
                    && matches!(chars[i], 'e' | 'E')
                    && (chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                        || (matches!(chars.get(i + 1), Some('+') | Some('-'))
                            && chars.get(i + 2).is_some_and(|c| c.is_ascii_digit())))
                {
                    is_float = true;
                    i += 1; // e/E
                    if matches!(chars[i], '+' | '-') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    // `parse::<f64>` maps overflowing literals like `1e999`
                    // to ±inf instead of erroring; reject those so only
                    // finite values (whose `{:?}` form re-tokenizes — see
                    // `render_tokens`) enter the executor.
                    let x: f64 = text
                        .parse()
                        .ok()
                        .filter(|x: &f64| x.is_finite())
                        .ok_or_else(|| Error::Parse(format!("bad float literal `{text}`")))?;
                    out.push(Token::Float(x));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("bad int literal `{text}`"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(Error::Parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let toks = tokenize("SELECT a.x, COUNT(*) FROM t a WHERE y >= 10;").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Symbol(Symbol::Star)));
        assert!(toks.contains(&Token::Symbol(Symbol::Ge)));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn floats_round_trip_through_render_tokens() {
        // `render_tokens` uses `{:?}`, which picks scientific notation for
        // small/large magnitudes; the exponent support above must take
        // every such spelling back to the identical token.
        for x in [1.5f64, 1e-5, 2.5e8, 1e300, 0.00001, 123456789.123] {
            let toks = vec![Token::Float(x)];
            let rendered = render_tokens(&toks);
            assert_eq!(
                tokenize(&rendered).unwrap(),
                toks,
                "float {x:?} did not round-trip via {rendered:?}"
            );
        }
        assert_eq!(tokenize("2E8").unwrap(), vec![Token::Float(2e8)]);
        // Overflowing literals parse to ±inf in Rust; the lexer must
        // reject them rather than let non-finite values reach the
        // executor (or `inf` break the round-trip).
        assert!(tokenize("1e999").is_err());
        // A bare trailing `e` stays an identifier suffix boundary, not an
        // exponent: `1e` lexes as Int(1) + Ident(e).
        assert_eq!(
            tokenize("1e").unwrap(),
            vec![Token::Int(1), Token::Ident("e".into())]
        );
    }

    #[test]
    fn negative_literals() {
        assert_eq!(tokenize("-21").unwrap(), vec![Token::Int(-21)]);
        assert_eq!(tokenize("-10.5").unwrap(), vec![Token::Float(-10.5)]);
        assert_eq!(tokenize("-2.5e-3").unwrap(), vec![Token::Float(-2.5e-3)]);
        // Inside a list and after a comparison, as queries produce them.
        let toks = tokenize("x >= -3 AND y IN (-1, 2)").unwrap();
        assert!(toks.contains(&Token::Int(-3)));
        assert!(toks.contains(&Token::Int(-1)));
        // `{}`-rendered negative ints re-tokenize to the same token.
        assert_eq!(
            tokenize(&render_tokens(&[Token::Int(-7)])).unwrap(),
            vec![Token::Int(-7)]
        );
        // A bare `-` (no digit after) is still rejected.
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn float_vs_qualified_name() {
        assert_eq!(tokenize("1.5").unwrap(), vec![Token::Float(1.5)]);
        let toks = tokenize("t.c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol(Symbol::Dot),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn neq_forms() {
        assert_eq!(tokenize("<>").unwrap(), vec![Token::Symbol(Symbol::Ne)]);
        assert_eq!(tokenize("!=").unwrap(), vec![Token::Symbol(Symbol::Ne)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("select @").is_err());
    }
}
