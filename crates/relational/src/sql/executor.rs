//! SQL execution over analyzed plans: predicate pushdown, greedy
//! hash-join planning, grouping, and projection.
//!
//! Every statement is first run through the static analyzer
//! ([`super::analyze`]): name resolution, type inference and
//! aggregate/GROUP BY validity all happen **before** execution, so the
//! pipeline below never resolves a name — it only translates the plan's
//! resolved [`ColumnId`]s into physical positions. The planner mirrors
//! what a simple RDBMS does for the paper's workloads: single-table
//! predicates are pushed below joins, equi-join edges become hash joins
//! chosen greedily from the smallest filtered relation outward, and
//! anything else is applied as a residual filter.
//!
//! Execution is columnar end to end: every base scan yields a
//! [`ColRelation`] (a selection vector over the stored table — see
//! [`crate::colrel`]), joins compose paired row-id vectors, residual
//! filters and ORDER BY rewrite or permute those vectors, and rows are
//! materialized exactly once — by the final projection gather, or never,
//! when a grouped tail aggregates straight off the selection vectors.

use super::analyze::{
    analyze, analyze_delete, analyze_insert, analyze_update, ColumnId, OrderTarget, TypedGrouping,
    TypedPick, TypedPlan,
};
use super::ast::{Query, Statement};
use crate::algebra::{AggSpec, RelColumn, Relation, SortKey};
use crate::colrel::{ColRelation, Pick};
use crate::database::Database;
use crate::expr::Expr;
use crate::schema::{Column, ForeignKey, TableSchema};
use crate::value::Value;
use crate::{Error, Result};

/// Executes a SQL string against the database.
///
/// `SELECT` returns the result relation; DDL/DML return an empty
/// relation. DML statements are fully validated by the analyzer before
/// any row is read or written.
pub fn execute(db: &mut Database, sql: &str) -> Result<Relation> {
    execute_statement(db, super::parser::parse_statement(sql)?)
}

/// True when `stmt` only reads (`SELECT` / `EXPLAIN`) — the predicate
/// [`crate::shared::SharedDatabase`] uses to route statements: reads run
/// against an epoch snapshot, everything else through the serialized
/// clone-modify-publish write path.
pub fn is_read_only(stmt: &Statement) -> bool {
    matches!(stmt, Statement::Select(_) | Statement::Explain(_))
}

/// Executes a read-only statement (see [`is_read_only`]) against a
/// shared, immutable database view. Write statements are an internal
/// routing bug, reported as an evaluation error rather than a panic.
pub fn execute_read(db: &Database, stmt: &Statement) -> Result<Relation> {
    match stmt {
        Statement::Select(q) => execute_query(db, q),
        Statement::Explain(q) => {
            let lines = explain_query(db, q)?;
            Ok(Relation::new(
                vec![crate::algebra::RelColumn::bare(
                    "plan",
                    crate::value::DataType::Text,
                )],
                lines.into_iter().map(|l| vec![Value::from(l)]).collect(),
            ))
        }
        _ => Err(Error::Eval(
            "internal: write statement routed to the read-only executor".into(),
        )),
    }
}

/// Executes one already-parsed statement. The string front end
/// ([`execute`]) and the shared-database router both land here, so
/// parse-once callers never pay a second tokenization.
pub fn execute_statement(db: &mut Database, stmt: Statement) -> Result<Relation> {
    match stmt {
        Statement::Select(_) | Statement::Explain(_) => execute_read(db, &stmt),
        Statement::CreateTable {
            name,
            columns,
            primary_key,
            foreign_keys,
        } => {
            let cols = columns
                .into_iter()
                .map(|c| Column {
                    name: c.name,
                    data_type: c.data_type,
                    nullable: c.nullable,
                })
                .collect();
            let mut schema = TableSchema::new(name, cols);
            schema.primary_key = primary_key;
            // SQL semantics: PRIMARY KEY implies NOT NULL.
            for pk in schema.primary_key.clone() {
                if let Some(i) = schema.column_index(&pk) {
                    schema.columns[i].nullable = false;
                }
            }
            schema.foreign_keys = foreign_keys
                .into_iter()
                .map(|(cols, table, ref_cols)| ForeignKey {
                    columns: cols,
                    referenced_table: table,
                    referenced_columns: ref_cols,
                })
                .collect();
            db.create_table(schema)?;
            Ok(Relation::default())
        }
        Statement::Insert { table, rows } => {
            analyze_insert(db, &table, &rows)?;
            for row in rows {
                db.insert(&table, row)?;
            }
            Ok(Relation::default())
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let pred = analyze_delete(db, &table, where_clause.as_ref())?;
            db.delete_where(&table, &pred)?;
            Ok(Relation::default())
        }
        Statement::Update {
            table,
            sets,
            where_clause,
        } => {
            let pred = analyze_update(db, &table, &sets, where_clause.as_ref())?;
            db.update_where(&table, &pred, &sets)?;
            Ok(Relation::default())
        }
    }
}

/// Executes a parsed SELECT query: analyze, then run the typed plan.
pub fn execute_query(db: &Database, q: &Query) -> Result<Relation> {
    let plan = analyze(db, q)?;
    execute_typed(db, &plan, &mut None)
}

/// Renders the analyzed plan (typed scans, join edges with key types,
/// grouped shape, output row) followed by the trace of the greedy
/// optimizer's decisions: pushed-down filters with their selectivity, the
/// join order with intermediate sizes, residual predicates, and the
/// tail. Backing for the SQL `EXPLAIN` statement.
pub fn explain_query(db: &Database, q: &Query) -> Result<Vec<String>> {
    let plan = analyze(db, q)?;
    let mut lines = plan.render();
    let mut trace = Some(Vec::new());
    execute_typed(db, &plan, &mut trace)?;
    lines.extend(trace.unwrap_or_default());
    Ok(lines)
}

/// An internal inconsistency between a [`TypedPlan`] and the executor —
/// never a user error; the analyzer guarantees resolvability.
fn plan_desync() -> Error {
    Error::Eval("internal: typed plan out of sync with executor".into())
}

/// The position of `c` in the current joined relation, whose column shape
/// is the concatenation of the plan tables in `joined_ids` order.
fn joined_pos(plan: &TypedPlan, joined_ids: &[usize], c: ColumnId) -> Option<usize> {
    let mut off = 0;
    for &t in joined_ids {
        if t == c.table {
            return Some(off + c.column);
        }
        off += plan.tables[t].columns.len();
    }
    None
}

/// Executes a typed plan over the columnar pipeline, optionally tracing
/// the planner's decisions into `trace`.
fn execute_typed(
    db: &Database,
    plan: &TypedPlan,
    trace: &mut Option<Vec<String>>,
) -> Result<Relation> {
    macro_rules! log {
        ($($arg:tt)*) => {
            if let Some(t) = trace.as_mut() {
                t.push(format!($($arg)*));
            }
        };
    }
    // 1. Columnar scans with pushed-down predicates. A filtered scan *is*
    //    the selection vector `scan::filter_indices` returns; from here
    //    to the final projection the pipeline only rewrites row-id
    //    vectors, so filtered-out rows are never touched again and no
    //    intermediate row is materialized.
    let mut relations: Vec<Option<ColRelation>> = Vec::with_capacity(plan.tables.len());
    for (i, t) in plan.tables.iter().enumerate() {
        let table = db.table(&t.name)?;
        let preds = &plan.scans[i];
        if preds.is_empty() {
            let rel = ColRelation::from_table(table, &t.alias);
            log!("scan {} ({} rows)", t.alias, rel.len());
            relations.push(Some(rel));
            continue;
        }
        let before = table.len();
        // Scan predicates run against the single table's own shape, so a
        // ColumnId maps straight to its schema position.
        let mut combined: Option<Expr> = None;
        for p in preds {
            let e = p.expr.to_expr(&|c: ColumnId| Some(c.column))?;
            combined = Some(match combined {
                Some(acc) => acc.and(e),
                None => e,
            });
        }
        let combined = combined.ok_or_else(plan_desync)?;
        let filtered = ColRelation::from_table_filtered(table, &t.alias, &combined)?;
        log!(
            "scan {} ({} rows) pushdown [{}] -> {} rows",
            t.alias,
            before,
            preds
                .iter()
                .map(|p| p.display.clone())
                .collect::<Vec<_>>()
                .join(" AND "),
            filtered.len()
        );
        relations.push(Some(filtered));
    }

    // 2. Greedy join: start from the smallest relation; repeatedly join a
    //    connected relation via a build/probe hash join over the edge's
    //    key columns, else cross the smallest remaining. Each join emits
    //    paired (build, probe) position vectors that compose with the
    //    inputs' selections.
    let mut remaining: Vec<usize> = (0..plan.tables.len()).collect();
    let start = remaining
        .iter()
        .copied()
        .min_by_key(|&i| relations[i].as_ref().map(ColRelation::len).unwrap_or(0))
        .ok_or_else(plan_desync)?;
    remaining.retain(|&i| i != start);
    let mut joined_ids = vec![start];
    let mut current = relations[start].take().ok_or_else(plan_desync)?;
    let mut used_edges = vec![false; plan.edges.len()];
    log!("start from smallest relation {}", plan.tables[start].alias);

    while !remaining.is_empty() {
        // Find an edge between the joined set and a remaining relation.
        let mut next: Option<(usize, usize)> = None; // (edge idx, other rel)
        for (ei, e) in plan.edges.iter().enumerate() {
            if used_edges[ei] {
                continue;
            }
            let a_in = joined_ids.contains(&e.left.table);
            let b_in = joined_ids.contains(&e.right.table);
            if a_in && remaining.contains(&e.right.table) {
                next = Some((ei, e.right.table));
                break;
            }
            if b_in && remaining.contains(&e.left.table) {
                next = Some((ei, e.left.table));
                break;
            }
        }
        match next {
            Some((ei, other)) => {
                used_edges[ei] = true;
                let e = &plan.edges[ei];
                let other_rel = relations[other].take().ok_or_else(plan_desync)?;
                // Which side belongs to the current (joined) relation?
                let (cur_id, other_id, cur_name, other_name) = if e.right.table == other {
                    (e.left, e.right, &e.left_name, &e.right_name)
                } else {
                    (e.right, e.left, &e.right_name, &e.left_name)
                };
                let lcol = joined_pos(plan, &joined_ids, cur_id).ok_or_else(plan_desync)?;
                let rcol = other_id.column;
                let right_rows = other_rel.len();
                current = current.hash_join(&other_rel, lcol, rcol)?;
                log!(
                    "hash join {} = {} with {} ({} rows) -> {} rows",
                    cur_name,
                    other_name,
                    plan.tables[other].alias,
                    right_rows,
                    current.len()
                );
                joined_ids.push(other);
                remaining.retain(|&i| i != other);
            }
            None => {
                // Disconnected: cross product with the smallest remaining.
                let other = remaining
                    .iter()
                    .copied()
                    .min_by_key(|&i| relations[i].as_ref().map(ColRelation::len).unwrap_or(0))
                    .ok_or_else(plan_desync)?;
                let other_rel = relations[other].take().ok_or_else(plan_desync)?;
                let right_rows = other_rel.len();
                current = current.cross(&other_rel)?;
                log!(
                    "cross product with {} ({} rows) -> {} rows",
                    plan.tables[other].alias,
                    right_rows,
                    current.len()
                );
                joined_ids.push(other);
                remaining.retain(|&i| i != other);
            }
        }
        // Apply any edges now internal to the joined set (multi-edge cycles).
        for (ei, e) in plan.edges.iter().enumerate() {
            if used_edges[ei] {
                continue;
            }
            if joined_ids.contains(&e.left.table) && joined_ids.contains(&e.right.table) {
                used_edges[ei] = true;
                let la = joined_pos(plan, &joined_ids, e.left).ok_or_else(plan_desync)?;
                let lb = joined_pos(plan, &joined_ids, e.right).ok_or_else(plan_desync)?;
                current = current.select(&Expr::col(la).eq(Expr::col(lb)))?;
                log!(
                    "cycle filter {} = {} -> {} rows",
                    e.left_name,
                    e.right_name,
                    current.len()
                );
            }
        }
    }

    // 3. Residual predicates (evaluated over only the columns they read).
    let jpos = |c: ColumnId| joined_pos(plan, &joined_ids, c);
    for p in &plan.residual {
        let e = p.expr.to_expr(&jpos)?;
        current = current.select(&e)?;
        log!("residual filter [{}] -> {} rows", p.display, current.len());
    }

    // 4. Grouping / aggregation / projection tail. Grouped queries
    //    aggregate straight off the selection vectors (no input row is
    //    ever materialized); plain queries sort by permutation and gather
    //    rows exactly once, in the final projection.
    if let Some(g) = &plan.grouping {
        if !g.keys.is_empty() {
            log!("group by {} key(s)", g.keys.len());
        }
        let group_cols = g
            .keys
            .iter()
            .map(|&k| jpos(k).ok_or_else(plan_desync))
            .collect::<Result<Vec<_>>>()?;
        let specs = agg_specs(g, &jpos)?;
        let grouped = current.group_by(&group_cols, &specs)?;
        let out = grouped_tail(plan, g, grouped, &ENGINE_KERNELS)?;
        log!("output: {} rows x {} columns", out.len(), out.columns.len());
        return Ok(out);
    }
    let out = columnar_plain_tail(plan, &current, &jpos)?;
    log!("output: {} rows x {} columns", out.len(), out.columns.len());
    Ok(out)
}

/// Lowers the plan's aggregates into [`AggSpec`]s through `pos`.
fn agg_specs(g: &TypedGrouping, pos: &impl Fn(ColumnId) -> Option<usize>) -> Result<Vec<AggSpec>> {
    g.aggregates
        .iter()
        .map(|x| {
            let input = match x.input {
                Some(c) => Some(pos(c).ok_or_else(plan_desync)?),
                None => None,
            };
            Ok(AggSpec::new(x.func, input, x.key.clone()))
        })
        .collect()
}

/// The non-grouped query tail over the columnar pipeline: ORDER BY
/// becomes a permutation over rank-decorated key columns, the final
/// projection gathers each output cell once (in permuted order), and
/// DISTINCT / OFFSET / LIMIT run on the already-final output.
fn columnar_plain_tail(
    plan: &TypedPlan,
    input: &ColRelation,
    pos: &impl Fn(ColumnId) -> Option<usize>,
) -> Result<Relation> {
    let mut out_cols: Vec<RelColumn> = Vec::with_capacity(plan.output.len());
    let mut picks: Vec<Pick> = Vec::with_capacity(plan.output.len());
    for o in &plan.output {
        out_cols.push(o.column.clone());
        picks.push(match o.pick {
            TypedPick::Input(c) => Pick::Col(pos(c).ok_or_else(plan_desync)?),
            TypedPick::Lit(v) => Pick::Lit(v),
            TypedPick::Group(_) => return Err(plan_desync()),
        });
    }
    let order = if plan.order_by.is_empty() {
        None
    } else {
        let keys = plan
            .order_by
            .iter()
            .map(|o| match o.target {
                OrderTarget::Input(c) => Ok(SortKey {
                    column: pos(c).ok_or_else(plan_desync)?,
                    descending: o.descending,
                }),
                OrderTarget::Group(_) => Err(plan_desync()),
            })
            .collect::<Result<Vec<_>>>()?;
        Some(input.sort_order(&keys))
    };
    let mut out = input.project(out_cols, &picks, order.as_deref());
    if plan.distinct {
        out = out.distinct();
    }
    if plan.offset > 0 {
        out = out.offset(plan.offset);
    }
    if let Some(n) = plan.limit {
        out = out.limit(n);
    }
    Ok(out)
}

/// The data-movement kernels the materialized-relation query tail
/// dispatches through.
///
/// The typed plan is shared between the optimizing executor and the
/// naive oracle (it is *specification*, not optimization), but the
/// kernels that actually group, sort and deduplicate rows are injected.
/// The executor's own pipeline is columnar ([`crate::colrel`]) and only
/// reaches these kernels for the post-aggregation tail over the (small,
/// materialized) grouped relation; [`super::naive`] runs its whole tail
/// through independent row-at-a-time kernels — so a bug in a vectorized
/// kernel cannot cancel out in differential tests.
pub(crate) struct TailKernels {
    pub(crate) group: fn(&Relation, &[usize], &[AggSpec]) -> Result<Relation>,
    pub(crate) sort: fn(&Relation, &[SortKey]) -> Relation,
    pub(crate) distinct: fn(&Relation) -> Relation,
}

/// The optimizing executor's kernels (vectorized grouping, rank-keyed
/// sort, hashed DISTINCT).
pub(crate) const ENGINE_KERNELS: TailKernels = TailKernels {
    group: |rel, cols, aggs| rel.group_by(cols, aggs),
    sort: |rel, keys| rel.sort_by(keys),
    distinct: |rel| rel.distinct(),
};

/// The planner-free tail of query execution over a materialized relation
/// (the syntactic cross product of the plan's tables) and
/// caller-supplied kernels (see [`TailKernels`]): grouping, HAVING,
/// ORDER BY, projection, DISTINCT, LIMIT. Used by the naive oracle; the
/// executor's columnar pipeline has its own tail.
pub(crate) fn finish_query_with(
    plan: &TypedPlan,
    current: Relation,
    kernels: &TailKernels,
) -> Result<Relation> {
    if let Some(g) = &plan.grouping {
        let pos = |c: ColumnId| Some(plan.flat_pos(c));
        let group_cols: Vec<usize> = g.keys.iter().map(|&k| plan.flat_pos(k)).collect();
        let specs = agg_specs(g, &pos)?;
        let grouped = (kernels.group)(&current, &group_cols, &specs)?;
        grouped_tail(plan, g, grouped, kernels)
    } else {
        execute_plain(plan, current, kernels)
    }
}

/// Executes the tail of a non-grouped query over a materialized
/// relation: ORDER BY, projection, DISTINCT, LIMIT. Only the naive
/// oracle takes this path (see [`columnar_plain_tail`] for the
/// executor's).
fn execute_plain(plan: &TypedPlan, input: Relation, kernels: &TailKernels) -> Result<Relation> {
    let mut out_cols: Vec<RelColumn> = Vec::with_capacity(plan.output.len());
    let mut picks: Vec<Pick> = Vec::with_capacity(plan.output.len());
    for o in &plan.output {
        out_cols.push(o.column.clone());
        picks.push(match o.pick {
            TypedPick::Input(c) => Pick::Col(plan.flat_pos(c)),
            TypedPick::Lit(v) => Pick::Lit(v),
            TypedPick::Group(_) => return Err(plan_desync()),
        });
    }

    let mut rel = input;
    if !plan.order_by.is_empty() {
        let keys = plan
            .order_by
            .iter()
            .map(|o| match o.target {
                OrderTarget::Input(c) => Ok(SortKey {
                    column: plan.flat_pos(c),
                    descending: o.descending,
                }),
                OrderTarget::Group(_) => Err(plan_desync()),
            })
            .collect::<Result<Vec<_>>>()?;
        rel = (kernels.sort)(&rel, &keys);
    }

    // Projection.
    let rows = rel
        .rows
        .iter()
        .map(|r| {
            picks
                .iter()
                .map(|p| match p {
                    Pick::Col(i) => r[*i],
                    Pick::Lit(v) => *v,
                })
                .collect()
        })
        .collect();
    let mut out = Relation::new(out_cols, rows);
    if plan.distinct {
        out = (kernels.distinct)(&out);
    }
    if plan.offset > 0 {
        out = out.offset(plan.offset);
    }
    if let Some(n) = plan.limit {
        out = out.limit(n);
    }
    Ok(out)
}

/// The post-aggregation tail shared by the oracle and the executor's
/// columnar grouped path: HAVING, projection, ORDER BY, DISTINCT,
/// LIMIT/OFFSET over the (small, materialized) grouped relation. The
/// plan's grouped picks and sort targets are already positions into
/// `grouped`, so this is pure data movement.
fn grouped_tail(
    plan: &TypedPlan,
    g: &TypedGrouping,
    grouped: Relation,
    kernels: &TailKernels,
) -> Result<Relation> {
    // HAVING over grouped-relation positions.
    let mut rel = grouped;
    if let Some(h) = &g.having {
        let e = h.to_expr(&Some)?;
        rel = rel.select(&e)?;
    }

    // Projection picks.
    let mut out_cols: Vec<RelColumn> = Vec::with_capacity(plan.output.len());
    let mut picks: Vec<usize> = Vec::with_capacity(plan.output.len());
    for o in &plan.output {
        let TypedPick::Group(i) = o.pick else {
            return Err(plan_desync());
        };
        out_cols.push(o.column.clone());
        picks.push(i);
    }

    // ORDER BY over grouped-relation positions.
    if !plan.order_by.is_empty() {
        let keys = plan
            .order_by
            .iter()
            .map(|o| match o.target {
                OrderTarget::Group(i) => Ok(SortKey {
                    column: i,
                    descending: o.descending,
                }),
                OrderTarget::Input(_) => Err(plan_desync()),
            })
            .collect::<Result<Vec<_>>>()?;
        rel = (kernels.sort)(&rel, &keys);
    }

    let mut out = rel.project(&picks)?;
    out.columns = out_cols;
    if plan.distinct {
        out = (kernels.distinct)(&out);
    }
    if plan.offset > 0 {
        out = out.offset(plan.offset);
    }
    if let Some(n) = plan.limit {
        out = out.limit(n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        execute(
            &mut db,
            "CREATE TABLE Conferences (id INT PRIMARY KEY, acronym TEXT NOT NULL)",
        )
        .unwrap();
        execute(
            &mut db,
            "CREATE TABLE Papers (id INT PRIMARY KEY, conference_id INT REFERENCES Conferences(id), \
             title TEXT NOT NULL, year INT NOT NULL)",
        )
        .unwrap();
        execute(
            &mut db,
            "CREATE TABLE Authors (id INT PRIMARY KEY, name TEXT NOT NULL)",
        )
        .unwrap();
        execute(
            &mut db,
            "CREATE TABLE Paper_Authors (paper_id INT, author_id INT, \
             PRIMARY KEY (paper_id, author_id), \
             FOREIGN KEY (paper_id) REFERENCES Papers (id), \
             FOREIGN KEY (author_id) REFERENCES Authors (id))",
        )
        .unwrap();
        execute(
            &mut db,
            "INSERT INTO Conferences VALUES (1, 'SIGMOD'), (2, 'KDD')",
        )
        .unwrap();
        execute(
            &mut db,
            "INSERT INTO Papers VALUES \
             (10, 1, 'Making database systems usable', 2007), \
             (11, 1, 'SkewTune', 2012), \
             (12, 2, 'Deep stuff', 2014)",
        )
        .unwrap();
        execute(
            &mut db,
            "INSERT INTO Authors VALUES (100, 'Jagadish'), (101, 'Nandi'), (102, 'Kwon')",
        )
        .unwrap();
        execute(
            &mut db,
            "INSERT INTO Paper_Authors VALUES (10, 100), (10, 101), (11, 102), (12, 101)",
        )
        .unwrap();
        db
    }

    #[test]
    fn filter_and_project() {
        let mut d = db();
        let r = execute(&mut d, "SELECT title FROM Papers WHERE year >= 2012").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.columns.len(), 1);
    }

    #[test]
    fn join_on_syntax() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT p.title FROM Papers p JOIN Conferences c ON p.conference_id = c.id \
             WHERE c.acronym = 'SIGMOD' ORDER BY p.title",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], "Making database systems usable".into());
    }

    #[test]
    fn comma_join_where() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT a.name FROM Papers p, Paper_Authors pa, Authors a \
             WHERE p.id = pa.paper_id AND pa.author_id = a.id AND p.id = 10 \
             ORDER BY a.name",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], "Jagadish".into());
    }

    #[test]
    fn duplication_blowup_visible() {
        // The motivating example: joining Papers with Authors duplicates
        // paper rows once per author.
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT p.title, a.name FROM Papers p, Paper_Authors pa, Authors a \
             WHERE p.id = pa.paper_id AND pa.author_id = a.id",
        )
        .unwrap();
        assert_eq!(r.len(), 4); // 3 papers -> 4 join rows
    }

    #[test]
    fn group_by_count_order() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT a.name, COUNT(*) AS n FROM Authors a, Paper_Authors pa \
             WHERE a.id = pa.author_id GROUP BY a.name ORDER BY n DESC, a.name LIMIT 2",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], "Nandi".into());
        assert_eq!(r.rows[0][1], Value::Int(2));
    }

    #[test]
    fn having_filters_groups() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT a.name FROM Authors a, Paper_Authors pa WHERE a.id = pa.author_id \
             GROUP BY a.name HAVING COUNT(*) > 1",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], "Nandi".into());
    }

    #[test]
    fn global_aggregate() {
        let mut d = db();
        let r = execute(&mut d, "SELECT COUNT(*) FROM Papers").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        let r = execute(&mut d, "SELECT MIN(year), MAX(year), AVG(year) FROM Papers").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2007));
        assert_eq!(r.rows[0][1], Value::Int(2014));
        assert_eq!(
            r.rows[0][2],
            Value::Float((2007 + 2012 + 2014) as f64 / 3.0)
        );
    }

    #[test]
    fn distinct_dedups() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT DISTINCT c.acronym FROM Conferences c, Papers p WHERE p.conference_id = c.id",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn like_filter() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT title FROM Papers WHERE title LIKE '%usable%'",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let mut d = db();
        let r = execute(&mut d, "SELECT * FROM Papers").unwrap();
        assert_eq!(r.columns.len(), 4);
        let r = execute(
            &mut d,
            "SELECT c.* FROM Papers p, Conferences c WHERE p.conference_id = c.id",
        )
        .unwrap();
        assert_eq!(r.columns.len(), 2);
    }

    #[test]
    fn wildcard_order_is_syntactic() {
        // `SELECT *` expands in FROM-clause order even when the planner
        // joins in a different order (small Conferences first).
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT * FROM Papers p, Conferences c WHERE p.conference_id = c.id",
        )
        .unwrap();
        assert_eq!(r.columns[0].qualified_name(), "p.id");
        assert_eq!(r.columns[4].qualified_name(), "c.id");
    }

    #[test]
    fn error_on_unknown_column_or_table() {
        let mut d = db();
        assert!(execute(&mut d, "SELECT nope FROM Papers").is_err());
        assert!(execute(&mut d, "SELECT * FROM Nope").is_err());
    }

    #[test]
    fn ambiguous_column_rejected() {
        let mut d = db();
        assert!(execute(
            &mut d,
            "SELECT id FROM Papers p, Authors a WHERE p.id = a.id"
        )
        .is_err());
    }

    #[test]
    fn limit_offset_paginate() {
        let mut d = db();
        let page1 = execute(&mut d, "SELECT id FROM Papers ORDER BY id LIMIT 2").unwrap();
        let page2 = execute(&mut d, "SELECT id FROM Papers ORDER BY id LIMIT 2 OFFSET 2").unwrap();
        assert_eq!(page1.len(), 2);
        assert_eq!(page2.len(), 1);
        let all = execute(&mut d, "SELECT id FROM Papers ORDER BY id").unwrap();
        let mut paged = page1.rows.clone();
        paged.extend(page2.rows.clone());
        assert_eq!(all.rows, paged);
        // Offset past the end yields nothing.
        let none = execute(&mut d, "SELECT id FROM Papers ORDER BY id OFFSET 99").unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn offset_works_with_group_by() {
        let mut d = db();
        let r = execute(
            &mut d,
            "SELECT a.name, COUNT(*) AS n FROM Authors a, Paper_Authors pa \
             WHERE a.id = pa.author_id GROUP BY a.name ORDER BY n DESC, a.name \
             LIMIT 1 OFFSET 1",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::Int(1));
    }

    #[test]
    fn select_data_types_preserved() {
        let mut d = db();
        let r = execute(&mut d, "SELECT year FROM Papers LIMIT 1").unwrap();
        assert_eq!(r.columns[0].data_type, DataType::Int);
    }
}
